//! Offline drop-in subset of the `parking_lot` API, layered over `std::sync`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `parking_lot` it actually uses:
//! [`Mutex`], [`RwLock`], and [`Condvar`] with panic-free (non-poisoning)
//! guards. Semantics match `parking_lot` where the two differ from `std`:
//! locking never returns a `Result`, and a panic while holding a guard does
//! not poison the lock for other threads.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion primitive (non-poisoning `std::sync::Mutex`).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`].
///
/// Holds the `std` guard in an `Option` so [`Condvar::wait`] can take it
/// out and put the re-acquired guard back without consuming the wrapper.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock (non-poisoning `std::sync::RwLock`).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable usable with [`MutexGuard`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => e.into_inner(),
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiting thread. Returns whether a thread was woken
    /// (always `false` here: `std` does not report it).
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        false
    }

    /// Wakes all waiting threads. Returns the number woken (always `0`
    /// here: `std` does not report it).
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        drop(ready);
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
