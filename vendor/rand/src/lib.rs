//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of `rand` it uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen_range` / `gen_bool` / `gen`. The generator is SplitMix64 — not
//! cryptographic, but statistically fine for workload generation and
//! deterministic for a given seed (which is all the callers need).

use std::ops::Range;

pub mod rngs;

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    ///
    /// Panics if the range is empty, matching `rand` 0.8.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled from (the `rand` 0.8 `SampleRange` trait).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let offset = (rng.next_u64() as u128) % span;
                ((self.start as $wide as u128).wrapping_add(offset)) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide as u128).wrapping_sub(lo as $wide as u128).wrapping_add(1);
                if span == 0 {
                    // Full domain of the type.
                    return rng.next_u64() as $t;
                }
                let offset = (rng.next_u64() as u128) % span;
                ((lo as $wide as u128).wrapping_add(offset)) as $t
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_float_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// The standard distribution: full domain for integers and `bool`,
/// the unit interval `[0, 1)` for floats.
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let u: usize = rng.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn gen_standard_covers_types() {
        let mut rng = StdRng::seed_from_u64(5);
        let _: u8 = rng.gen();
        let _: bool = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
