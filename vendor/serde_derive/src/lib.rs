//! Offline derive macros for the vendored `serde` subset.
//!
//! Upstream `serde_derive` depends on `syn`/`quote`, which are not
//! available in this offline build environment. This implementation parses
//! the item's raw token stream directly (no external parser) and generates
//! `serde::Serialize` / `serde::Deserialize` impls against the vendored
//! value-tree data model. Supported shapes — the only ones this workspace
//! derives on — are:
//!
//! * structs with named fields (unknown keys ignored, `Option` fields
//!   omitted when `None` and tolerated when absent),
//! * newtype tuple structs (serialize as the inner value),
//! * enums whose variants are unit or newtype (externally tagged:
//!   `"Variant"` or `{"Variant": ...}`), with
//!   `#[serde(rename_all = "lowercase")]` honored on the container.
//!
//! Anything else panics at macro-expansion time with a clear message, so a
//! future unsupported use fails the build loudly instead of mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

struct Item {
    name: String,
    lowercase_variants: bool,
    shape: Shape,
}

enum Shape {
    Named(Vec<String>),
    Newtype,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    has_payload: bool,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut lowercase_variants = false;

    // Leading attributes and visibility.
    let is_enum = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    let attr = g.stream().to_string();
                    if attr.starts_with("serde")
                        && attr.contains("rename_all")
                        && attr.contains("lowercase")
                    {
                        lowercase_variants = true;
                    }
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break false,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break true,
            Some(_) => i += 1,
            None => panic!("serde derive: no struct/enum keyword found"),
        }
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive (vendored): generic type `{name}` is not supported");
    }

    let shape = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Shape::Enum(parse_variants(g.stream(), &name))
            } else {
                Shape::Named(parse_named_fields(g.stream(), &name))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && !is_enum => {
            let n = count_tuple_fields(g.stream());
            if n != 1 {
                panic!(
                    "serde derive (vendored): tuple struct `{name}` has {n} fields; \
                     only newtype (1-field) tuple structs are supported"
                );
            }
            Shape::Newtype
        }
        other => panic!("serde derive (vendored): unsupported item body for `{name}`: {other:?}"),
    };

    Item {
        name,
        lowercase_variants,
        shape,
    }
}

/// Advances past any `#[...]` attributes starting at `*i`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 2; // '#' plus the bracket group
    }
}

/// Advances past `pub` / `pub(...)` starting at `*i`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Parenthesis {
                *i += 1;
            }
        }
    }
}

fn parse_named_fields(stream: TokenStream, type_name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let field = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break, // trailing comma
            other => panic!("serde derive: expected field name in `{type_name}`, found {other:?}"),
        };
        i += 1;
        assert!(
            matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde derive: expected `:` after field `{field}` in `{type_name}`"
        );
        i += 1;
        // Skip the type: angle-bracket depth tracking because generics are
        // punct sequences, not groups, in a raw token stream.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(field);
    }
    fields
}

fn parse_variants(stream: TokenStream, type_name: &str) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break, // trailing comma
            other => panic!("serde derive: expected variant in `{type_name}`, found {other:?}"),
        };
        i += 1;
        let mut has_payload = false;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                has_payload = true;
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!(
                    "serde derive (vendored): struct variant `{type_name}::{name}` \
                     is not supported"
                );
            }
            _ => {}
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!(
                "serde derive (vendored): explicit discriminant on `{type_name}::{name}` \
                 is not supported"
            );
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, has_payload });
    }
    variants
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for tok in &tokens {
        trailing_comma = false;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    commas += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    commas + usize::from(!trailing_comma)
}

fn wire_name(item: &Item, variant: &str) -> String {
    if item.lowercase_variants {
        variant.to_lowercase()
    } else {
        variant.to_string()
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "{{ let v = ::serde::Serialize::to_value(&self.{f}); \
                     if !matches!(v, ::serde::Value::Null) {{ \
                     entries.push((\"{f}\".to_string(), v)); }} }}\n"
                ));
            }
            format!(
                "let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Map(entries)"
            )
        }
        Shape::Newtype => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let wire = wire_name(item, &v.name);
                let vn = &v.name;
                if v.has_payload {
                    arms.push_str(&format!(
                        "{name}::{vn}(inner) => ::serde::Value::Map(vec![\
                         (\"{wire}\".to_string(), ::serde::Serialize::to_value(inner))]),\n"
                    ));
                } else {
                    arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{wire}\".to_string()),\n"
                    ));
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{f}: ::serde::field_from_map(entries, \"{f}\")?,\n"
                ));
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Map(entries) => Ok({name} {{\n{inits}}}),\n\
                 _ => Err(::serde::DeError::msg(\"expected map for {name}\")),\n}}"
            )
        }
        Shape::Newtype => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let wire = wire_name(item, &v.name);
                let vn = &v.name;
                if v.has_payload {
                    payload_arms.push_str(&format!(
                        "\"{wire}\" => Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(&entries[0].1)?)),\n"
                    ));
                } else {
                    unit_arms.push_str(&format!("\"{wire}\" => Ok({name}::{vn}),\n"));
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => Err(::serde::DeError::msg(format!(\
                 \"unknown {name} variant `{{other}}`\"))),\n}},\n\
                 ::serde::Value::Map(entries) if entries.len() == 1 => \
                 match entries[0].0.as_str() {{\n{payload_arms}\
                 other => Err(::serde::DeError::msg(format!(\
                 \"unknown {name} variant `{{other}}`\"))),\n}},\n\
                 _ => Err(::serde::DeError::msg(\"expected {name}\")),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}"
    )
}
