//! Offline JSON text layer for the vendored `serde` subset.
//!
//! Implements the two entry points this workspace uses —
//! [`to_string`] and [`from_str`] — over the vendored
//! [`serde::Value`] tree. The parser is a straightforward recursive
//! descent over the full JSON grammar (objects, arrays, strings with
//! escapes including `\uXXXX` surrogate pairs, numbers, literals); the
//! printer emits compact JSON with map fields in declaration order.

use std::char;
use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// A JSON serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to compact JSON text.
///
/// # Errors
///
/// Infallible for the shapes the vendored data model can hold; the
/// `Result` exists for upstream signature compatibility.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Parses JSON text into `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value).map_err(|e| Error::msg(e.to_string()))
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                out.push_str("null"); // JSON has no NaN/Infinity
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            let mut first = true;
            for (k, val) in entries {
                if matches!(val, Value::Null) {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::msg(format!("unexpected input at offset {}", self.pos))),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::msg(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at offset {}", self.pos))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    let combined = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error::msg("invalid \\u escape"))?);
                            // parse_hex4 leaves pos after the 4 digits and
                            // the unified `pos += 1` below must be skipped.
                            continue;
                        }
                        _ => return Err(Error::msg("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar, not byte by byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid utf-8 in string"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::msg("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(Value::Int)
                .or_else(|| text.parse::<f64>().ok().map(Value::Float))
                .ok_or_else(|| Error::msg(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(from_str::<f64>("2.5e1").unwrap(), 25.0);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn vec_roundtrip() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), v);
    }

    #[test]
    fn whitespace_and_nesting() {
        let v: Vec<Vec<u64>> = from_str(" [ [1, 2] , [] ] ").unwrap();
        assert_eq!(v, vec![vec![1, 2], vec![]]);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "quote\" slash\\ tab\t newline\n unicode\u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "\u{1F600}");
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(from_str::<u64>("42 x").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
    }
}
