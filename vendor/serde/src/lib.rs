//! Offline drop-in subset of `serde`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal serialization framework under the `serde`
//! name. Instead of upstream's visitor architecture, types convert to and
//! from a self-describing [`Value`] tree; the companion `serde_derive`
//! proc-macro generates those conversions for the struct/enum shapes this
//! workspace uses, and the vendored `serde_json` renders `Value` to and
//! from JSON text. The supported attribute surface is exactly what the
//! workspace needs: `#[serde(rename_all = "lowercase")]` on unit enums and
//! `#[serde(skip_serializing_if = "Option::is_none")]` on `Option` fields
//! (the derive omits every `None` field, which subsumes the latter).

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value tree (the data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / `Option::None`. Omitted from maps when serializing.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer (also carries `u64` values above `i64::MAX`).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// A map with insertion-ordered string keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, coercing from any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::UInt(u) => i64::try_from(u).ok(),
            Value::Int(i) => Some(i),
            _ => None,
        }
    }
}

/// A deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error from a message.
    pub fn msg(message: impl Into<String>) -> Self {
        DeError(message.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Called for a struct field absent from the serialized map.
    /// Defaults to an error; `Option<T>` overrides it to produce `None`.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] unless the type tolerates absence.
    fn from_missing() -> Result<Self, DeError> {
        Err(DeError::msg("missing required field"))
    }
}

/// Field lookup used by derived `Deserialize` impls: absent keys fall
/// back to [`Deserialize::from_missing`], unknown keys are ignored.
///
/// # Errors
///
/// Propagates the field's deserialization error.
pub fn field_from_map<T: Deserialize>(
    entries: &[(String, Value)],
    name: &str,
) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v)
            .map_err(|e| DeError::msg(format!("field `{name}`: {e}"))),
        None => T::from_missing().map_err(|_| DeError::msg(format!("missing field `{name}`"))),
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| DeError::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(u).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| DeError::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(i).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError::msg(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing() -> Result<Self, DeError> {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert!((f64::from_value(&1.5f64.to_value()).unwrap() - 1.5).abs() < 1e-12);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn option_missing_is_none() {
        assert_eq!(Option::<u32>::from_missing().unwrap(), None);
        assert!(u32::from_missing().is_err());
    }

    #[test]
    fn numeric_coercion_between_int_shapes() {
        // JSON "2" parses as UInt but deserializes into floats and signed.
        assert_eq!(f64::from_value(&Value::UInt(2)).unwrap(), 2.0);
        assert_eq!(i32::from_value(&Value::UInt(2)).unwrap(), 2);
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn map_field_lookup() {
        let m = vec![("a".to_string(), Value::UInt(1))];
        assert_eq!(field_from_map::<u64>(&m, "a").unwrap(), 1);
        assert_eq!(field_from_map::<Option<u64>>(&m, "b").unwrap(), None);
        assert!(field_from_map::<u64>(&m, "b").is_err());
    }
}
