//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the criterion surface its benches use: `Criterion`,
//! `benchmark_group`/`bench_function`, `Bencher::iter`/`iter_batched`,
//! `Throughput`, `BatchSize`, and the `criterion_group!`/`criterion_main!`
//! macros (including the `name/config/targets` form). Measurement is
//! deliberately simple — a warm-up pass then `sample_size` timed samples,
//! reporting the median per-iteration time and derived throughput —
//! enough to compare configurations, not a statistics engine.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (builder form).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, None, f);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the work performed per iteration, for throughput output.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Finishes the group (reporting is per-benchmark; this is a no-op).
    pub fn finish(self) {}
}

/// Amount of work per iteration, used to derive throughput numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How much setup output to batch per timed routine call in
/// [`Bencher::iter_batched`]. The vendored runner treats all variants
/// identically (setup runs outside the timed section either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh input for every call.
    PerIteration,
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with per-call inputs built by `setup` (setup time
    /// is excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Prevents the compiler from optimizing away a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

fn run_benchmark<F>(name: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: run single iterations until we know roughly how long one
    // takes, then budget ~2ms of work per sample, capped for slow bodies.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let iters_per_sample = (Duration::from_millis(2).as_nanos() / per_iter.as_nanos())
        .clamp(1, 10_000) as u64;

    let mut per_iter_nanos: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_nanos.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    per_iter_nanos.sort_by(f64::total_cmp);
    let median = per_iter_nanos[per_iter_nanos.len() / 2];

    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(" ({:.0} elem/s)", n as f64 * 1e9 / median)
        }
        Some(Throughput::Bytes(n)) => {
            format!(" ({:.1} MiB/s)", n as f64 * 1e9 / median / (1 << 20) as f64)
        }
        None => String::new(),
    };
    println!("bench {name}: {median:.0} ns/iter{rate} [{samples} samples x {iters_per_sample} iters]");
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_with_throughput_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.throughput(Throughput::Elements(1));
        g.bench_function("f", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
    }
}
