//! Collection strategies: `vec` and `btree_map`.

use std::collections::BTreeMap;
use std::ops::Range;

use crate::{Strategy, TestRng};

/// An inclusive-exclusive size bound for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(self, rng: &mut TestRng) -> usize {
        assert!(self.lo < self.hi, "empty collection size range");
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K::Value, V::Value>` with a size drawn from
/// `size` (duplicate keys are regenerated, so the minimum is honored
/// whenever the key space allows it).
pub fn btree_map<K: Strategy, V: Strategy>(
    keys: K,
    values: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy {
        keys,
        values,
        size: size.into(),
    }
}

/// See [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut map = BTreeMap::new();
        let mut attempts = 0usize;
        while map.len() < target && attempts < target.saturating_mul(10) + 16 {
            map.insert(self.keys.generate(rng), self.values.generate(rng));
            attempts += 1;
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;

    #[test]
    fn vec_respects_size_bounds() {
        let mut rng = TestRng::for_case("vec", 0);
        for _ in 0..200 {
            let v = vec(any::<u8>(), 2..7).generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn btree_map_reaches_minimum_size() {
        let mut rng = TestRng::for_case("map", 0);
        for _ in 0..50 {
            let m = btree_map(any::<u64>(), any::<u8>(), 3..10).generate(&mut rng);
            assert!((3..10).contains(&m.len()));
        }
    }
}
