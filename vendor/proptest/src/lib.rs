//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the property-testing surface its test suites use:
//! the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! [`prop_assert!`] / [`prop_assert_eq!`], [`any`], integer/float range
//! strategies, tuple strategies, [`collection::vec`] /
//! [`collection::btree_map`], and regex-like string strategies limited to
//! the patterns the tests actually write (`.`, `[class]`, `{m,n}`).
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed per test function (so failures reproduce across
//! runs), and failing inputs are *not* shrunk — the panic message reports
//! the case number instead.

use std::marker::PhantomData;

pub mod collection;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Per-block configuration, set via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test function runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the vendored runner keeps the suites
        // fast with a smaller default (all heavy blocks set it explicitly).
        ProptestConfig { cases: 32 }
    }
}

/// A test-case failure raised by `prop_assert!` and friends.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case, mixing the test function's
    /// name hash with the case index so every case sees a distinct,
    /// reproducible stream.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// A uniform draw from the unit interval `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * (rng.unit_f64() as $t)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// A strategy over the full domain of `A` (e.g. `any::<u8>()`).
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(PhantomData)
}

// --- Regex-like string strategies -----------------------------------------

enum Atom {
    /// `.` — any printable ASCII character.
    Any,
    /// `[...]` — one of an explicit character set.
    Class(Vec<char>),
    /// A literal character.
    Literal(char),
}

struct Repeat {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Repeat> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out: Vec<Repeat> = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad class range in `{pattern}`");
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in `{pattern}`");
                i += 1; // closing ']'
                Atom::Class(set)
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "dangling escape in `{pattern}`");
                let c = chars[i];
                i += 1;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional {min,max} / {n} quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated quantifier")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier min"),
                    hi.trim().parse().expect("quantifier max"),
                ),
                None => {
                    let n = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        out.push(Repeat { atom, min, max });
    }
    out
}

impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for rep in parse_pattern(self) {
            let count = rep.min + rng.below((rep.max - rep.min + 1) as u64) as usize;
            for _ in 0..count {
                match &rep.atom {
                    Atom::Any => {
                        out.push(char::from(b' ' + rng.below(95) as u8));
                    }
                    Atom::Class(set) => {
                        assert!(!set.is_empty(), "empty character class");
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                    Atom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

// --- Macros ---------------------------------------------------------------

/// Declares property tests. Mirrors `proptest::proptest!` for the shapes
/// this workspace uses: an optional `#![proptest_config(...)]` header and
/// `fn name(arg in strategy, ...) { body }` items (attributes preserved).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..u64::from(config.cases) {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {case} failed: {e}");
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` != `{:?}`",
                        left, right
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` != `{:?}`: {}",
                        left,
                        right,
                        format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if *left == *right {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` == `{:?}`",
                        left, right
                    )));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = (5u64..10).generate(&mut rng);
            assert!((5..10).contains(&v));
            let f = (0.5f64..0.75).generate(&mut rng);
            assert!((0.5..0.75).contains(&f));
        }
    }

    #[test]
    fn regex_strategies_match_shape() {
        let mut rng = TestRng::for_case("regex", 1);
        for _ in 0..200 {
            let s = ".{0,20}".generate(&mut rng);
            assert!(s.len() <= 20);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            let t = "[a-c]{2,4}".generate(&mut rng);
            assert!((2..=4).contains(&t.len()));
            assert!(t.chars().all(|c| ('a'..='c').contains(&c)));
            let u = "[a-zA-Z ,.]{0,8}".generate(&mut rng);
            assert!(u.len() <= 8);
            assert!(u.chars().all(|c| c.is_ascii_alphabetic() || c == ' ' || c == ',' || c == '.'));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let gen_one = || {
            let mut rng = TestRng::for_case("det", 3);
            collection::vec(any::<u8>(), 1..50).generate(&mut rng)
        };
        assert_eq!(gen_one(), gen_one());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_args(a in 1u64..100, b in collection::vec(any::<u8>(), 0..10)) {
            prop_assert!(a >= 1);
            prop_assert!(b.len() < 10, "len was {}", b.len());
            prop_assert_eq!(a, a);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(x in any::<u16>()) {
            prop_assert!(u32::from(x) <= u32::from(u16::MAX));
        }
    }
}
