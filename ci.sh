#!/usr/bin/env bash
# Repo CI gate: build, tests, lints, and the real-concurrency stress
# tests under a timeout (they involve real threads and real files, so a
# deadlock would otherwise hang the pipeline).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> concurrency stress tests (120s timeout)"
timeout 120 cargo test -q -p lsm-kvs --test concurrency

echo "==> sharding gate: multi-threaded shard stress + sharded crash cycles"
timeout 120 cargo test -q -p lsm-kvs --test concurrency sharded_disjoint_writers_with_cross_shard_scans
timeout 120 cargo test -q -p lsm-kvs --test crash_recovery sharded_randomized_crash_cycles_sim

echo "==> sharding gate: --shards 1 must be byte-identical to no flag"
./target/release/db_bench --benchmarks fillrandom --num 20000 > /tmp/ci-noshard.txt
./target/release/db_bench --benchmarks fillrandom --num 20000 --shards 1 > /tmp/ci-shard1.txt
diff /tmp/ci-noshard.txt /tmp/ci-shard1.txt
rm -f /tmp/ci-noshard.txt /tmp/ci-shard1.txt

echo "==> crash-recovery gate: 25 wall-clock power-cut cycles (120s timeout)"
CRASH_DIR="$(mktemp -d)"
trap 'rm -rf "$CRASH_DIR"' EXIT
timeout 120 ./target/release/db_bench --crash-loop 25 --db "$CRASH_DIR"

echo "==> observability gate: stats, listeners, dump parsing"
cargo test -q -p lsm-kvs stats
cargo test -q -p lsm-kvs listener_fires_once_per_stall_transition
cargo test -q -p elmo-tune parses_stats_dump_sections
cargo test -q -p elmo-tune stats_dump

echo "==> serving gate: kv_server end-to-end (remote bench, stats RPC, clean shutdown)"
SERVE_DIR="$(mktemp -d)"
./target/release/kv_server --db "$SERVE_DIR" --listen 127.0.0.1:7491 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null; rm -rf "$CRASH_DIR" "$SERVE_DIR"' EXIT
sleep 1
timeout 120 ./target/release/db_bench --benchmarks fillrandom --num 5000 \
    --remote 127.0.0.1:7491 --threads 4 > /tmp/ci-remote.txt
timeout 120 ./target/release/db_bench --benchmarks readrandom --num 5000 \
    --remote 127.0.0.1:7491 --threads 4 --stats_dump >> /tmp/ci-remote.txt
timeout 120 ./target/release/db_bench --benchmarks multireadrandom --batch-size 32 \
    --num 5000 --remote 127.0.0.1:7491 --stats_dump >> /tmp/ci-remote.txt
grep -q "^fillrandom" /tmp/ci-remote.txt
grep -q "^readrandom" /tmp/ci-remote.txt
grep -q "^multireadrandom" /tmp/ci-remote.txt
# Batched reads must actually reach the engine's multi_get path: the
# live server's stats dump reports a nonzero multiget batch count.
grep -Eq "Cumulative reads: [0-9]+ gets, [1-9][0-9]* multiget batches" /tmp/ci-remote.txt
# The Stats RPC must return a parseable dump: the engine's section plus
# the server's own counters.
grep -q "\*\* DB Stats \*\*" /tmp/ci-remote.txt
grep -q "\*\* Server Stats \*\*" /tmp/ci-remote.txt
grep -q "requests_ok" /tmp/ci-remote.txt
timeout 30 ./target/release/kv_server --shutdown 127.0.0.1:7491
wait "$SERVER_PID"
trap 'rm -rf "$CRASH_DIR" "$SERVE_DIR"' EXIT
rm -f /tmp/ci-remote.txt

echo "==> live-retune gate: SetOptions over the wire against a serving store"
LIVE_DIR="$(mktemp -d)"
./target/release/kv_server --db "$LIVE_DIR" --listen 127.0.0.1:7493 &
LIVE_PID=$!
trap 'kill "$LIVE_PID" 2>/dev/null; rm -rf "$CRASH_DIR" "$SERVE_DIR" "$LIVE_DIR"' EXIT
sleep 1
# Background traffic for the live throughput windows to observe.
timeout 180 ./target/release/db_bench --benchmarks fillrandom --num 1000000 \
    --remote 127.0.0.1:7493 --threads 2 > /dev/null 2>&1 &
LOAD_PID=$!
# A mutable batch applies atomically, without a reopen.
timeout 30 ./target/release/kv_server --set-options 127.0.0.1:7493 \
    write_buffer_size=128MB,max_background_jobs=6 > /tmp/ci-live.txt
grep -q "applied   write_buffer_size: 67108864 -> 134217728" /tmp/ci-live.txt
grep -q "applied   max_background_jobs: 2 -> 6" /tmp/ci-live.txt
# An immutable option is rejected by name — and must not disturb the
# server: the Stats RPC immediately after still answers on a fresh
# connection and shows exactly one committed batch.
if timeout 30 ./target/release/kv_server --set-options 127.0.0.1:7493 \
    num_shards=4 > /tmp/ci-live-rej.txt 2>&1; then
    echo "immutable batch unexpectedly succeeded"; exit 1
fi
grep -q "rejected  num_shards" /tmp/ci-live-rej.txt
timeout 30 ./target/release/kv_server --stats 127.0.0.1:7493 > /tmp/ci-live-stats.txt
grep -q "\*\* Live options \*\*" /tmp/ci-live-stats.txt
grep -q "write_buffer_size: 134217728 (opened: 67108864)" /tmp/ci-live-stats.txt
grep -q "options_changed: 1" /tmp/ci-live-stats.txt
# Full loop: LiveTarget retunes the serving store through the LLM
# session — vetted diffs over SetOptions, throughput from Stats-RPC
# ticker deltas, keep/revert on measured windows, immutable proposals
# dropped by name instead of killing the session.
timeout 120 ./target/release/live_tune --addr 127.0.0.1:7493 --iters 2 --window-ms 500 \
    --start-option write_buffer_size=128MB --start-option max_background_jobs=6 \
    > /tmp/ci-live-tune.txt
grep -q "rejected immutable: num_shards" /tmp/ci-live-tune.txt
grep -Eq "server confirmed [1-9][0-9]* live batch\(es\) via options_changed" /tmp/ci-live-tune.txt
grep -Eq "\[(Kept|Reverted)\]" /tmp/ci-live-tune.txt
kill "$LOAD_PID" 2>/dev/null || true
timeout 30 ./target/release/kv_server --shutdown 127.0.0.1:7493
wait "$LIVE_PID"
trap 'rm -rf "$CRASH_DIR" "$SERVE_DIR" "$LIVE_DIR"' EXIT
rm -f /tmp/ci-live.txt /tmp/ci-live-rej.txt /tmp/ci-live-stats.txt /tmp/ci-live-tune.txt

echo "==> serving gate: protocol robustness + shutdown durability tests"
timeout 120 cargo test -q -p lsm-server

echo "==> read-accounting gate: metadata re-reads and table-cache reservations"
cargo test -q -p lsm-kvs --test read_accounting

echo "==> multi_get gate: batched reads equivalent to looped gets (sim, sharded, real)"
timeout 300 cargo test -q -p lsm-kvs --test multi_get

echo "==> determinism gate: repro table5 must be byte-identical run-to-run"
./target/release/repro table5 > /tmp/ci-table5-a.txt
./target/release/repro table5 > /tmp/ci-table5-b.txt
diff /tmp/ci-table5-a.txt /tmp/ci-table5-b.txt
rm -f /tmp/ci-table5-a.txt /tmp/ci-table5-b.txt

echo "CI OK"
