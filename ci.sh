#!/usr/bin/env bash
# Repo CI gate: build, tests, lints, and the real-concurrency stress
# tests under a timeout (they involve real threads and real files, so a
# deadlock would otherwise hang the pipeline).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> concurrency stress tests (120s timeout)"
timeout 120 cargo test -q -p lsm-kvs --test concurrency

echo "==> sharding gate: multi-threaded shard stress + sharded crash cycles"
timeout 120 cargo test -q -p lsm-kvs --test concurrency sharded_disjoint_writers_with_cross_shard_scans
timeout 120 cargo test -q -p lsm-kvs --test crash_recovery sharded_randomized_crash_cycles_sim

echo "==> sharding gate: --shards 1 must be byte-identical to no flag"
./target/release/db_bench --benchmarks fillrandom --num 20000 > /tmp/ci-noshard.txt
./target/release/db_bench --benchmarks fillrandom --num 20000 --shards 1 > /tmp/ci-shard1.txt
diff /tmp/ci-noshard.txt /tmp/ci-shard1.txt
rm -f /tmp/ci-noshard.txt /tmp/ci-shard1.txt

echo "==> crash-recovery gate: 25 wall-clock power-cut cycles (120s timeout)"
CRASH_DIR="$(mktemp -d)"
trap 'rm -rf "$CRASH_DIR"' EXIT
timeout 120 ./target/release/db_bench --crash-loop 25 --db "$CRASH_DIR"

echo "==> observability gate: stats, listeners, dump parsing"
cargo test -q -p lsm-kvs stats
cargo test -q -p lsm-kvs listener_fires_once_per_stall_transition
cargo test -q -p elmo-tune parses_stats_dump_sections
cargo test -q -p elmo-tune stats_dump

echo "==> serving gate: kv_server end-to-end (remote bench, stats RPC, clean shutdown)"
SERVE_DIR="$(mktemp -d)"
./target/release/kv_server --db "$SERVE_DIR" --listen 127.0.0.1:7491 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null; rm -rf "$CRASH_DIR" "$SERVE_DIR"' EXIT
sleep 1
timeout 120 ./target/release/db_bench --benchmarks fillrandom --num 5000 \
    --remote 127.0.0.1:7491 --threads 4 > /tmp/ci-remote.txt
timeout 120 ./target/release/db_bench --benchmarks readrandom --num 5000 \
    --remote 127.0.0.1:7491 --threads 4 --stats_dump >> /tmp/ci-remote.txt
timeout 120 ./target/release/db_bench --benchmarks multireadrandom --batch-size 32 \
    --num 5000 --remote 127.0.0.1:7491 --stats_dump >> /tmp/ci-remote.txt
grep -q "^fillrandom" /tmp/ci-remote.txt
grep -q "^readrandom" /tmp/ci-remote.txt
grep -q "^multireadrandom" /tmp/ci-remote.txt
# Batched reads must actually reach the engine's multi_get path: the
# live server's stats dump reports a nonzero multiget batch count.
grep -Eq "Cumulative reads: [0-9]+ gets, [1-9][0-9]* multiget batches" /tmp/ci-remote.txt
# The Stats RPC must return a parseable dump: the engine's section plus
# the server's own counters.
grep -q "\*\* DB Stats \*\*" /tmp/ci-remote.txt
grep -q "\*\* Server Stats \*\*" /tmp/ci-remote.txt
grep -q "requests_ok" /tmp/ci-remote.txt
timeout 30 ./target/release/kv_server --shutdown 127.0.0.1:7491
wait "$SERVER_PID"
trap 'rm -rf "$CRASH_DIR" "$SERVE_DIR"' EXIT
rm -f /tmp/ci-remote.txt

echo "==> serving gate: protocol robustness + shutdown durability tests"
timeout 120 cargo test -q -p lsm-server

echo "==> read-accounting gate: metadata re-reads and table-cache reservations"
cargo test -q -p lsm-kvs --test read_accounting

echo "==> multi_get gate: batched reads equivalent to looped gets (sim, sharded, real)"
timeout 300 cargo test -q -p lsm-kvs --test multi_get

echo "==> determinism gate: repro table5 must be byte-identical run-to-run"
./target/release/repro table5 > /tmp/ci-table5-a.txt
./target/release/repro table5 > /tmp/ci-table5-b.txt
diff /tmp/ci-table5-a.txt /tmp/ci-table5-b.txt
rm -f /tmp/ci-table5-a.txt /tmp/ci-table5-b.txt

echo "CI OK"
