#!/usr/bin/env bash
# Repo CI gate: build, tests, lints, and the real-concurrency stress
# tests under a timeout (they involve real threads and real files, so a
# deadlock would otherwise hang the pipeline).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> concurrency stress tests (120s timeout)"
timeout 120 cargo test -q -p lsm-kvs --test concurrency

echo "==> sharding gate: multi-threaded shard stress + sharded crash cycles"
timeout 120 cargo test -q -p lsm-kvs --test concurrency sharded_disjoint_writers_with_cross_shard_scans
timeout 120 cargo test -q -p lsm-kvs --test crash_recovery sharded_randomized_crash_cycles_sim

echo "==> sharding gate: --shards 1 must be byte-identical to no flag"
./target/release/db_bench --benchmarks fillrandom --num 20000 > /tmp/ci-noshard.txt
./target/release/db_bench --benchmarks fillrandom --num 20000 --shards 1 > /tmp/ci-shard1.txt
diff /tmp/ci-noshard.txt /tmp/ci-shard1.txt
rm -f /tmp/ci-noshard.txt /tmp/ci-shard1.txt

echo "==> crash-recovery gate: 25 wall-clock power-cut cycles (120s timeout)"
CRASH_DIR="$(mktemp -d)"
trap 'rm -rf "$CRASH_DIR"' EXIT
timeout 120 ./target/release/db_bench --crash-loop 25 --db "$CRASH_DIR"

echo "==> observability gate: stats, listeners, dump parsing"
cargo test -q -p lsm-kvs stats
cargo test -q -p lsm-kvs listener_fires_once_per_stall_transition
cargo test -q -p elmo-tune parses_stats_dump_sections
cargo test -q -p elmo-tune stats_dump

echo "==> determinism gate: repro table5 must be byte-identical run-to-run"
./target/release/repro table5 > /tmp/ci-table5-a.txt
./target/release/repro table5 > /tmp/ci-table5-b.txt
diff /tmp/ci-table5-a.txt /tmp/ci-table5-b.txt
rm -f /tmp/ci-table5-a.txt /tmp/ci-table5-b.txt

echo "CI OK"
