//! `repro` — regenerates every table and figure of the ELMo-Tune paper.
//!
//! ```text
//! repro [--scale <f64>] [--iters <n>] [--out <dir>] <experiment>
//! ```
//!
//! Experiments: `table1 table2 table3 table4 table5 fig3 fig4 calibrate all`.
//! See `EXPERIMENTS.md` for the experiment index and expected shapes.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = elmo_bench::repro_main(&args) {
        eprintln!("repro: {e}");
        std::process::exit(1);
    }
}
