//! # elmo-bench — the reproduction harness
//!
//! Library backing the `repro` binary: one function per table/figure of
//! the ELMo-Tune paper, plus calibration helpers. Criterion benches under
//! `benches/` reuse these entry points at reduced scale.

#![warn(missing_docs)]

pub mod repro;

pub use repro::repro_main;
