//! Experiment drivers regenerating every table and figure of the paper.
//!
//! | Experiment | Paper content |
//! |------------|---------------|
//! | `table1`   | FR throughput, default vs tuned, {2,4}c x {4,8}GiB, NVMe |
//! | `table2`   | FR p99 latency, same matrix |
//! | `table3`   | Throughput across FR/RR/RRWR/Mixgraph, 4c+4GiB NVMe |
//! | `table4`   | p99 latency (read/write) across workloads |
//! | `table5`   | Option changes over iterations (FR, 2c+4GiB, HDD) |
//! | `fig3`     | Per-iteration tput/p99w/p99r for FR/Mixgraph/RRWR on HDD |
//! | `fig4`     | Same on NVMe SSD |
//!
//! Absolute numbers come from the simulated substrate; EXPERIMENTS.md
//! records how the *shapes* compare with the paper.

use std::io::Write as _;
use std::path::PathBuf;

use db_bench::{run_benchmark, BenchmarkSpec};
use elmo_tune::{EnvSpec, TuningConfig, TuningReport, TuningSession};
use hw_sim::{DeviceModel, HardwareEnv};
use llm_client::{ExpertModel, QuirkConfig};
use lsm_kvs::options::Options;
use lsm_kvs::Db;

/// Generic error type for the harness.
pub type Error = Box<dyn std::error::Error>;

/// Harness configuration (from CLI flags).
#[derive(Debug, Clone)]
pub struct ReproConfig {
    /// Fraction of the paper's op counts to run (1.0 = full 50M/25M/10M).
    pub scale: f64,
    /// Tuning iterations (paper: 7).
    pub iterations: usize,
    /// Output directory for CSV series.
    pub out_dir: PathBuf,
    /// Expert-model seed.
    pub seed: u64,
}

impl Default for ReproConfig {
    fn default() -> Self {
        ReproConfig {
            scale: 0.04,
            iterations: 7,
            out_dir: PathBuf::from("results"),
            seed: 42,
        }
    }
}

/// Entry point for the `repro` binary.
///
/// # Errors
///
/// Returns engine/LLM errors from the underlying runs, or a usage error
/// for unknown experiments.
pub fn repro_main(args: &[String]) -> Result<(), Error> {
    let mut config = ReproConfig::default();
    let mut experiment = String::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                config.scale = args.get(i).ok_or("missing --scale value")?.parse()?;
            }
            "--iters" => {
                i += 1;
                config.iterations = args.get(i).ok_or("missing --iters value")?.parse()?;
            }
            "--out" => {
                i += 1;
                config.out_dir = PathBuf::from(args.get(i).ok_or("missing --out value")?);
            }
            "--seed" => {
                i += 1;
                config.seed = args.get(i).ok_or("missing --seed value")?.parse()?;
            }
            other if !other.starts_with("--") => experiment = other.to_string(),
            other => return Err(format!("unknown flag: {other}").into()),
        }
        i += 1;
    }
    std::fs::create_dir_all(&config.out_dir)?;
    match experiment.as_str() {
        "table1" | "table2" | "table12" => {
            let runs = run_hardware_matrix(&config)?;
            print_table1(&runs);
            print_table2(&runs);
        }
        "table3" | "table4" | "table34" => {
            let runs = run_workload_suite(&config)?;
            print_table3(&runs);
            print_table4(&runs);
        }
        "table5" => {
            let report = run_table5(&config)?;
            println!("\nTable 5: Changes in options over iterations by LLM");
            println!("(fillrandom, 2 cores + 4 GiB, SATA HDD)\n");
            println!("{}", report.table5_text());
        }
        "fig3" => run_figure(&config, DeviceModel::sata_hdd(), "fig3")?,
        "fig4" => run_figure(&config, DeviceModel::nvme_ssd(), "fig4")?,
        "calibrate" => calibrate(&config)?,
        "all" => {
            let runs = run_hardware_matrix(&config)?;
            print_table1(&runs);
            print_table2(&runs);
            let runs = run_workload_suite(&config)?;
            print_table3(&runs);
            print_table4(&runs);
            let report = run_table5(&config)?;
            println!("\nTable 5: Changes in options over iterations by LLM");
            println!("(fillrandom, 2 cores + 4 GiB, SATA HDD)\n");
            println!("{}", report.table5_text());
            run_figure(&config, DeviceModel::sata_hdd(), "fig3")?;
            run_figure(&config, DeviceModel::nvme_ssd(), "fig4")?;
        }
        "" => {
            return Err(
                "usage: repro [--scale f] [--iters n] [--out dir] [--seed n] \
                 <table1|table2|table3|table4|table5|fig3|fig4|calibrate|all>"
                    .into(),
            )
        }
        other => return Err(format!("unknown experiment: {other}").into()),
    }
    Ok(())
}

fn tuning_config(config: &ReproConfig) -> TuningConfig {
    TuningConfig {
        iterations: config.iterations,
        ..TuningConfig::default()
    }
}

fn run_session(
    config: &ReproConfig,
    env: EnvSpec,
    spec: BenchmarkSpec,
) -> Result<TuningReport, Error> {
    let mut model = ExpertModel::new(config.seed, QuirkConfig::default());
    let report = TuningSession::new(env.clone(), spec.clone(), &mut model)
        .with_config(tuning_config(config))
        .run(Options::default())?;
    eprintln!(
        "  [{} @ {}] default {:.0} ops/s -> tuned {:.0} ops/s ({:.2}x, best at iter {})",
        report.workload,
        report.environment,
        report.baseline.ops_per_sec,
        report.best.ops_per_sec,
        report.throughput_improvement(),
        report.best_iteration,
    );
    Ok(report)
}

// ---------------------------------------------------------------------------
// Tables 1 & 2: hardware matrix, fillrandom on NVMe
// ---------------------------------------------------------------------------

/// Runs the 2x2 hardware matrix (shared by Tables 1 and 2).
pub fn run_hardware_matrix(config: &ReproConfig) -> Result<Vec<(String, TuningReport)>, Error> {
    eprintln!("Tables 1-2: fillrandom across the hardware matrix (NVMe)...");
    let mut out = Vec::new();
    for (cores, gib) in [(2usize, 4u64), (2, 8), (4, 4), (4, 8)] {
        let env = EnvSpec {
            cores,
            mem_gib: gib,
            device: DeviceModel::nvme_ssd(),
        };
        let report = run_session(config, env, BenchmarkSpec::fillrandom(config.scale))?;
        out.push((format!("{cores}+{gib}"), report));
    }
    Ok(out)
}

/// Prints Table 1 (throughput across the hardware matrix).
pub fn print_table1(runs: &[(String, TuningReport)]) {
    println!("\nTable 1: Varying Hardware Configurations for Fillrandom on NVMe SSD - Throughput (ops/sec)");
    print!("{:<8}", "Config");
    for (hw, _) in runs {
        print!(" | {hw:>9}");
    }
    println!();
    print!("{:<8}", "Default");
    for (_, r) in runs {
        print!(" | {:>9.0}", r.baseline.ops_per_sec);
    }
    println!();
    print!("{:<8}", "Tuned");
    for (_, r) in runs {
        print!(" | {:>9.0}", r.best.ops_per_sec);
    }
    println!();
}

/// Prints Table 2 (p99 latency across the hardware matrix).
pub fn print_table2(runs: &[(String, TuningReport)]) {
    println!("\nTable 2: Varying Hardware Configurations for Fillrandom on NVMe SSD - p99 Latency (us)");
    print!("{:<8}", "Config");
    for (hw, _) in runs {
        print!(" | {hw:>9}");
    }
    println!();
    print!("{:<8}", "Default");
    for (_, r) in runs {
        print!(" | {:>9.2}", r.baseline.p99_write_us.unwrap_or(0.0));
    }
    println!();
    print!("{:<8}", "Tuned");
    for (_, r) in runs {
        print!(" | {:>9.2}", r.best.p99_write_us.unwrap_or(0.0));
    }
    println!();
}

// ---------------------------------------------------------------------------
// Tables 3 & 4: workload suite at 4 cores + 4 GiB on NVMe
// ---------------------------------------------------------------------------

/// Runs the four paper workloads (shared by Tables 3 and 4).
pub fn run_workload_suite(config: &ReproConfig) -> Result<Vec<TuningReport>, Error> {
    eprintln!("Tables 3-4: the four workloads at 4 cores + 4 GiB (NVMe)...");
    let env = EnvSpec {
        cores: 4,
        mem_gib: 4,
        device: DeviceModel::nvme_ssd(),
    };
    let mut out = Vec::new();
    for spec in BenchmarkSpec::paper_suite(config.scale) {
        out.push(run_session(config, env.clone(), spec)?);
    }
    Ok(out)
}

/// Prints Table 3 (throughput across workloads).
pub fn print_table3(runs: &[TuningReport]) {
    println!("\nTable 3: Varying Workloads with 4CPUs & 4GiB RAM on NVMe SSD - Throughput (ops/sec)");
    print!("{:<8}", "Config");
    for r in runs {
        print!(" | {:>9}", r.workload);
    }
    println!();
    print!("{:<8}", "Default");
    for r in runs {
        print!(" | {:>9.0}", r.baseline.ops_per_sec);
    }
    println!();
    print!("{:<8}", "Tuned");
    for r in runs {
        print!(" | {:>9.0}", r.best.ops_per_sec);
    }
    println!();
}

/// Prints Table 4 (p99 latency, write/read split, across workloads).
pub fn print_table4(runs: &[TuningReport]) {
    println!("\nTable 4: Varying Workloads with 4CPUs & 4GiB RAM on NVMe SSD - p99 Latency (us)");
    let fmt = |m: &elmo_tune::IterationMetrics| -> String {
        match (m.p99_write_us, m.p99_read_us) {
            (Some(w), Some(r)) => format!("(W) {w:.2} / (R) {r:.2}"),
            (Some(w), None) => format!("{w:.2}"),
            (None, Some(r)) => format!("{r:.2}"),
            (None, None) => "-".to_string(),
        }
    };
    for r in runs {
        println!(
            "{:<10} Default: {:<28} Tuned: {}",
            r.workload,
            fmt(&r.baseline),
            fmt(&r.best)
        );
    }
}

// ---------------------------------------------------------------------------
// Table 5: option trajectory
// ---------------------------------------------------------------------------

/// Runs the Table-5 session (FR, 2 cores + 4 GiB, SATA HDD).
pub fn run_table5(config: &ReproConfig) -> Result<TuningReport, Error> {
    eprintln!("Table 5: option trajectory (fillrandom, 2c+4GiB, HDD)...");
    let env = EnvSpec {
        cores: 2,
        mem_gib: 4,
        device: DeviceModel::sata_hdd(),
    };
    run_session(config, env, BenchmarkSpec::fillrandom(config.scale))
}

// ---------------------------------------------------------------------------
// Figures 3 & 4: per-iteration series for three workloads
// ---------------------------------------------------------------------------

/// Runs one figure (three workloads on one device), printing the three
/// panels and writing a CSV per panel.
pub fn run_figure(config: &ReproConfig, device: DeviceModel, tag: &str) -> Result<(), Error> {
    let device_name = device.class.label().to_string();
    eprintln!("{tag}: per-iteration series on {device_name}...");
    let env = EnvSpec {
        cores: 4,
        mem_gib: 4,
        device,
    };
    // Paper figures: Fillrandom, Mixgraph, RRWR (readrandom was discarded
    // on system-limitation grounds; we follow the paper's selection).
    let specs = vec![
        BenchmarkSpec::fillrandom(config.scale),
        BenchmarkSpec::mixgraph(config.scale),
        BenchmarkSpec::readrandomwriterandom(config.scale),
    ];
    let mut reports = Vec::new();
    for spec in specs {
        reports.push(run_session(config, env.clone(), spec)?);
    }

    let iters = config.iterations;
    let series = |f: &dyn Fn(&elmo_tune::IterationMetrics) -> f64, r: &TuningReport| -> Vec<f64> {
        let mut out = vec![f(&r.baseline)];
        for rec in &r.records {
            out.push(f(&rec.metrics));
        }
        while out.len() < iters + 1 {
            out.push(*out.last().expect("non-empty"));
        }
        out
    };

    type Panel<'a> = (&'a str, Box<dyn Fn(&elmo_tune::IterationMetrics) -> f64>);
    let panels: Vec<Panel> = vec![
        (
            "throughput_ops_per_sec",
            Box::new(|m: &elmo_tune::IterationMetrics| m.ops_per_sec),
        ),
        (
            "p99_write_us",
            Box::new(|m: &elmo_tune::IterationMetrics| m.p99_write_us.unwrap_or(0.0)),
        ),
        (
            "p99_read_us",
            Box::new(|m: &elmo_tune::IterationMetrics| m.p99_read_us.unwrap_or(0.0)),
        ),
    ];

    println!("\n{tag}: Varying workloads on {device_name} (iterations 0..{iters})");
    for (panel, extract) in &panels {
        println!("\n  ({panel})");
        let mut csv = String::from("iteration");
        for r in &reports {
            csv.push_str(&format!(",{}", r.workload));
        }
        csv.push('\n');
        print!("  {:<10}", "iter");
        for r in &reports {
            print!(" | {:>12}", r.workload);
        }
        println!();
        for i in 0..=iters {
            print!("  {i:<10}");
            csv.push_str(&i.to_string());
            for r in &reports {
                let v = series(extract.as_ref(), r)[i];
                print!(" | {v:>12.1}");
                csv.push_str(&format!(",{v:.3}"));
            }
            println!();
            csv.push('\n');
        }
        let path = config.out_dir.join(format!("{tag}_{panel}.csv"));
        std::fs::write(&path, csv)?;
        println!("  -> {}", path.display());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Calibration
// ---------------------------------------------------------------------------

fn calibrate(config: &ReproConfig) -> Result<(), Error> {
    let scale = config.scale.max(0.001);
    for (name, spec, device, cores, gib) in [
        ("FR/nvme/4c4g", BenchmarkSpec::fillrandom(scale), DeviceModel::nvme_ssd(), 4usize, 4u64),
        ("RR/nvme/4c4g", BenchmarkSpec::readrandom(scale), DeviceModel::nvme_ssd(), 4, 4),
        ("RRWR/nvme/4c4g", BenchmarkSpec::readrandomwriterandom(scale), DeviceModel::nvme_ssd(), 4, 4),
        ("MIX/nvme/4c4g", BenchmarkSpec::mixgraph(scale), DeviceModel::nvme_ssd(), 4, 4),
        ("FR/hdd/2c4g", BenchmarkSpec::fillrandom(scale), DeviceModel::sata_hdd(), 2, 4),
        ("MIX/hdd/2c4g", BenchmarkSpec::mixgraph(scale), DeviceModel::sata_hdd(), 2, 4),
    ] {
        let wall = std::time::Instant::now();
        let env = HardwareEnv::builder()
            .cores(cores)
            .memory_gib(gib)
            .device(device)
            .build_sim();
        let db = Db::builder(Options::default()).env(&env).open()?;
        let report = run_benchmark(&db, &env, &spec, None)?;
        println!(
            "{name:16} ops={:8} tput={:9.0} ops/s  p99w={:8.2}us p99r={:8.2}us  sim={:7.1}s wall={:5.1}s",
            report.ops,
            report.ops_per_sec,
            report.p99_write_micros(),
            report.p99_read_micros(),
            report.duration.as_secs_f64(),
            wall.elapsed().as_secs_f64(),
        );
        std::io::stdout().flush()?;
    }
    Ok(())
}
