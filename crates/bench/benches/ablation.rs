//! Ablation benches for the design choices DESIGN.md calls out:
//! safeguards, change-count caps, prompt budget, and the engine-level
//! bloom/cache contribution.

use criterion::{criterion_group, criterion_main, Criterion};
use db_bench::{run_benchmark, BenchmarkSpec};
use elmo_tune::{EnvSpec, SafeguardPolicy, TuningConfig, TuningSession};
use hw_sim::{DeviceModel, HardwareEnv};
use llm_client::{ExpertModel, QuirkConfig};
use lsm_kvs::options::Options;
use lsm_kvs::Db;

const SCALE: f64 = 0.004;

fn hdd() -> EnvSpec {
    EnvSpec {
        cores: 2,
        mem_gib: 4,
        device: DeviceModel::sata_hdd(),
    }
}

/// Safeguards ON vs OFF under a heavily hallucinating model. With the
/// blacklist removed, the model's `disable_wal=true` advice goes through:
/// throughput "improves" at the cost of durability — exactly why the
/// paper's Safeguard Enforcer exists.
fn bench_safeguards(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/safeguards");
    g.sample_size(10);
    let mut printed = false;
    g.bench_function("on_vs_off_under_heavy_quirks", |b| {
        b.iter(|| {
            let run = |unprotected: bool| {
                let mut model = ExpertModel::new(11, QuirkConfig::heavy());
                let mut policy = SafeguardPolicy::with_memory_budget(4 << 30);
                if unprotected {
                    policy.unprotect("disable_wal");
                    policy.unprotect("avoid_flush_during_shutdown");
                    policy.unprotect("manual_wal_flush");
                }
                TuningSession::new(hdd(), BenchmarkSpec::fillrandom(SCALE), &mut model)
                    .with_config(TuningConfig {
                        iterations: 3,
                        ..TuningConfig::default()
                    })
                    .with_policy(policy)
                    .run(Options::default())
                    .expect("session runs")
            };
            let guarded = run(false);
            let unguarded = run(true);
            if !printed {
                printed = true;
                println!(
                    "  guarded: {:.2}x (wal={}), unguarded: {:.2}x (wal disabled={})",
                    guarded.throughput_improvement(),
                    !guarded.final_options.disable_wal,
                    unguarded.throughput_improvement(),
                    unguarded.final_options.disable_wal,
                );
            }
            assert!(!guarded.final_options.disable_wal);
            (guarded.best.ops_per_sec, unguarded.best.ops_per_sec)
        });
    });
    g.finish();
}

/// Max changes per iteration: 3 vs 10 vs 100 (the paper observes that
/// beyond ~10 the returns are marginal).
fn bench_change_cap(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/max_changes");
    g.sample_size(10);
    for cap in [3usize, 10, 100] {
        g.bench_function(&format!("cap_{cap}"), |b| {
            b.iter(|| {
                let mut model = ExpertModel::new(5, QuirkConfig::default());
                let report =
                    TuningSession::new(hdd(), BenchmarkSpec::fillrandom(SCALE), &mut model)
                        .with_config(TuningConfig {
                            iterations: 2,
                            max_changes_per_iteration: cap,
                            ..TuningConfig::default()
                        })
                        .run(Options::default())
                        .expect("session runs");
                report.best.ops_per_sec
            });
        });
    }
    g.finish();
}

/// Prompt budget: the full interlaced prompt vs a tiny one that forces
/// truncation of the system/options sections (paper challenge: "how much
/// information is enough?").
fn bench_prompt_budget(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/prompt_budget");
    g.sample_size(10);
    for budget in [1_200usize, 16_000] {
        g.bench_function(&format!("chars_{budget}"), |b| {
            b.iter(|| {
                let mut model = ExpertModel::new(5, QuirkConfig::default());
                let report =
                    TuningSession::new(hdd(), BenchmarkSpec::fillrandom(SCALE), &mut model)
                        .with_config(TuningConfig {
                            iterations: 2,
                            prompt_budget_chars: budget,
                            ..TuningConfig::default()
                        })
                        .run(Options::default())
                        .expect("session runs");
                report.best.ops_per_sec
            });
        });
    }
    g.finish();
}

/// Engine-level ablation: how much of the read-side win is bloom filters
/// vs block cache (the two levers behind the paper's RR/RRWR rows).
fn bench_bloom_cache_split(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/read_levers");
    g.sample_size(10);
    let spec = {
        let mut s = BenchmarkSpec::readrandom(1.0);
        s.num_ops = 20_000;
        s.preload_keys = 60_000;
        s.key_space = 60_000;
        s
    };
    let run = |bloom: f64, cache_mb: u64| {
        let env = HardwareEnv::builder()
            .cores(4)
            .memory_gib(4)
            .device(DeviceModel::nvme_ssd())
            .build_sim();
        let opts = Options {
            bloom_filter_bits_per_key: bloom,
            block_cache_size: cache_mb << 20,
            ..Options::default()
        };
        let db = Db::builder(opts).env(&env).open().unwrap();
        run_benchmark(&db, &env, &spec, None).unwrap().ops_per_sec
    };
    let mut printed = false;
    g.bench_function("default_bloom_cache_both", |b| {
        b.iter(|| {
            let default = run(0.0, 8);
            let bloom_only = run(10.0, 8);
            let cache_only = run(0.0, 512);
            let both = run(10.0, 512);
            if !printed {
                printed = true;
                println!(
                    "  RR ops/s: default {default:.0}, +bloom {bloom_only:.0}, +cache {cache_only:.0}, both {both:.0}"
                );
            }
            (default, bloom_only, cache_only, both)
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_safeguards, bench_change_cap, bench_prompt_budget, bench_bloom_cache_split
}
criterion_main!(benches);
