//! Engine microbenchmarks: the storage-substrate hot paths.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use hw_sim::{DeviceModel, HardwareEnv};
use lsm_kvs::options::{CompressionType, Options};
use lsm_kvs::sstable::bloom::BloomFilter;
use lsm_kvs::sstable::compress;
use lsm_kvs::{Db, MemTable, ValueType};

fn env() -> HardwareEnv {
    HardwareEnv::builder()
        .cores(4)
        .memory_gib(8)
        .device(DeviceModel::nvme_ssd())
        .build_sim()
}

fn bench_put(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/put");
    g.throughput(Throughput::Elements(1));
    g.bench_function("sequential_keys", |b| {
        let env = env();
        let db = Db::builder(Options::default()).env(&env).open().unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            db.put(format!("key-{i:012}").as_bytes(), &[0u8; 100]).unwrap();
        });
    });
    g.finish();
}

fn bench_get(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/get");
    g.throughput(Throughput::Elements(1));
    let env = env();
    let opts = Options {
        write_buffer_size: 1 << 20,
        target_file_size_base: 1 << 20,
        max_bytes_for_level_base: 4 << 20,
        bloom_filter_bits_per_key: 10.0,
        ..Options::default()
    };
    let db = Db::builder(opts).env(&env).open().unwrap();
    for i in 0..50_000u64 {
        db.put(format!("key-{i:012}").as_bytes(), &[7u8; 100]).unwrap();
    }
    db.flush().unwrap();
    db.wait_background_idle().unwrap();
    let mut i = 0u64;
    g.bench_function("hit_across_levels", |b| {
        b.iter(|| {
            i = (i + 7919) % 50_000;
            db.get(format!("key-{i:012}").as_bytes()).unwrap().unwrap();
        });
    });
    g.bench_function("miss_with_bloom", |b| {
        b.iter(|| {
            i += 1;
            assert!(db.get(format!("absent-{i:012}").as_bytes()).unwrap().is_none());
        });
    });
    g.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/scan");
    let env = env();
    let db = Db::builder(Options::default()).env(&env).open().unwrap();
    for i in 0..20_000u64 {
        db.put(format!("key-{i:012}").as_bytes(), &[1u8; 100]).unwrap();
    }
    db.flush().unwrap();
    g.throughput(Throughput::Elements(100));
    g.bench_function("scan_100", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 131) % 19_000;
            let out = db.scan(format!("key-{i:012}").as_bytes(), 100).unwrap();
            assert_eq!(out.len(), 100);
        });
    });
    g.finish();
}

fn bench_memtable(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/memtable");
    g.throughput(Throughput::Elements(1));
    g.bench_function("insert", |b| {
        b.iter_batched(
            || MemTable::new(0),
            |mut mt| {
                for i in 0..1_000u64 {
                    mt.add(i + 1, ValueType::Value, &i.to_be_bytes(), &[0u8; 100]);
                }
                mt
            },
            BatchSize::SmallInput,
        );
    });
    let mut mt = MemTable::new(0);
    for i in 0..100_000u64 {
        mt.add(i + 1, ValueType::Value, format!("key-{i:012}").as_bytes(), b"v");
    }
    g.bench_function("get_in_100k", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 31) % 100_000;
            mt.get(format!("key-{i:012}").as_bytes(), u64::MAX);
        });
    });
    g.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/bloom");
    let keys: Vec<Vec<u8>> = (0..100_000).map(|i| format!("key-{i:012}").into_bytes()).collect();
    g.bench_function("build_100k_at_10bits", |b| {
        b.iter(|| BloomFilter::build(keys.iter().map(|k| k.as_slice()), 10.0));
    });
    let filter = BloomFilter::build(keys.iter().map(|k| k.as_slice()), 10.0);
    g.throughput(Throughput::Elements(1));
    g.bench_function("query", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            filter.may_contain(format!("key-{:012}", i % 200_000).as_bytes())
        });
    });
    g.finish();
}

fn bench_compression(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/compression");
    // Half-compressible 64 KiB block (db_bench-style data).
    let mut data = vec![0u8; 64 << 10];
    let mut x = 1u32;
    for (i, byte) in data.iter_mut().enumerate() {
        if i % 100 < 50 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            *byte = (x >> 24) as u8;
        }
    }
    g.throughput(Throughput::Bytes(data.len() as u64));
    for ty in [CompressionType::Lz4, CompressionType::Snappy, CompressionType::Zstd] {
        g.bench_function(&format!("compress/{ty}"), |b| {
            b.iter(|| compress::compress(ty, &data).unwrap());
        });
    }
    let compressed = compress::compress(CompressionType::Snappy, &data).unwrap();
    g.bench_function("decompress/snappy_class", |b| {
        b.iter(|| compress::decompress(&compressed).unwrap());
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_put, bench_get, bench_scan, bench_memtable, bench_bloom, bench_compression
}
criterion_main!(benches);
