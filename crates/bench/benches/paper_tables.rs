//! One criterion bench per paper table, at reduced scale.
//!
//! Each bench runs the same experiment the `repro` binary regenerates in
//! full, shrunk so criterion can sample it. The measured quantity is the
//! wall time of a complete tuning session (baseline + iterations) —
//! useful for tracking harness performance regressions. The *headline
//! numbers* of each table are printed once per bench for reference.

use criterion::{criterion_group, criterion_main, Criterion};
use db_bench::BenchmarkSpec;
use elmo_tune::{EnvSpec, TuningConfig, TuningReport, TuningSession};
use hw_sim::DeviceModel;
use llm_client::{ExpertModel, QuirkConfig};
use lsm_kvs::options::Options;

const SCALE: f64 = 0.004; // 200k FR ops; keeps criterion sampling viable

fn session(env: EnvSpec, spec: BenchmarkSpec, iterations: usize) -> TuningReport {
    let mut model = ExpertModel::new(42, QuirkConfig::default());
    TuningSession::new(env, spec, &mut model)
        .with_config(TuningConfig {
            iterations,
            ..TuningConfig::default()
        })
        .run(Options::default())
        .expect("session runs")
}

fn nvme(cores: usize, gib: u64) -> EnvSpec {
    EnvSpec {
        cores,
        mem_gib: gib,
        device: DeviceModel::nvme_ssd(),
    }
}

fn bench_table1_and_2(c: &mut Criterion) {
    // Tables 1 & 2 share the hardware-matrix runs.
    let mut printed = false;
    c.bench_function("paper/table1_table2_hw_matrix_fillrandom", |b| {
        b.iter(|| {
            let mut rows = Vec::new();
            for (cores, gib) in [(2usize, 4u64), (4, 4)] {
                let r = session(nvme(cores, gib), BenchmarkSpec::fillrandom(SCALE), 2);
                rows.push((cores, gib, r));
            }
            if !printed {
                printed = true;
                for (cores, gib, r) in &rows {
                    println!(
                        "  table1/2 [{cores}c+{gib}g]: tput {:.0}->{:.0} ops/s, p99w {:.2}->{:.2} us",
                        r.baseline.ops_per_sec,
                        r.best.ops_per_sec,
                        r.baseline.p99_write_us.unwrap_or(0.0),
                        r.best.p99_write_us.unwrap_or(0.0)
                    );
                }
            }
            rows.len()
        });
    });
}

fn bench_table3_and_4(c: &mut Criterion) {
    let mut printed = false;
    c.bench_function("paper/table3_table4_workload_suite", |b| {
        b.iter(|| {
            let mut rows = Vec::new();
            for spec in BenchmarkSpec::paper_suite(SCALE) {
                rows.push(session(nvme(4, 4), spec, 2));
            }
            if !printed {
                printed = true;
                for r in &rows {
                    println!(
                        "  table3/4 [{}]: tput {:.0}->{:.0} ops/s ({:.2}x)",
                        r.workload,
                        r.baseline.ops_per_sec,
                        r.best.ops_per_sec,
                        r.throughput_improvement()
                    );
                }
            }
            rows.len()
        });
    });
}

fn bench_table5(c: &mut Criterion) {
    let mut printed = false;
    c.bench_function("paper/table5_option_trajectory", |b| {
        b.iter(|| {
            let env = EnvSpec {
                cores: 2,
                mem_gib: 4,
                device: DeviceModel::sata_hdd(),
            };
            let r = session(env, BenchmarkSpec::fillrandom(SCALE), 3);
            let matrix = r.option_change_matrix();
            assert!(!matrix.is_empty(), "the LLM must have changed something");
            if !printed {
                printed = true;
                println!("  table5: {} options touched across 3 iterations", matrix.len());
            }
            matrix.len()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1_and_2, bench_table3_and_4, bench_table5
}
criterion_main!(benches);
