//! Criterion benches for Figures 3 and 4 (per-iteration series), at
//! reduced scale, one bench per figure.

use criterion::{criterion_group, criterion_main, Criterion};
use db_bench::BenchmarkSpec;
use elmo_tune::{EnvSpec, TuningConfig, TuningSession};
use hw_sim::DeviceModel;
use llm_client::{ExpertModel, QuirkConfig};
use lsm_kvs::options::Options;

const SCALE: f64 = 0.003;

fn run_figure(device: DeviceModel, label: &str, print: bool) -> usize {
    let env = EnvSpec {
        cores: 4,
        mem_gib: 4,
        device,
    };
    let specs = [
        BenchmarkSpec::fillrandom(SCALE),
        BenchmarkSpec::mixgraph(SCALE),
        BenchmarkSpec::readrandomwriterandom(SCALE),
    ];
    let mut total_points = 0;
    for spec in specs {
        let mut model = ExpertModel::new(42, QuirkConfig::default());
        let report = TuningSession::new(env.clone(), spec, &mut model)
            .with_config(TuningConfig {
                iterations: 3,
                ..TuningConfig::default()
            })
            .run(Options::default())
            .expect("session runs");
        total_points += 1 + report.records.len();
        if print {
            println!(
                "  {label} [{}]: {:.0} -> {:.0} ops/s over {} iterations",
                report.workload,
                report.baseline.ops_per_sec,
                report.best.ops_per_sec,
                report.records.len()
            );
        }
    }
    total_points
}

fn bench_fig3(c: &mut Criterion) {
    let mut printed = false;
    c.bench_function("paper/fig3_hdd_iteration_series", |b| {
        b.iter(|| {
            let points = run_figure(DeviceModel::sata_hdd(), "fig3", !printed);
            printed = true;
            points
        });
    });
}

fn bench_fig4(c: &mut Criterion) {
    let mut printed = false;
    c.bench_function("paper/fig4_nvme_iteration_series", |b| {
        b.iter(|| {
            let points = run_figure(DeviceModel::nvme_ssd(), "fig4", !printed);
            printed = true;
            points
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig3, bench_fig4
}
criterion_main!(benches);
