//! # llm-client — language models for LSM-KVS tuning
//!
//! The ELMo-Tune paper drives GPT-4 through the OpenAI chat API. This
//! crate provides that interface three ways:
//!
//! - [`ExpertModel`] — a deterministic rule-based *GPT-4 tuning-expert
//!   simulator* that reads the framework's natural-language prompt and
//!   answers in prose + ini code blocks, with configurable
//!   hallucination/deprecation/invalid-value quirks ([`QuirkConfig`]).
//!   This is the substitution used for every reproduced experiment.
//! - [`ScriptedModel`] — canned-transcript replay for tests.
//! - [`HttpChatModel`] — a real OpenAI-compatible client (plain HTTP,
//!   for local inference servers or an https-terminating proxy).
//!
//! All three implement [`LanguageModel`].

#![warn(missing_docs)]

mod api;
pub mod expert;
mod scripted;
mod transport;

pub use api::{ChatMessage, ChatRequest, ChatResponse, LanguageModel, LlmError, Role, Usage};
pub use expert::{ExpertModel, PromptFacts, QuirkConfig, WorkloadClass};
pub use scripted::ScriptedModel;
pub use transport::HttpChatModel;
