//! A scripted model that replays canned responses (for tests).

use crate::api::{ChatRequest, ChatResponse, LanguageModel, LlmError, Usage};

/// Replays a fixed sequence of responses, recording the prompts it saw.
///
/// # Examples
///
/// ```
/// use llm_client::{ChatRequest, LanguageModel, ScriptedModel};
///
/// let mut model = ScriptedModel::new(vec!["reply one".into()]);
/// let r = model.complete(&ChatRequest::single_turn("x", "hi")).unwrap();
/// assert_eq!(r.content, "reply one");
/// assert!(model.complete(&ChatRequest::single_turn("x", "again")).is_err());
/// assert_eq!(model.prompts_seen().len(), 2); // failed calls are recorded too
/// ```
#[derive(Debug, Default)]
pub struct ScriptedModel {
    responses: std::collections::VecDeque<String>,
    prompts: Vec<String>,
}

impl ScriptedModel {
    /// Creates a model that will return `responses` in order.
    pub fn new(responses: Vec<String>) -> Self {
        ScriptedModel {
            responses: responses.into(),
            prompts: Vec::new(),
        }
    }

    /// The prompts this model has received, in order.
    pub fn prompts_seen(&self) -> &[String] {
        &self.prompts
    }

    /// Remaining canned responses.
    pub fn remaining(&self) -> usize {
        self.responses.len()
    }
}

impl LanguageModel for ScriptedModel {
    fn name(&self) -> &str {
        "scripted"
    }

    fn complete(&mut self, request: &ChatRequest) -> Result<ChatResponse, LlmError> {
        self.prompts.push(request.last_user_content().to_string());
        let content = self.responses.pop_front().ok_or(LlmError::Exhausted)?;
        let usage = Usage {
            prompt_tokens: (request.last_user_content().len() / 4) as u64,
            completion_tokens: (content.len() / 4) as u64,
        };
        Ok(ChatResponse {
            content,
            model: "scripted".to_string(),
            usage,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_in_order_then_exhausts() {
        let mut m = ScriptedModel::new(vec!["a".into(), "b".into()]);
        assert_eq!(m.remaining(), 2);
        let r1 = m.complete(&ChatRequest::single_turn("m", "p1")).unwrap();
        let r2 = m.complete(&ChatRequest::single_turn("m", "p2")).unwrap();
        assert_eq!((r1.content.as_str(), r2.content.as_str()), ("a", "b"));
        assert_eq!(
            m.complete(&ChatRequest::single_turn("m", "p3")).unwrap_err(),
            LlmError::Exhausted
        );
        assert_eq!(m.prompts_seen(), &["p1", "p2", "p3"]);
    }

    #[test]
    fn usage_estimates_tokens() {
        let mut m = ScriptedModel::new(vec!["12345678".into()]);
        let r = m.complete(&ChatRequest::single_turn("m", "a".repeat(40))).unwrap();
        assert_eq!(r.usage.prompt_tokens, 10);
        assert_eq!(r.usage.completion_tokens, 2);
    }
}
