//! Response rendering: prose + ini code blocks in varying layouts.
//!
//! The paper's Option Evaluator must cope with "text, a singular code
//! block, and an interleaving combination of both" — so the expert
//! deliberately varies its output format across iterations.

use lsm_kvs::options::registry::{find_option, Section};

use crate::expert::attention::{PromptFacts, WorkloadClass};
use crate::expert::knowledge::Recommendation;
use crate::expert::policy::{RenderStyle, ResponsePlan};

fn section_of(name: &str) -> Section {
    find_option(name).map(|m| m.section).unwrap_or(Section::Db)
}

fn ini_block(changes: &[&Recommendation]) -> String {
    let mut out = String::new();
    for section in [Section::Db, Section::Cf, Section::Table] {
        let in_section: Vec<&&Recommendation> =
            changes.iter().filter(|c| section_of(&c.name) == section).collect();
        if in_section.is_empty() {
            continue;
        }
        out.push_str(section.ini_header());
        out.push('\n');
        for c in in_section {
            out.push_str(&format!("  {}={}\n", c.name, c.value));
        }
    }
    out
}

fn workload_phrase(facts: &PromptFacts) -> &'static str {
    match facts.workload {
        WorkloadClass::WriteHeavy => "write-intensive",
        WorkloadClass::ReadHeavy => "read-intensive",
        WorkloadClass::Mixed => "mixed read/write",
    }
}

fn intro(facts: &PromptFacts) -> String {
    let device = match facts.rotational {
        Some(true) => "a rotational SATA HDD",
        Some(false) => "flash storage",
        None => "your storage device",
    };
    format!(
        "Looking at your system — {} CPU cores, {:.0} GiB of RAM, and {} — with a {} workload, \
         here is what I would adjust this iteration:\n",
        facts.cores.unwrap_or(4),
        facts.mem_gib.unwrap_or(8.0),
        device,
        workload_phrase(facts),
    )
}

fn rationale_bullets(changes: &[Recommendation]) -> String {
    let mut out = String::new();
    for c in changes {
        out.push_str(&format!("- `{}` -> {}: {}\n", c.name, c.value, c.rationale));
    }
    out
}

/// Renders the planned response as the assistant's message text.
pub fn render(facts: &PromptFacts, plan: &ResponsePlan) -> String {
    let mut out = intro(facts);
    for note in &plan.notes {
        out.push_str(note);
        out.push('\n');
    }
    out.push('\n');
    out.push_str(&rationale_bullets(&plan.changes));
    out.push('\n');

    let refs: Vec<&Recommendation> = plan.changes.iter().collect();
    match plan.style {
        RenderStyle::SingleFence => {
            out.push_str("Apply the following configuration:\n\n```ini\n");
            out.push_str(&ini_block(&refs));
            out.push_str("```\n");
        }
        RenderStyle::BareFence => {
            out.push_str("Updated options file snippet:\n\n```\n");
            out.push_str(&ini_block(&refs));
            out.push_str("```\n");
        }
        RenderStyle::SplitSections => {
            for section in [Section::Db, Section::Cf, Section::Table] {
                let subset: Vec<&Recommendation> = plan
                    .changes
                    .iter()
                    .filter(|c| section_of(&c.name) == section)
                    .collect();
                if subset.is_empty() {
                    continue;
                }
                let label = match section {
                    Section::Db => "database-wide options",
                    Section::Cf => "column-family options",
                    Section::Table => "table/block options",
                };
                out.push_str(&format!("For the {label}:\n\n```ini\n"));
                out.push_str(&ini_block(&subset));
                out.push_str("```\n\n");
            }
        }
        RenderStyle::ProseMix => {
            let (tail, head) = match refs.split_last() {
                Some((t, h)) => (Some(*t), h),
                None => (None, &refs[..]),
            };
            out.push_str("Main changes:\n\n```ini\n");
            out.push_str(&ini_block(head));
            out.push_str("```\n\n");
            if let Some(t) = tail {
                out.push_str(&format!(
                    "Additionally, set {} to {} — {}.\n",
                    t.name, t.value, t.rationale
                ));
            }
        }
    }
    out.push_str("\nRe-run the benchmark and share the results; we can refine further from there.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expert::policy::plan;
    use crate::expert::quirks::QuirkConfig;

    fn facts(iteration: u64) -> PromptFacts {
        PromptFacts {
            cores: Some(2),
            mem_gib: Some(4.0),
            rotational: Some(true),
            workload: WorkloadClass::WriteHeavy,
            iteration,
            max_changes: 10,
            ..PromptFacts::default()
        }
    }

    #[test]
    fn single_fence_has_ini_sections() {
        let f = facts(4); // iteration % 4 == 0 -> SingleFence
        let p = plan(&f, &QuirkConfig::none(), 1);
        let text = render(&f, &p);
        assert!(text.contains("```ini"));
        assert!(text.contains("[DBOptions]"));
        assert!(text.matches("```").count() == 2, "one fence pair");
    }

    #[test]
    fn split_sections_emit_multiple_fences() {
        let f = facts(1);
        let p = plan(&f, &QuirkConfig::none(), 1);
        let text = render(&f, &p);
        assert!(text.matches("```ini").count() >= 2, "{text}");
    }

    #[test]
    fn prose_mix_moves_one_option_out_of_the_fence() {
        let f = facts(3);
        let p = plan(&f, &QuirkConfig::none(), 1);
        let text = render(&f, &p);
        assert!(text.contains("Additionally, set "));
        let last = p.changes.last().unwrap();
        // The prose-only option must not also be inside a fence.
        let fence_content: String = text
            .split("```")
            .enumerate()
            .filter(|(i, _)| i % 2 == 1)
            .map(|(_, s)| s)
            .collect();
        assert!(!fence_content.contains(&format!("{}=", last.name)));
    }

    #[test]
    fn intro_mentions_observed_hardware() {
        let f = facts(1);
        let p = plan(&f, &QuirkConfig::none(), 1);
        let text = render(&f, &p);
        assert!(text.contains("2 CPU cores"));
        assert!(text.contains("4 GiB"));
        assert!(text.contains("SATA HDD"));
        assert!(text.contains("write-intensive"));
    }

    #[test]
    fn every_change_has_a_rationale_bullet() {
        let f = facts(1);
        let p = plan(&f, &QuirkConfig::none(), 1);
        let text = render(&f, &p);
        for c in &p.changes {
            assert!(text.contains(&format!("`{}`", c.name)), "missing bullet for {}", c.name);
        }
    }
}
