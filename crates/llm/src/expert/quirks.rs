//! LLM misbehaviour simulation: hallucinations, deprecated options,
//! invalid values, and unsafe suggestions.
//!
//! The paper's Safeguard Enforcer exists because "LLMs can occasionally
//! produce confident yet incorrect responses". These quirks inject
//! exactly the failure classes the paper names — unknown (hallucinated)
//! options, deprecated options the model "unnecessarily focuses on",
//! out-of-range values, and dangerous advice like disabling the WAL —
//! at configurable, seeded rates so safeguard behaviour is testable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::expert::knowledge::Recommendation;

/// Quirk injection rates (all probabilities per response).
#[derive(Debug, Clone, PartialEq)]
pub struct QuirkConfig {
    /// Chance of proposing a non-existent option.
    pub hallucination_rate: f64,
    /// Chance of proposing a deprecated option.
    pub deprecated_rate: f64,
    /// Chance of proposing an out-of-range or mistyped value.
    pub invalid_value_rate: f64,
    /// Suggest `disable_wal=true` for write-heavy loads (the classic
    /// unsafe blog advice) on early iterations.
    pub suggest_unsafe: bool,
}

impl Default for QuirkConfig {
    fn default() -> Self {
        QuirkConfig {
            hallucination_rate: 0.15,
            deprecated_rate: 0.15,
            invalid_value_rate: 0.10,
            suggest_unsafe: true,
        }
    }
}

impl QuirkConfig {
    /// A perfectly behaved model (for ablations).
    pub fn none() -> Self {
        QuirkConfig {
            hallucination_rate: 0.0,
            deprecated_rate: 0.0,
            invalid_value_rate: 0.0,
            suggest_unsafe: false,
        }
    }

    /// An aggressively misbehaving model (for safeguard stress tests).
    pub fn heavy() -> Self {
        QuirkConfig {
            hallucination_rate: 0.9,
            deprecated_rate: 0.9,
            invalid_value_rate: 0.9,
            suggest_unsafe: true,
        }
    }
}

const HALLUCINATED: &[(&str, &str, &str)] = &[
    ("memtable_accelerator_mode", "true", "enable the memtable accelerator for faster inserts"),
    ("level0_async_flush_mode", "aggressive", "asynchronous L0 flushing reduces write amplification"),
    ("compaction_turbo_boost", "2", "turbo-boosted compactions clear backlog faster"),
    ("write_buffer_szie", "128MB", "increase the write buffer for better batching"),
    ("block_cache_shards_auto", "true", "let the cache pick its own shard count"),
];

const DEPRECATED: &[(&str, &str, &str)] = &[
    ("soft_rate_limit", "0.5", "soften the write rate limit to smooth ingestion"),
    ("base_background_compactions", "2", "keep a base pool of compaction threads"),
    ("max_mem_compaction_level", "2", "let memtable flushes target deeper levels"),
    ("purge_redundant_kvs_while_flush", "true", "drop shadowed keys during flush"),
];

const INVALID: &[(&str, &str, &str)] = &[
    ("max_background_jobs", "4096", "maximize background parallelism"),
    ("bloom_filter_bits_per_key", "-5", "negative bits disable probing overhead"),
    ("block_size", "512GB", "huge blocks maximize sequential throughput"),
    ("write_buffer_size", "enormous", "make the write buffer as large as possible"),
];

/// Appends quirk suggestions to `recs`, deterministic in `(seed, iteration)`.
pub fn inject(
    config: &QuirkConfig,
    seed: u64,
    iteration: u64,
    write_heavy: bool,
    recs: &mut Vec<Recommendation>,
) {
    let mut rng = StdRng::seed_from_u64(seed ^ iteration.wrapping_mul(0x9e3779b97f4a7c15));
    let mut push = |table: &[(&str, &str, &str)], rng: &mut StdRng| {
        let (name, value, rationale) = table[rng.gen_range(0..table.len())];
        recs.push(Recommendation {
            name: name.to_string(),
            value: value.to_string(),
            rationale: rationale.to_string(),
            priority: 2,
        });
    };
    if rng.gen_bool(config.hallucination_rate.clamp(0.0, 1.0)) {
        push(HALLUCINATED, &mut rng);
    }
    if rng.gen_bool(config.deprecated_rate.clamp(0.0, 1.0)) {
        push(DEPRECATED, &mut rng);
    }
    if rng.gen_bool(config.invalid_value_rate.clamp(0.0, 1.0)) {
        push(INVALID, &mut rng);
    }
    if config.suggest_unsafe && write_heavy && iteration == 2 {
        recs.push(Recommendation {
            name: "disable_wal".to_string(),
            value: "true".to_string(),
            rationale: "if durability is not critical, disabling the WAL removes per-write logging cost"
                .to_string(),
            priority: 2,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_injects_nothing() {
        let mut recs = Vec::new();
        for iter in 0..20 {
            inject(&QuirkConfig::none(), 1, iter, true, &mut recs);
        }
        assert!(recs.is_empty());
    }

    #[test]
    fn heavy_injects_all_classes() {
        // At 0.9 per class a single draw can still miss; across several
        // iterations all three classes must appear.
        let mut recs = Vec::new();
        for iter in 0..6 {
            inject(&QuirkConfig::heavy(), 1, iter, true, &mut recs);
        }
        assert!(recs.len() >= 12, "got {}", recs.len());
    }

    #[test]
    fn unsafe_advice_appears_at_iteration_two_for_writes() {
        let mut recs = Vec::new();
        inject(&QuirkConfig::none().with_unsafe(), 1, 2, true, &mut recs);
        assert!(recs.iter().any(|r| r.name == "disable_wal"));
        let mut recs = Vec::new();
        inject(&QuirkConfig::none().with_unsafe(), 1, 2, false, &mut recs);
        assert!(recs.is_empty(), "read-heavy prompts do not get WAL advice");
    }

    #[test]
    fn deterministic_for_seed_and_iteration() {
        let run = || {
            let mut recs = Vec::new();
            inject(&QuirkConfig::default(), 7, 3, true, &mut recs);
            recs.iter().map(|r| r.name.clone()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    impl QuirkConfig {
        fn with_unsafe(mut self) -> Self {
            self.suggest_unsafe = true;
            self
        }
    }
}
