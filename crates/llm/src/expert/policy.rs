//! Response planning: which recommendations to emit this iteration.

use lsm_kvs::options::Options;

use crate::expert::attention::{PromptFacts, WorkloadClass};
use crate::expert::knowledge::{enforce_memory_budget, recommend, Recommendation};
use crate::expert::quirks::{inject, QuirkConfig};

/// How the response text is laid out (varies to exercise the parser).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenderStyle {
    /// One ```ini fence with all sections.
    SingleFence,
    /// Separate fenced blocks per section with prose between.
    SplitSections,
    /// A bare ``` fence with no language tag.
    BareFence,
    /// A fence plus one change expressed only in prose.
    ProseMix,
}

/// A fully planned response.
#[derive(Debug, Clone)]
pub struct ResponsePlan {
    /// Ordered changes to emit.
    pub changes: Vec<Recommendation>,
    /// Extra prose notes (budget adjustments, deterioration reaction).
    pub notes: Vec<String>,
    /// Layout for the renderer.
    pub style: RenderStyle,
}

/// Canonicalizes an option value through the registry so "64MB" and
/// "67108864" compare equal; returns `None` for unknown options/values.
fn canonical(name: &str, value: &str) -> Option<String> {
    let mut scratch = Options::default();
    scratch.set_by_name(name, value).ok()?;
    scratch.get_by_name(name)
}

/// Plans the response for a parsed prompt.
pub fn plan(facts: &PromptFacts, quirks: &QuirkConfig, seed: u64) -> ResponsePlan {
    let mut recs = recommend(facts);
    let mut notes = Vec::new();

    // Drop suggestions that match the currently configured value — the
    // expert moves on to new knobs each iteration instead of repeating
    // itself.
    recs.retain(|r| {
        let proposed = canonical(&r.name, &r.value);
        let current = facts
            .current_options
            .get(&r.name)
            .and_then(|v| canonical(&r.name, v));
        match (proposed, current) {
            (Some(p), Some(c)) => p != c,
            _ => true,
        }
    });

    // React to a reported regression: steer away from the strongest
    // (already tried) recommendations and acknowledge the feedback.
    if facts.deteriorated && recs.len() > 2 {
        let shift = 2.min(recs.len());
        recs.rotate_left(shift);
        notes.push(
            "The previous adjustment hurt performance, so this round backs off the aggressive \
             settings and tries a different combination."
                .to_string(),
        );
    }

    // The paper observes that changing more than ~10 options per
    // iteration yields marginal returns; the expert also narrows its
    // focus as iterations progress.
    let iteration_cap = match facts.iteration {
        0 | 1 => 10,
        2 => 6,
        3 => 5,
        _ => 4,
    };
    let cap = facts.max_changes.min(iteration_cap).max(1);
    recs.truncate(cap);

    if let Some(note) = enforce_memory_budget(facts, &mut recs) {
        notes.push(note);
    }

    inject(
        quirks,
        seed,
        facts.iteration,
        facts.workload == WorkloadClass::WriteHeavy,
        &mut recs,
    );

    let style = match facts.iteration % 4 {
        0 => RenderStyle::SingleFence,
        1 => RenderStyle::SplitSections,
        2 => RenderStyle::BareFence,
        _ => RenderStyle::ProseMix,
    };

    ResponsePlan {
        changes: recs,
        notes,
        style,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn facts(iteration: u64) -> PromptFacts {
        PromptFacts {
            cores: Some(2),
            mem_gib: Some(4.0),
            rotational: Some(true),
            workload: WorkloadClass::WriteHeavy,
            iteration,
            max_changes: 10,
            ..PromptFacts::default()
        }
    }

    #[test]
    fn first_iteration_proposes_up_to_ten() {
        let p = plan(&facts(1), &QuirkConfig::none(), 1);
        assert!(p.changes.len() <= 10);
        assert!(p.changes.len() >= 6, "got {}", p.changes.len());
    }

    #[test]
    fn later_iterations_narrow_focus() {
        let p5 = plan(&facts(5), &QuirkConfig::none(), 1);
        assert!(p5.changes.len() <= 4);
    }

    #[test]
    fn already_applied_values_are_skipped() {
        let mut f = facts(1);
        // Pretend the top write-side recommendation is already in place.
        f.current_options.insert("write_buffer_size".into(), "33554432".into()); // 32MB
        let p = plan(&f, &QuirkConfig::none(), 1);
        assert!(
            !p.changes.iter().any(|c| c.name == "write_buffer_size"),
            "expert should not re-propose the current value"
        );
    }

    #[test]
    fn equivalent_literals_compare_equal() {
        assert_eq!(canonical("write_buffer_size", "64MB"), canonical("write_buffer_size", "67108864"));
        assert!(canonical("made_up_option", "1").is_none());
    }

    #[test]
    fn deterioration_changes_the_mix() {
        let calm = plan(&facts(3), &QuirkConfig::none(), 1);
        let mut f = facts(3);
        f.deteriorated = true;
        let upset = plan(&f, &QuirkConfig::none(), 1);
        assert_ne!(
            calm.changes.first().map(|c| c.name.clone()),
            upset.changes.first().map(|c| c.name.clone())
        );
        assert!(!upset.notes.is_empty());
    }

    #[test]
    fn max_changes_constraint_respected() {
        let mut f = facts(1);
        f.max_changes = 3;
        let p = plan(&f, &QuirkConfig::none(), 1);
        assert!(p.changes.len() <= 3);
    }

    #[test]
    fn styles_rotate_with_iteration() {
        let styles: Vec<RenderStyle> = (0..4).map(|i| plan(&facts(i), &QuirkConfig::none(), 1).style).collect();
        assert_eq!(styles[0], RenderStyle::SingleFence);
        assert_eq!(styles[1], RenderStyle::SplitSections);
        assert_eq!(styles[2], RenderStyle::BareFence);
        assert_eq!(styles[3], RenderStyle::ProseMix);
    }

    #[test]
    fn quirks_appear_when_enabled() {
        let p = plan(&facts(1), &QuirkConfig::heavy(), 1);
        let known = |n: &str| lsm_kvs::options::registry::find_option(n).is_some();
        assert!(
            p.changes.iter().any(|c| !known(&c.name)),
            "heavy quirks should add at least one unknown/deprecated option"
        );
    }

    #[test]
    fn empty_current_options_still_plans() {
        let f = PromptFacts {
            max_changes: 10,
            current_options: HashMap::new(),
            ..PromptFacts::default()
        };
        let p = plan(&f, &QuirkConfig::none(), 1);
        assert!(!p.changes.is_empty());
    }
}
