//! Prompt-fact extraction: what the simulated expert "attends to".
//!
//! The expert receives the same free-form natural-language prompt a real
//! GPT-4 call would. This module pulls out the facts the tuning
//! heuristics condition on — hardware, workload, iteration, previous
//! results, constraints, and the current option file — using keyword
//! scanning, so prompts phrased differently by hand still parse.

use std::collections::HashMap;

/// The workload class the expert inferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkloadClass {
    /// Mostly writes (fillrandom-like).
    WriteHeavy,
    /// Mostly reads (readrandom-like).
    ReadHeavy,
    /// Mixed reads and writes.
    #[default]
    Mixed,
}

/// Everything the expert extracted from a prompt.
#[derive(Debug, Clone, Default)]
pub struct PromptFacts {
    /// CPU cores mentioned.
    pub cores: Option<u64>,
    /// RAM in GiB.
    pub mem_gib: Option<f64>,
    /// Whether the device is rotational (HDD).
    pub rotational: Option<bool>,
    /// Inferred workload class.
    pub workload: WorkloadClass,
    /// Iteration number, if the prompt states one.
    pub iteration: u64,
    /// Previous-iteration throughput (ops/sec).
    pub prev_throughput: Option<f64>,
    /// Previous-iteration p99 latency (any op type), microseconds.
    pub prev_p99_us: Option<f64>,
    /// The prompt reported that the last change *hurt* performance.
    pub deteriorated: bool,
    /// Maximum number of options the prompt asks to change.
    pub max_changes: usize,
    /// Current option values parsed from the embedded ini.
    pub current_options: HashMap<String, String>,
    /// Block-cache hit ratio mentioned (0..1).
    pub cache_hit_ratio: Option<f64>,
    /// Stall seconds mentioned.
    pub stall_seconds: Option<f64>,
}

/// Parses a prompt into [`PromptFacts`].
pub fn read_prompt(prompt: &str) -> PromptFacts {
    let lower = prompt.to_ascii_lowercase();
    let mut facts = PromptFacts {
        max_changes: 10,
        ..PromptFacts::default()
    };

    facts.cores = number_before(&lower, &["logical cores", "cpu cores", "cores"])
        .map(|v| v.round() as u64)
        .filter(|v| (1..=1024).contains(v));
    facts.mem_gib = number_before(&lower, &["gib total", "gib of ram", "gib ram", "gb of ram", "gb ram"]);
    if lower.contains("rotational      : yes")
        || lower.contains("rotational: yes")
        || lower.contains("sata hdd")
        || lower.contains("hard disk")
    {
        facts.rotational = Some(true);
    } else if lower.contains("rotational      : no")
        || lower.contains("rotational: no")
        || lower.contains("nvme")
        || lower.contains("sata ssd")
        || lower.contains("solid state")
    {
        facts.rotational = Some(false);
    }

    facts.workload = classify_workload(&lower);

    if let Some(v) = number_after(&lower, &["iteration "]) {
        facts.iteration = v.round() as u64;
    }
    facts.prev_throughput = number_before(&lower, &["ops/sec", "ops per second", "ops/s"]);
    facts.prev_p99_us = number_after(&lower, &["p99: ", "p99 latency: ", "p99="]);
    facts.deteriorated = ["deteriorat", "regress", "got worse", "performance drop", "worse than"]
        .iter()
        .any(|k| lower.contains(k));
    if let Some(v) = number_after(&lower, &["at most ", "no more than ", "up to "]) {
        let v = v.round() as usize;
        if (1..=100).contains(&v) {
            facts.max_changes = v;
        }
    }
    facts.cache_hit_ratio = number_after(&lower, &["cache hit ratio: ", "cache.hit.ratio percent : "])
        .map(|v| if v > 1.0 { v / 100.0 } else { v });
    facts.stall_seconds = number_after(&lower, &["stall seconds: ", "stall.seconds sum : "]);

    // Parse key=value lines (the embedded current-options ini).
    for line in prompt.lines() {
        let t = line.trim();
        if t.starts_with('[') || t.starts_with('#') {
            continue;
        }
        if let Some((k, v)) = t.split_once('=') {
            let k = k.trim();
            if !k.is_empty() && !k.contains(' ') && k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                facts.current_options.insert(k.to_string(), v.trim().to_string());
            }
        }
    }
    facts
}

fn classify_workload(lower: &str) -> WorkloadClass {
    let write_markers = ["write-intensive", "write intensive", "fillrandom", "insert", "write-heavy"];
    let read_markers = ["read-intensive", "read intensive", "readrandom", "point reads", "read-heavy"];
    let mixed_markers = ["mixed", "mixgraph", "readrandomwriterandom", "50% reads", "production-like"];
    if mixed_markers.iter().any(|m| lower.contains(m)) {
        // "readrandomwriterandom" contains "readrandom": mixed wins.
        return WorkloadClass::Mixed;
    }
    let writes = write_markers.iter().any(|m| lower.contains(m));
    let reads = read_markers.iter().any(|m| lower.contains(m));
    match (writes, reads) {
        (true, false) => WorkloadClass::WriteHeavy,
        (false, true) => WorkloadClass::ReadHeavy,
        _ => WorkloadClass::Mixed,
    }
}

/// Finds a number immediately *before* any of the markers
/// ("4 logical cores" -> 4.0 for marker "logical cores").
fn number_before(text: &str, markers: &[&str]) -> Option<f64> {
    for marker in markers {
        let mut search_from = 0;
        while let Some(pos) = text[search_from..].find(marker) {
            let abs = search_from + pos;
            let head = text[..abs].trim_end();
            let start = head
                .rfind(|c: char| !(c.is_ascii_digit() || c == '.' || c == ','))
                .map(|i| i + 1)
                .unwrap_or(0);
            let token = head[start..].replace(',', "");
            if let Ok(v) = token.parse::<f64>() {
                return Some(v);
            }
            search_from = abs + marker.len();
        }
    }
    None
}

/// Finds a number immediately *after* any of the markers
/// ("iteration 3" -> 3.0 for marker "iteration ").
fn number_after(text: &str, markers: &[&str]) -> Option<f64> {
    for marker in markers {
        if let Some(pos) = text.find(marker) {
            let tail = &text[pos + marker.len()..];
            let tail = tail.trim_start();
            let end = tail
                .find(|c: char| !(c.is_ascii_digit() || c == '.'))
                .unwrap_or(tail.len());
            if let Ok(v) = tail[..end].parse::<f64>() {
                return Some(v);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
You are an expert RocksDB administrator.
## Hardware
CPU: 2 logical cores, 35.0% average utilization
Memory: 4.00 GiB total, 0.51 GiB used by the store (15% of usable budget)
fio probe of SimHDD 7200rpm 4TB (SATA HDD):
- rotational      : yes
## Workload
write-intensive: insert 50000000 key-value pairs (16B keys, 100B values) in random key order
## Previous result (iteration 3)
throughput: 61234 ops/sec
P99: 140.5 us
The last configuration change deteriorated performance; it was reverted.
## Current configuration
[DBOptions]
  max_background_jobs=2
[CFOptions \"default\"]
  write_buffer_size=67108864
Please change at most 10 options. Respond with an ini code block.";

    #[test]
    fn extracts_hardware() {
        let f = read_prompt(SAMPLE);
        assert_eq!(f.cores, Some(2));
        assert_eq!(f.mem_gib, Some(4.0));
        assert_eq!(f.rotational, Some(true));
    }

    #[test]
    fn extracts_workload_and_iteration() {
        let f = read_prompt(SAMPLE);
        assert_eq!(f.workload, WorkloadClass::WriteHeavy);
        assert_eq!(f.iteration, 3);
        assert_eq!(f.max_changes, 10);
    }

    #[test]
    fn extracts_previous_results_and_feedback() {
        let f = read_prompt(SAMPLE);
        assert_eq!(f.prev_throughput, Some(61234.0));
        assert_eq!(f.prev_p99_us, Some(140.5));
        assert!(f.deteriorated);
    }

    #[test]
    fn extracts_current_options() {
        let f = read_prompt(SAMPLE);
        assert_eq!(f.current_options.get("max_background_jobs").map(String::as_str), Some("2"));
        assert_eq!(
            f.current_options.get("write_buffer_size").map(String::as_str),
            Some("67108864")
        );
    }

    #[test]
    fn classifies_read_and_mixed() {
        assert_eq!(
            read_prompt("read-intensive: 10M random point reads").workload,
            WorkloadClass::ReadHeavy
        );
        assert_eq!(
            read_prompt("readrandomwriterandom with 90% reads on nvme").workload,
            WorkloadClass::Mixed
        );
        assert_eq!(read_prompt("mixgraph production").workload, WorkloadClass::Mixed);
    }

    #[test]
    fn nvme_detected_as_non_rotational() {
        let f = read_prompt("Storage: NVMe SSD, 4 cores, 8 GiB total");
        assert_eq!(f.rotational, Some(false));
        assert_eq!(f.cores, Some(4));
    }

    #[test]
    fn defaults_when_nothing_matches() {
        let f = read_prompt("please tune my database");
        assert_eq!(f.cores, None);
        assert_eq!(f.workload, WorkloadClass::Mixed);
        assert_eq!(f.iteration, 0);
        assert!(!f.deteriorated);
        assert_eq!(f.max_changes, 10);
    }

    #[test]
    fn max_changes_parsed() {
        let f = read_prompt("Please change at most 5 options.");
        assert_eq!(f.max_changes, 5);
    }
}
