//! The expert's tuning knowledge base.
//!
//! Encodes the heuristics an LLM absorbs from RocksDB tuning guides,
//! blog posts, and source code — the paper observes that "the model
//! responds in patterns similar to online blogs, preferring the same
//! configuration options". Values oscillate across iterations the way
//! GPT-4 does in the paper's Table 5 (experimenting, then settling).

use crate::expert::attention::{PromptFacts, WorkloadClass};

/// One recommended option change.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// Option name (RocksDB-compatible).
    pub name: String,
    /// Proposed value, as the model would write it ("64MB", "true").
    pub value: String,
    /// One-line rationale included in the response prose.
    pub rationale: String,
    /// Higher = suggested earlier.
    pub priority: u8,
}

fn rec(name: &str, value: impl Into<String>, rationale: &str, priority: u8) -> Recommendation {
    Recommendation {
        name: name.to_string(),
        value: value.into(),
        rationale: rationale.to_string(),
        priority,
    }
}

/// Produces the full, ordered recommendation list for the observed
/// system. The policy layer filters against current values, caps the
/// count, and applies quirks.
pub fn recommend(facts: &PromptFacts) -> Vec<Recommendation> {
    let cores = facts.cores.unwrap_or(4);
    let mem_gib = facts.mem_gib.unwrap_or(8.0);
    let rotational = facts.rotational.unwrap_or(false);
    let iter = facts.iteration.max(1);
    // Oscillation helpers: the expert "experiments" across iterations.
    let osc = |a: &str, b: &str| if iter % 2 == 1 { a.to_string() } else { b.to_string() };
    let mut out = Vec::new();

    // ---- Universal background parallelism (every blog's first advice) ----
    let jobs = (cores + 2).clamp(2, 8);
    out.push(rec(
        "max_background_jobs",
        (jobs - (iter % 2)).max(2).to_string(),
        "scale background parallelism to the CPU budget",
        9,
    ));
    out.push(rec(
        "max_background_compactions",
        ((jobs * 3) / 4 + iter % 2).max(2).to_string(),
        "allow compactions to run concurrently",
        8,
    ));
    out.push(rec(
        "max_background_flushes",
        (2 - (iter % 2)).max(1).to_string(),
        "dedicated flush slots prevent memtable backlog",
        7,
    ));
    out.push(rec(
        "dump_malloc_stats",
        "false",
        "allocator stat dumps add overhead with no tuning benefit",
        3,
    ));
    if cores < 4 {
        out.push(rec(
            "enable_pipelined_write",
            "false",
            "pipelined writes add coordination overhead on few cores",
            4,
        ));
    }

    let write_side = matches!(facts.workload, WorkloadClass::WriteHeavy | WorkloadClass::Mixed);
    let read_side = matches!(facts.workload, WorkloadClass::ReadHeavy | WorkloadClass::Mixed);

    // ---- Write path ----
    if write_side {
        if mem_gib <= 4.0 {
            out.push(rec(
                "write_buffer_size",
                osc("32MB", "64MB"),
                "smaller memtables respect the tight memory budget",
                9,
            ));
        } else {
            out.push(rec(
                "write_buffer_size",
                "128MB",
                "larger memtables absorb more writes before flushing",
                9,
            ));
        }
        out.push(rec(
            "max_write_buffer_number",
            (3 + (iter / 2) % 3).to_string(),
            "extra memtables absorb write bursts while flushes catch up",
            8,
        ));
        out.push(rec(
            "min_write_buffer_number_to_merge",
            (1 + iter % 3).to_string(),
            "merging memtables before flush writes larger, fewer L0 files",
            6,
        ));
        out.push(rec(
            "wal_bytes_per_sync",
            osc("1MB", "512KB"),
            "incremental WAL syncs smooth writeback and cut p99 spikes",
            8,
        ));
        out.push(rec(
            "bytes_per_sync",
            osc("1MB", "512KB"),
            "incremental SST syncs avoid bursty page-cache flushes",
            8,
        ));
        if iter >= 4 {
            out.push(rec(
                "strict_bytes_per_sync",
                "true",
                "bound the amount of unsynced data for steadier latency",
                5,
            ));
        }
        out.push(rec(
            "level0_file_num_compaction_trigger",
            osc("6", "4"),
            "a deeper L0 batches more data per compaction",
            6,
        ));
        out.push(rec(
            "level0_slowdown_writes_trigger",
            "30",
            "push back the throttling point to avoid premature slowdowns",
            5,
        ));
        out.push(rec(
            "level0_stop_writes_trigger",
            "48",
            "keep headroom between slowdown and full stop",
            5,
        ));
        out.push(rec(
            "max_bytes_for_level_multiplier",
            "8",
            "a gentler level fan-out reduces per-compaction work",
            4,
        ));
        if rotational {
            out.push(rec(
                "compaction_readahead_size",
                osc("4MB", "2MB"),
                "large sequential readahead hides HDD seek latency during compaction",
                8,
            ));
            out.push(rec(
                "target_file_size_base",
                osc("32MB", "64MB"),
                "smaller files give finer-grained compactions on slow disks",
                5,
            ));
        }
        if cores <= 2 {
            out.push(rec(
                "compression",
                "lz4",
                "lz4 costs far less CPU than snappy on a small core budget",
                5,
            ));
        }
        if cores >= 4 {
            out.push(rec(
                "max_subcompactions",
                "2",
                "split large compactions across spare cores",
                5,
            ));
        }
        out.push(rec(
            "delayed_write_rate",
            "64MB",
            "a higher delayed rate softens throttling when it does engage",
            3,
        ));
    }

    // ---- Read path ----
    if read_side {
        out.push(rec(
            "bloom_filter_bits_per_key",
            "10",
            "bloom filters skip SSTs that cannot contain the key — the single biggest point-lookup win",
            10,
        ));
        let cache_mb = ((mem_gib * 1024.0) / 4.0).round() as u64;
        out.push(rec(
            "block_cache_size",
            format!("{cache_mb}MB"),
            "dedicate about a quarter of RAM to the block cache",
            10,
        ));
        out.push(rec(
            "cache_index_and_filter_blocks",
            "true",
            "account index/filter blocks in the cache budget",
            6,
        ));
        out.push(rec(
            "pin_l0_filter_and_index_blocks_in_cache",
            "true",
            "keep hot L0 metadata resident",
            6,
        ));
        out.push(rec(
            "memtable_prefix_bloom_size_ratio",
            "0.1",
            "a memtable bloom filter short-circuits misses before any probe",
            4,
        ));
        if rotational {
            out.push(rec(
                "block_size",
                "16KB",
                "bigger blocks amortize HDD seeks across more data",
                5,
            ));
        }
        if iter >= 5 {
            out.push(rec(
                "optimize_filters_for_hits",
                "true",
                "skip last-level filters when most lookups succeed",
                3,
            ));
        }
    }

    // ---- Mixed-specific: protect reads from background I/O ----
    if facts.workload == WorkloadClass::Mixed && rotational {
        out.push(rec(
            "rate_limiter_bytes_per_sec",
            "80MB",
            "cap compaction I/O so foreground reads keep disk time",
            6,
        ));
    }

    out.sort_by(|a, b| b.priority.cmp(&a.priority).then(a.name.cmp(&b.name)));
    out
}

/// Applies the "memory budget" discipline the paper highlights: shrink
/// the block cache if buffers + cache would exceed ~60% of RAM.
/// Returns a note when an adjustment happened.
pub fn enforce_memory_budget(facts: &PromptFacts, recs: &mut [Recommendation]) -> Option<String> {
    let mem_bytes = (facts.mem_gib.unwrap_or(8.0) * (1u64 << 30) as f64) as u64;
    let budget = (mem_bytes as f64 * 0.6) as u64;

    let size_of = |recs: &[Recommendation], name: &str, fallback: u64| -> u64 {
        recs.iter()
            .find(|r| r.name == name)
            .and_then(|r| lsm_kvs::options::registry::parse_size(&r.value))
            .unwrap_or(fallback)
    };
    let wbs = size_of(recs, "write_buffer_size", 64 << 20);
    let nbuf = recs
        .iter()
        .find(|r| r.name == "max_write_buffer_number")
        .and_then(|r| r.value.parse::<u64>().ok())
        .unwrap_or(2);
    let cache = size_of(recs, "block_cache_size", 8 << 20);
    let total = wbs * nbuf + cache;
    if total <= budget {
        return None;
    }
    let new_cache = budget.saturating_sub(wbs * nbuf).max(64 << 20);
    let new_mb = new_cache >> 20;
    for r in recs.iter_mut() {
        if r.name == "block_cache_size" {
            r.value = format!("{new_mb}MB");
            r.rationale = "block cache reduced to keep memtables + cache inside the memory budget"
                .to_string();
        }
    }
    Some(format!(
        "Keeping the total memory budget in check: write buffers ({}x{}MB) plus block cache fit within 60% of RAM.",
        nbuf,
        wbs >> 20
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(workload: WorkloadClass, cores: u64, mem: f64, rotational: bool, iter: u64) -> PromptFacts {
        PromptFacts {
            cores: Some(cores),
            mem_gib: Some(mem),
            rotational: Some(rotational),
            workload,
            iteration: iter,
            max_changes: 10,
            ..PromptFacts::default()
        }
    }

    #[test]
    fn read_heavy_leads_with_bloom_and_cache() {
        let recs = recommend(&facts(WorkloadClass::ReadHeavy, 4, 4.0, false, 1));
        assert_eq!(recs[0].priority, 10);
        let names: Vec<&str> = recs.iter().take(2).map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"bloom_filter_bits_per_key"));
        assert!(names.contains(&"block_cache_size"));
        // Cache sized to a quarter of 4 GiB.
        let cache = recs.iter().find(|r| r.name == "block_cache_size").unwrap();
        assert_eq!(cache.value, "1024MB");
    }

    #[test]
    fn write_heavy_on_hdd_tunes_readahead_and_syncs() {
        let recs = recommend(&facts(WorkloadClass::WriteHeavy, 2, 4.0, true, 1));
        let names: Vec<&str> = recs.iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"compaction_readahead_size"));
        assert!(names.contains(&"wal_bytes_per_sync"));
        assert!(names.contains(&"bytes_per_sync"));
        assert!(names.contains(&"enable_pipelined_write"), "2 cores: disable pipelining");
        assert!(!names.contains(&"bloom_filter_bits_per_key"), "no read tuning for pure writes");
    }

    #[test]
    fn values_oscillate_across_iterations_like_table5() {
        let v = |iter| {
            recommend(&facts(WorkloadClass::WriteHeavy, 2, 4.0, true, iter))
                .into_iter()
                .find(|r| r.name == "wal_bytes_per_sync")
                .unwrap()
                .value
        };
        assert_ne!(v(1), v(2), "expert experiments across iterations");
        assert_eq!(v(1), v(3));
    }

    #[test]
    fn small_memory_means_small_write_buffers() {
        let small = recommend(&facts(WorkloadClass::WriteHeavy, 2, 4.0, false, 1));
        let big = recommend(&facts(WorkloadClass::WriteHeavy, 8, 16.0, false, 1));
        let get = |recs: &[Recommendation]| {
            recs.iter().find(|r| r.name == "write_buffer_size").unwrap().value.clone()
        };
        assert_eq!(get(&small), "32MB");
        assert_eq!(get(&big), "128MB");
    }

    #[test]
    fn mixed_workload_tunes_both_sides() {
        let recs = recommend(&facts(WorkloadClass::Mixed, 4, 4.0, true, 1));
        let names: Vec<&str> = recs.iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"bloom_filter_bits_per_key"));
        assert!(names.contains(&"write_buffer_size"));
        assert!(names.contains(&"rate_limiter_bytes_per_sec"), "HDD mixed: rate limit background I/O");
    }

    #[test]
    fn memory_budget_shrinks_cache() {
        let f = facts(WorkloadClass::Mixed, 4, 4.0, false, 1);
        let mut recs = vec![
            rec("write_buffer_size", "512MB", "", 9),
            rec("max_write_buffer_number", "4", "", 8),
            rec("block_cache_size", "2048MB", "", 10),
        ];
        let note = enforce_memory_budget(&f, &mut recs);
        assert!(note.is_some());
        let cache = recs.iter().find(|r| r.name == "block_cache_size").unwrap();
        let new = lsm_kvs::options::registry::parse_size(&cache.value).unwrap();
        assert!(new < 2048 << 20);
        // 60% of 4 GiB minus 2 GiB of buffers.
        assert!(new >= 64 << 20);
    }

    #[test]
    fn budget_untouched_when_it_fits() {
        let f = facts(WorkloadClass::ReadHeavy, 4, 8.0, false, 1);
        let mut recs = vec![rec("block_cache_size", "1024MB", "", 10)];
        assert!(enforce_memory_budget(&f, &mut recs).is_none());
        assert_eq!(recs[0].value, "1024MB");
    }
}
