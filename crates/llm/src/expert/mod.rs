//! The rule-based GPT-4 tuning-expert simulator.
//!
//! [`ExpertModel`] stands in for the GPT-4 API of the paper's prototype:
//! it *reads the natural-language prompt* the framework built, applies a
//! knowledge base distilled from RocksDB tuning lore, and answers in
//! prose + ini code blocks — including, at configurable rates, the
//! hallucinations and deprecated/unsafe suggestions real LLMs produce.
//! Fully deterministic given `(seed, prompt)`.

pub mod attention;
pub mod knowledge;
pub mod policy;
pub mod quirks;
pub mod render;

use crate::api::{ChatRequest, ChatResponse, LanguageModel, LlmError, Usage};

pub use attention::{read_prompt, PromptFacts, WorkloadClass};
pub use knowledge::Recommendation;
pub use policy::{plan, RenderStyle, ResponsePlan};
pub use quirks::QuirkConfig;

/// A deterministic, rule-based stand-in for the GPT-4 tuning expert.
///
/// # Examples
///
/// ```
/// use llm_client::{ChatRequest, ExpertModel, LanguageModel, QuirkConfig};
///
/// let mut model = ExpertModel::new(42, QuirkConfig::none());
/// let prompt = "2 logical cores, 4 GiB total, SATA HDD, write-intensive \
///               workload. Current configuration: write_buffer_size=67108864. \
///               This is iteration 1. Change at most 10 options.";
/// let reply = model.complete(&ChatRequest::single_turn("gpt-4", prompt)).unwrap();
/// assert!(reply.content.contains("```"));
/// ```
#[derive(Debug)]
pub struct ExpertModel {
    seed: u64,
    quirks: QuirkConfig,
    name: String,
}

impl ExpertModel {
    /// Creates an expert with the given determinism seed and quirk rates.
    pub fn new(seed: u64, quirks: QuirkConfig) -> Self {
        ExpertModel {
            seed,
            quirks,
            name: "sim-gpt-4".to_string(),
        }
    }

    /// A well-behaved expert (no hallucinations) — useful for ablations.
    pub fn well_behaved(seed: u64) -> Self {
        Self::new(seed, QuirkConfig::none())
    }

    /// The quirk configuration in force.
    pub fn quirks(&self) -> &QuirkConfig {
        &self.quirks
    }
}

impl LanguageModel for ExpertModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn complete(&mut self, request: &ChatRequest) -> Result<ChatResponse, LlmError> {
        let prompt = request.last_user_content();
        let facts = read_prompt(prompt);
        let response_plan = plan(&facts, &self.quirks, self.seed);
        let content = render::render(&facts, &response_plan);
        let usage = Usage {
            prompt_tokens: (prompt.len() / 4) as u64,
            completion_tokens: (content.len() / 4) as u64,
        };
        Ok(ChatResponse {
            content,
            model: self.name.clone(),
            usage,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prompt(iteration: u64) -> String {
        format!(
            "CPU: 2 logical cores\nMemory: 4.00 GiB total\nStorage: SATA HDD (rotational: yes)\n\
             Workload: write-intensive fillrandom\nThis is iteration {iteration}.\n\
             [DBOptions]\n  max_background_jobs=2\n[CFOptions \"default\"]\n  write_buffer_size=67108864\n\
             Change at most 10 options."
        )
    }

    #[test]
    fn responds_with_parseable_structure() {
        let mut m = ExpertModel::well_behaved(1);
        let r = m.complete(&ChatRequest::single_turn("gpt-4", prompt(1))).unwrap();
        assert!(r.content.contains("```"));
        assert!(r.content.contains('='));
        assert!(r.usage.completion_tokens > 0);
    }

    #[test]
    fn deterministic_per_seed_and_prompt() {
        let mut a = ExpertModel::well_behaved(9);
        let mut b = ExpertModel::well_behaved(9);
        let p = ChatRequest::single_turn("gpt-4", prompt(2));
        assert_eq!(a.complete(&p).unwrap().content, b.complete(&p).unwrap().content);
    }

    #[test]
    fn different_iterations_give_different_answers() {
        let mut m = ExpertModel::well_behaved(1);
        let r1 = m.complete(&ChatRequest::single_turn("g", prompt(1))).unwrap();
        let r2 = m.complete(&ChatRequest::single_turn("g", prompt(2))).unwrap();
        assert_ne!(r1.content, r2.content);
    }

    #[test]
    fn hdd_write_heavy_prompt_mentions_readahead_or_syncs() {
        let mut m = ExpertModel::well_behaved(1);
        let r = m.complete(&ChatRequest::single_turn("g", prompt(1))).unwrap();
        assert!(
            r.content.contains("bytes_per_sync") || r.content.contains("compaction_readahead_size"),
            "{}",
            r.content
        );
    }

    #[test]
    fn read_heavy_prompt_recommends_bloom_and_cache() {
        let mut m = ExpertModel::well_behaved(1);
        let p = "4 logical cores, 4 GiB total, NVMe SSD. Workload: read-intensive readrandom. \
                 This is iteration 1. [CFOptions]\n bloom_filter_bits_per_key=0\n";
        let r = m.complete(&ChatRequest::single_turn("g", p)).unwrap();
        assert!(r.content.contains("bloom_filter_bits_per_key"));
        assert!(r.content.contains("block_cache_size"));
    }

    #[test]
    fn unsafe_suggestion_appears_with_quirks_on() {
        let mut m = ExpertModel::new(1, QuirkConfig::default());
        let r = m.complete(&ChatRequest::single_turn("g", prompt(2))).unwrap();
        assert!(r.content.contains("disable_wal"), "iteration 2 write-heavy: the classic bad advice");
    }
}
