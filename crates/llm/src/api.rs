//! Chat-completion API types and the [`LanguageModel`] trait.
//!
//! The types mirror the OpenAI chat-completions wire format (the paper
//! drives GPT-4 through that API), so the same framework code can talk
//! to the built-in expert simulator, a scripted replay, or any
//! OpenAI-compatible endpoint.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Who authored a chat message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum Role {
    /// System instructions.
    System,
    /// The tuning framework's prompt.
    User,
    /// The model's reply.
    Assistant,
}

/// One chat message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChatMessage {
    /// Author role.
    pub role: Role,
    /// Message text.
    pub content: String,
}

impl ChatMessage {
    /// A system message.
    pub fn system(content: impl Into<String>) -> Self {
        ChatMessage {
            role: Role::System,
            content: content.into(),
        }
    }

    /// A user message.
    pub fn user(content: impl Into<String>) -> Self {
        ChatMessage {
            role: Role::User,
            content: content.into(),
        }
    }

    /// An assistant message.
    pub fn assistant(content: impl Into<String>) -> Self {
        ChatMessage {
            role: Role::Assistant,
            content: content.into(),
        }
    }
}

/// A chat-completion request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChatRequest {
    /// Target model name (e.g. `gpt-4`).
    pub model: String,
    /// Conversation so far; the last user message is the active prompt.
    pub messages: Vec<ChatMessage>,
    /// Sampling temperature.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub temperature: Option<f64>,
    /// Completion length cap.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub max_tokens: Option<u32>,
}

impl ChatRequest {
    /// A single-turn request with one user message.
    pub fn single_turn(model: impl Into<String>, prompt: impl Into<String>) -> Self {
        ChatRequest {
            model: model.into(),
            messages: vec![ChatMessage::user(prompt)],
            temperature: None,
            max_tokens: None,
        }
    }

    /// The text of the most recent user message (the active prompt).
    pub fn last_user_content(&self) -> &str {
        self.messages
            .iter()
            .rev()
            .find(|m| m.role == Role::User)
            .map(|m| m.content.as_str())
            .unwrap_or("")
    }
}

/// Token accounting, as reported by OpenAI-compatible servers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Usage {
    /// Tokens in the prompt.
    pub prompt_tokens: u64,
    /// Tokens generated.
    pub completion_tokens: u64,
}

/// A chat-completion response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChatResponse {
    /// Completion text.
    pub content: String,
    /// The responding model's name.
    pub model: String,
    /// Token accounting.
    pub usage: Usage,
}

/// Errors from a language-model backend.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LlmError {
    /// Network/socket failure.
    Transport(String),
    /// The server replied with something unparseable or an error status.
    Protocol(String),
    /// A scripted model ran out of canned responses.
    Exhausted,
}

impl fmt::Display for LlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlmError::Transport(m) => write!(f, "transport error: {m}"),
            LlmError::Protocol(m) => write!(f, "protocol error: {m}"),
            LlmError::Exhausted => write!(f, "scripted model has no responses left"),
        }
    }
}

impl std::error::Error for LlmError {}

/// A language model that completes chat requests.
///
/// Implemented by [`crate::ExpertModel`] (the deterministic GPT-4
/// tuning-expert simulator), [`crate::ScriptedModel`] (test replay), and
/// [`crate::HttpChatModel`] (OpenAI-compatible endpoints).
pub trait LanguageModel: Send {
    /// A short identifier for logs/reports.
    fn name(&self) -> &str;

    /// Completes the request.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError`] on transport or protocol failures.
    fn complete(&mut self, request: &ChatRequest) -> Result<ChatResponse, LlmError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_turn_exposes_prompt() {
        let req = ChatRequest::single_turn("gpt-4", "tune my database");
        assert_eq!(req.last_user_content(), "tune my database");
        assert_eq!(req.model, "gpt-4");
    }

    #[test]
    fn last_user_message_wins() {
        let mut req = ChatRequest::single_turn("gpt-4", "first");
        req.messages.push(ChatMessage::assistant("reply"));
        req.messages.push(ChatMessage::user("second"));
        assert_eq!(req.last_user_content(), "second");
    }

    #[test]
    fn request_serializes_openai_style() {
        let req = ChatRequest::single_turn("gpt-4", "hi");
        let json = serde_json::to_string(&req).unwrap();
        assert!(json.contains("\"model\":\"gpt-4\""));
        assert!(json.contains("\"role\":\"user\""));
        assert!(!json.contains("temperature"), "skipped when None");
    }

    #[test]
    fn errors_display() {
        assert!(LlmError::Exhausted.to_string().contains("no responses"));
        assert!(LlmError::Transport("refused".into()).to_string().contains("refused"));
    }
}
