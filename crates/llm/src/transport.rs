//! Plain-HTTP client for OpenAI-compatible chat endpoints.
//!
//! The offline build ships no TLS stack, so this client targets *local*
//! OpenAI-compatible servers (llama.cpp, vLLM, LiteLLM proxies, or an
//! `https`-terminating sidecar) over `http://host:port`. The wire format
//! is the standard `/v1/chat/completions` JSON protocol, so pointing the
//! framework at real GPT-4 only requires such a proxy.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use serde::Deserialize;

use crate::api::{ChatRequest, ChatResponse, LanguageModel, LlmError, Usage};

/// An OpenAI-compatible chat-completions client over plain HTTP.
#[derive(Debug, Clone)]
pub struct HttpChatModel {
    host: String,
    port: u16,
    path: String,
    api_key: Option<String>,
    timeout: Duration,
    name: String,
}

impl HttpChatModel {
    /// Creates a client for `http://host:port/v1/chat/completions`.
    pub fn new(host: impl Into<String>, port: u16) -> Self {
        let host = host.into();
        HttpChatModel {
            name: format!("openai-compatible@{host}:{port}"),
            host,
            port,
            path: "/v1/chat/completions".to_string(),
            api_key: None,
            timeout: Duration::from_secs(120),
        }
    }

    /// Sets a bearer token sent as `Authorization`.
    pub fn with_api_key(mut self, key: impl Into<String>) -> Self {
        self.api_key = Some(key.into());
        self
    }

    /// Overrides the request path.
    pub fn with_path(mut self, path: impl Into<String>) -> Self {
        self.path = path.into();
        self
    }

    /// Sets the socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    fn roundtrip(&self, body: &str) -> Result<String, LlmError> {
        let stream = TcpStream::connect((self.host.as_str(), self.port))
            .map_err(|e| LlmError::Transport(format!("connect {}:{}: {e}", self.host, self.port)))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.timeout)))
            .map_err(|e| LlmError::Transport(e.to_string()))?;
        let mut stream = stream;
        let auth = self
            .api_key
            .as_ref()
            .map(|k| format!("Authorization: Bearer {k}\r\n"))
            .unwrap_or_default();
        let request = format!(
            "POST {} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n{}Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            self.path,
            self.host,
            auth,
            body.len(),
            body
        );
        stream
            .write_all(request.as_bytes())
            .map_err(|e| LlmError::Transport(e.to_string()))?;
        let mut raw = Vec::new();
        stream
            .read_to_end(&mut raw)
            .map_err(|e| LlmError::Transport(e.to_string()))?;
        let text = String::from_utf8_lossy(&raw);
        parse_http_response(&text)
    }
}

/// Splits an HTTP/1.1 response into status + body, handling the
/// `Transfer-Encoding: chunked` framing local servers commonly use.
fn parse_http_response(text: &str) -> Result<String, LlmError> {
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| LlmError::Protocol("no header/body separator".to_string()))?;
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| LlmError::Protocol(format!("bad status line: {status_line}")))?;
    let chunked = head
        .lines()
        .any(|l| l.to_ascii_lowercase().contains("transfer-encoding") && l.contains("chunked"));
    let body = if chunked { dechunk(body)? } else { body.to_string() };
    if status >= 300 {
        return Err(LlmError::Protocol(format!("http status {status}: {body}")));
    }
    Ok(body)
}

fn dechunk(body: &str) -> Result<String, LlmError> {
    let mut out = String::new();
    let mut rest = body;
    loop {
        let (size_line, after) = rest
            .split_once("\r\n")
            .ok_or_else(|| LlmError::Protocol("truncated chunk header".to_string()))?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| LlmError::Protocol(format!("bad chunk size: {size_line}")))?;
        if size == 0 {
            return Ok(out);
        }
        if after.len() < size {
            return Err(LlmError::Protocol("truncated chunk body".to_string()));
        }
        out.push_str(&after[..size]);
        rest = after[size..].trim_start_matches("\r\n");
    }
}

#[derive(Deserialize)]
struct WireResponse {
    model: Option<String>,
    choices: Vec<WireChoice>,
    usage: Option<WireUsage>,
}

#[derive(Deserialize)]
struct WireChoice {
    message: WireMessage,
}

#[derive(Deserialize)]
struct WireMessage {
    content: String,
}

#[derive(Deserialize)]
struct WireUsage {
    prompt_tokens: u64,
    completion_tokens: u64,
}

impl LanguageModel for HttpChatModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn complete(&mut self, request: &ChatRequest) -> Result<ChatResponse, LlmError> {
        let body = serde_json::to_string(request)
            .map_err(|e| LlmError::Protocol(format!("serialize request: {e}")))?;
        let response_body = self.roundtrip(&body)?;
        let wire: WireResponse = serde_json::from_str(&response_body)
            .map_err(|e| LlmError::Protocol(format!("parse response: {e}")))?;
        let choice = wire
            .choices
            .into_iter()
            .next()
            .ok_or_else(|| LlmError::Protocol("response had no choices".to_string()))?;
        Ok(ChatResponse {
            content: choice.message.content,
            model: wire.model.unwrap_or_else(|| request.model.clone()),
            usage: wire
                .usage
                .map(|u| Usage {
                    prompt_tokens: u.prompt_tokens,
                    completion_tokens: u.completion_tokens,
                })
                .unwrap_or_default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn canned_server(response: &'static str) -> u16 {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = listener.local_addr().unwrap().port();
        std::thread::spawn(move || {
            if let Ok((mut socket, _)) = listener.accept() {
                let mut buf = [0u8; 8192];
                let _ = socket.read(&mut buf);
                let _ = socket.write_all(response.as_bytes());
            }
        });
        port
    }

    #[test]
    fn completes_against_local_server() {
        let body = r#"{"model":"gpt-4","choices":[{"message":{"role":"assistant","content":"set write_buffer_size=128MB"}}],"usage":{"prompt_tokens":10,"completion_tokens":5}}"#;
        let response = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let port = canned_server(Box::leak(response.into_boxed_str()));
        let mut model = HttpChatModel::new("127.0.0.1", port).with_api_key("sk-test");
        let r = model.complete(&ChatRequest::single_turn("gpt-4", "tune")).unwrap();
        assert_eq!(r.content, "set write_buffer_size=128MB");
        assert_eq!(r.usage.completion_tokens, 5);
    }

    #[test]
    fn http_error_status_is_protocol_error() {
        let response = "HTTP/1.1 401 Unauthorized\r\nContent-Length: 9\r\n\r\nbad token";
        let port = canned_server(response);
        let mut model = HttpChatModel::new("127.0.0.1", port);
        let err = model.complete(&ChatRequest::single_turn("gpt-4", "x")).unwrap_err();
        assert!(matches!(err, LlmError::Protocol(m) if m.contains("401")));
    }

    #[test]
    fn connection_refused_is_transport_error() {
        // Port 1 is essentially never listening.
        let mut model = HttpChatModel::new("127.0.0.1", 1).with_timeout(Duration::from_millis(200));
        let err = model.complete(&ChatRequest::single_turn("gpt-4", "x")).unwrap_err();
        assert!(matches!(err, LlmError::Transport(_)));
    }

    #[test]
    fn chunked_bodies_are_decoded() {
        let body = r#"{"choices":[{"message":{"role":"assistant","content":"ok"}}]}"#;
        let (a, b) = body.split_at(10);
        let response = format!(
            "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n{:x}\r\n{}\r\n{:x}\r\n{}\r\n0\r\n\r\n",
            a.len(),
            a,
            b.len(),
            b
        );
        let port = canned_server(Box::leak(response.into_boxed_str()));
        let mut model = HttpChatModel::new("127.0.0.1", port);
        let r = model.complete(&ChatRequest::single_turn("gpt-4", "x")).unwrap();
        assert_eq!(r.content, "ok");
    }

    #[test]
    fn malformed_json_is_protocol_error() {
        let response = "HTTP/1.1 200 OK\r\nContent-Length: 8\r\n\r\nnot json";
        let port = canned_server(response);
        let mut model = HttpChatModel::new("127.0.0.1", port);
        let err = model.complete(&ChatRequest::single_turn("gpt-4", "x")).unwrap_err();
        assert!(matches!(err, LlmError::Protocol(_)));
    }
}
