//! # lsm-kvs — an LSM-tree key-value store with a RocksDB-compatible option surface
//!
//! This crate is the storage substrate of the ELMo-Tune reproduction: a
//! from-scratch log-structured merge-tree engine (memtables, WAL,
//! block-based SSTs with bloom filters, leveled/universal/FIFO compaction,
//! a sharded block cache, and a write controller) whose 60+ configuration
//! options carry RocksDB names and semantics so that a tuning loop written
//! against RocksDB knowledge transfers directly.
//!
//! The engine runs on a [`vfs::Vfs`] abstraction. With
//! [`vfs::SimVfs`] it executes against the `hw-sim` virtual hardware
//! model: all I/O and background work is charged to a virtual clock, so
//! benchmarks are deterministic and hardware-sensitive (NVMe vs HDD,
//! 2 vs 4 cores, 4 vs 8 GiB) without needing the physical machines of the
//! paper's evaluation.
//!
//! ## Example
//!
//! ```
//! use lsm_kvs::{Db, options::Options};
//!
//! # fn main() -> Result<(), lsm_kvs::Error> {
//! let env = hw_sim::HardwareEnv::builder().build_sim();
//! let db = Db::builder(Options::default()).env(&env).open()?;
//! db.put(b"key", b"value")?;
//! assert_eq!(db.get(b"key")?, Some(b"value".to_vec()));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod fault;
pub mod options;
pub mod sstable;
pub mod vfs;
pub mod wal;

mod batch;
mod cache;
mod db;
mod compaction;
mod error;
mod flush;
mod listener;
mod memtable;
mod runtime;
mod shard;
mod stats;
mod types;
mod util;
mod version;
mod write_controller;

pub use batch::WriteBatch;
pub use cache::{cache_key, BlockCache, BlockKey, CacheSnapshot, CacheStats, TableCache};
pub use compaction::{
    level_targets, pending_compaction_bytes, run_compaction, CompactionInputs,
    CompactionJobOutput, CompactionPick, CompactionReason,
};
pub use db::{CostModel, Db, DbBuilder, DbStats, ReadOptions, ScanResult, WriteOptions};
pub use error::{Error, ErrorKind, Result};
pub use shard::{KvEngine, ShardedDb, ShardedDbBuilder};
pub use fault::{FaultConfig, FaultInjectionVfs, TearStyle};
pub use listener::{
    CompactionJobInfo, EventListener, FlushJobInfo, OptionsChangedInfo, StallConditionsChanged,
};
pub use memtable::{MemTable, MemTableGet};
pub use stats::{
    Histogram, HistogramKind, HistogramSnapshot, LevelIo, Statistics, Ticker, TickerSnapshot,
    Tickers, HISTOGRAM_NAMES, NUM_HISTOGRAMS, TICKER_NAMES,
};
pub use types::{FileNumber, InternalKey, SequenceNumber, ValueType, MAX_SEQUENCE};
pub use version::{CompactionLevelStats, FileMetadata, Version, VersionEdit};
pub use vfs::{MemVfs, NamespaceVfs, RandomAccessFile, StdVfs, Vfs, WritableFile};
pub use write_controller::{WriteController, WritePressure, WriteRegime};
