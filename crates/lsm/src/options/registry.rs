//! The option registry: metadata and string-typed access for every option.
//!
//! The registry is what makes "unrestricted parameter-pool tuning"
//! possible: the tuning framework, the safeguard enforcer, and the
//! rule-based expert model all discover options here rather than
//! hard-coding a subset (the limitation of prior auto-tuners the paper
//! calls out). Each entry carries the RocksDB-compatible name, type,
//! bounds, section, a human description (fed to prompts), and accessors.

use std::cmp::Ordering;
use std::sync::OnceLock;

use crate::error::{Error, Result};
use crate::options::{CompactionStyle, CompressionType, Options};

/// The ini-file section an option belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Section {
    /// `[DBOptions]` — database-wide.
    Db,
    /// `[CFOptions "default"]` — per column family.
    Cf,
    /// `[TableOptions/BlockBasedTable "default"]`.
    Table,
}

impl Section {
    /// The ini header for this section.
    pub fn ini_header(self) -> &'static str {
        match self {
            Section::Db => "[DBOptions]",
            Section::Cf => "[CFOptions \"default\"]",
            Section::Table => "[TableOptions/BlockBasedTable \"default\"]",
        }
    }
}

/// The value type of an option.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptionKind {
    /// `true` / `false`.
    Bool,
    /// Signed integer (may allow -1 sentinels).
    Int,
    /// Byte size; accepts suffixed literals like `64MB`.
    Size,
    /// Floating point.
    Double,
    /// One of a fixed set of names.
    Enum(&'static [&'static str]),
}

/// Metadata plus accessors for one option.
pub struct OptionMeta {
    /// RocksDB-compatible option name.
    pub name: &'static str,
    /// Alternate names accepted on input (e.g. `cache_size`).
    pub aliases: &'static [&'static str],
    /// Ini section.
    pub section: Section,
    /// Value type.
    pub kind: OptionKind,
    /// Inclusive numeric bounds, when applicable.
    pub range: Option<(f64, f64)>,
    /// Whether the engine honours changes without reopening the DB.
    pub mutable_online: bool,
    /// Whether safeguards protect this option from LLM modification by
    /// default (paper: "disallow of journaling or logging").
    pub protected_by_default: bool,
    /// Whether this option changes simulated performance (`true`) or is
    /// accepted for compatibility but modeled as neutral (`false`).
    pub performance_relevant: bool,
    /// One-line description used in documentation and prompts.
    pub description: &'static str,
    /// Reads the current value as a canonical string.
    pub get: fn(&Options) -> String,
    /// Parses and stores a value.
    pub set: fn(&mut Options, &str) -> Result<()>,
}

impl std::fmt::Debug for OptionMeta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OptionMeta")
            .field("name", &self.name)
            .field("section", &self.section)
            .field("kind", &self.kind)
            .field("range", &self.range)
            .finish_non_exhaustive()
    }
}

/// A recognized-but-retired option and what to do about it.
#[derive(Debug, Clone, Copy)]
pub struct DeprecatedOption {
    /// The retired name.
    pub name: &'static str,
    /// Option it maps onto, if a safe remap exists.
    pub remap_to: Option<&'static str>,
    /// Human note explaining the retirement.
    pub note: &'static str,
}

/// Parses a boolean literal (`true`/`false`/`1`/`0`/`yes`/`no`).
pub fn parse_bool(s: &str) -> Option<bool> {
    match s.trim().to_ascii_lowercase().as_str() {
        "true" | "1" | "yes" | "on" => Some(true),
        "false" | "0" | "no" | "off" => Some(false),
        _ => None,
    }
}

/// Parses a byte-size literal: raw integers plus `K`/`M`/`G`/`T`
/// suffixes with optional `B`/`iB` (e.g. `64MB`, `4 KiB`, `1g`).
pub fn parse_size(s: &str) -> Option<u64> {
    let t = s.trim().replace('_', "");
    if t.is_empty() {
        return None;
    }
    let lower = t.to_ascii_lowercase();
    let (num_part, mult) = if let Some(stripped) = strip_size_suffix(&lower, &["tib", "tb", "t"]) {
        (stripped, 1u64 << 40)
    } else if let Some(stripped) = strip_size_suffix(&lower, &["gib", "gb", "g"]) {
        (stripped, 1u64 << 30)
    } else if let Some(stripped) = strip_size_suffix(&lower, &["mib", "mb", "m"]) {
        (stripped, 1u64 << 20)
    } else if let Some(stripped) = strip_size_suffix(&lower, &["kib", "kb", "k"]) {
        (stripped, 1u64 << 10)
    } else if let Some(stripped) = strip_size_suffix(&lower, &["b"]) {
        (stripped, 1)
    } else {
        (lower.as_str().to_string(), 1)
    };
    let num_part = num_part.trim();
    if num_part.is_empty() {
        return None;
    }
    if let Ok(v) = num_part.parse::<u64>() {
        return Some(v.saturating_mul(mult));
    }
    // Allow fractional sizes like "0.5GB".
    if let Ok(f) = num_part.parse::<f64>() {
        if f >= 0.0 && f.is_finite() {
            return Some((f * mult as f64).round() as u64);
        }
    }
    None
}

fn strip_size_suffix(s: &str, suffixes: &[&str]) -> Option<String> {
    for suf in suffixes {
        if let Some(stripped) = s.strip_suffix(suf) {
            // Guard against stripping the "b" of a bare hex-ish token.
            if !stripped.is_empty() && stripped.chars().all(|c| c.is_ascii_digit() || c == '.' || c == ' ')
            {
                return Some(stripped.to_string());
            }
        }
    }
    None
}

fn parse_int(s: &str) -> Option<i64> {
    let t = s.trim();
    if let Ok(v) = t.parse::<i64>() {
        return Some(v);
    }
    // Tolerate size suffixes on integer options ("max_compaction_bytes=1GB").
    parse_size(t).and_then(|v| i64::try_from(v).ok())
}

fn parse_double(s: &str) -> Option<f64> {
    s.trim().parse::<f64>().ok().filter(|f| f.is_finite())
}

fn check_range(name: &str, v: f64, range: Option<(f64, f64)>) -> Result<()> {
    if let Some((lo, hi)) = range {
        if v < lo || v > hi {
            return Err(Error::invalid_argument(format!(
                "{name}={v} is outside the valid range [{lo}, {hi}]"
            )));
        }
    }
    Ok(())
}

macro_rules! opt_bool {
    ($field:ident, $section:expr, $mutable:expr, $protected:expr, $perf:expr, $desc:expr) => {
        OptionMeta {
            name: stringify!($field),
            aliases: &[],
            section: $section,
            kind: OptionKind::Bool,
            range: None,
            mutable_online: $mutable,
            protected_by_default: $protected,
            performance_relevant: $perf,
            description: $desc,
            get: |o| o.$field.to_string(),
            set: |o, v| {
                o.$field = parse_bool(v).ok_or_else(|| {
                    Error::invalid_argument(format!(
                        concat!(stringify!($field), "={} is not a boolean"),
                        v
                    ))
                })?;
                Ok(())
            },
        }
    };
}

macro_rules! opt_int {
    ($field:ident, $section:expr, $range:expr, $mutable:expr, $perf:expr, $desc:expr) => {
        OptionMeta {
            name: stringify!($field),
            aliases: &[],
            section: $section,
            kind: OptionKind::Int,
            range: Some($range),
            mutable_online: $mutable,
            protected_by_default: false,
            performance_relevant: $perf,
            description: $desc,
            get: |o| o.$field.to_string(),
            set: |o, v| {
                let parsed = parse_int(v).ok_or_else(|| {
                    Error::invalid_argument(format!(
                        concat!(stringify!($field), "={} is not an integer"),
                        v
                    ))
                })?;
                check_range(stringify!($field), parsed as f64, Some($range))?;
                o.$field = parsed;
                Ok(())
            },
        }
    };
}

macro_rules! opt_size {
    ($field:ident, $section:expr, $range:expr, $mutable:expr, $perf:expr, $desc:expr) => {
        opt_size!($field, &[], $section, $range, $mutable, $perf, $desc)
    };
    ($field:ident, $aliases:expr, $section:expr, $range:expr, $mutable:expr, $perf:expr, $desc:expr) => {
        OptionMeta {
            name: stringify!($field),
            aliases: $aliases,
            section: $section,
            kind: OptionKind::Size,
            range: Some($range),
            mutable_online: $mutable,
            protected_by_default: false,
            performance_relevant: $perf,
            description: $desc,
            get: |o| o.$field.to_string(),
            set: |o, v| {
                let parsed = parse_size(v).ok_or_else(|| {
                    Error::invalid_argument(format!(
                        concat!(stringify!($field), "={} is not a byte size"),
                        v
                    ))
                })?;
                check_range(stringify!($field), parsed as f64, Some($range))?;
                o.$field = parsed;
                Ok(())
            },
        }
    };
}

macro_rules! opt_double {
    ($field:ident, $section:expr, $range:expr, $mutable:expr, $perf:expr, $desc:expr) => {
        OptionMeta {
            name: stringify!($field),
            aliases: &[],
            section: $section,
            kind: OptionKind::Double,
            range: Some($range),
            mutable_online: $mutable,
            protected_by_default: false,
            performance_relevant: $perf,
            description: $desc,
            get: |o| format!("{}", o.$field),
            set: |o, v| {
                let parsed = parse_double(v).ok_or_else(|| {
                    Error::invalid_argument(format!(
                        concat!(stringify!($field), "={} is not a number"),
                        v
                    ))
                })?;
                check_range(stringify!($field), parsed, Some($range))?;
                o.$field = parsed;
                Ok(())
            },
        }
    };
}

macro_rules! opt_compression {
    ($field:ident, $section:expr, $perf:expr, $desc:expr) => {
        OptionMeta {
            name: stringify!($field),
            aliases: &[],
            section: $section,
            kind: OptionKind::Enum(&["none", "snappy", "lz4", "zstd"]),
            range: None,
            mutable_online: true,
            protected_by_default: false,
            performance_relevant: $perf,
            description: $desc,
            get: |o| o.$field.to_string(),
            set: |o, v| {
                o.$field = CompressionType::parse(v).ok_or_else(|| {
                    Error::invalid_argument(format!(
                        concat!(stringify!($field), "={} is not a compression type"),
                        v
                    ))
                })?;
                Ok(())
            },
        }
    };
}

const GIB64: f64 = (64u64 << 30) as f64;
const TIB: f64 = (1u64 << 40) as f64;

fn build_registry() -> Vec<OptionMeta> {
    use Section::{Cf, Db, Table};
    vec![
        // ---------------- DBOptions ----------------
        opt_int!(max_background_jobs, Db, (1.0, 64.0), true, true,
            "Total budget for concurrent background flush and compaction jobs"),
        opt_int!(max_background_compactions, Db, (-1.0, 64.0), true, true,
            "Concurrent compaction jobs; -1 derives ~3/4 of max_background_jobs"),
        opt_int!(max_background_flushes, Db, (-1.0, 64.0), true, true,
            "Concurrent flush jobs; -1 derives ~1/4 of max_background_jobs"),
        opt_int!(max_subcompactions, Db, (1.0, 32.0), true, true,
            "Threads one compaction may split key ranges across"),
        opt_size!(bytes_per_sync, Db, (0.0, GIB64), true, true,
            "Sync SST file data incrementally every N bytes (0 = leave to OS writeback)"),
        opt_size!(wal_bytes_per_sync, Db, (0.0, GIB64), true, true,
            "Sync WAL data incrementally every N bytes (0 = leave to OS writeback)"),
        opt_bool!(strict_bytes_per_sync, Db, true, false, true,
            "Block writers until incremental syncs complete (bounds dirty data, adds write latency)"),
        opt_size!(delayed_write_rate, Db, (1024.0, GIB64), true, true,
            "Write throughput cap while the write controller is in the slowdown regime"),
        opt_bool!(enable_pipelined_write, Db, false, false, true,
            "Pipeline WAL append and memtable insert stages of the write path \
             (real mode: group applies to the memtable before the WAL sync returns)"),
        opt_bool!(allow_concurrent_memtable_write, Db, false, false, true,
            "Allow multiple writers to insert into the memtable concurrently \
             (real mode: off caps commit groups at a single batch)"),
        opt_bool!(use_direct_reads, Db, false, false, true,
            "Bypass the OS page cache for user reads"),
        opt_bool!(use_direct_io_for_flush_and_compaction, Db, false, false, true,
            "Bypass the OS page cache for background I/O"),
        opt_size!(compaction_readahead_size, Db, (0.0, (256u64 << 20) as f64), true, true,
            "Read compaction inputs in sequential chunks of this size (critical on HDDs)"),
        // Not mutable_online: the table-reader cache is sized once at open.
        opt_int!(max_open_files, Db, (-1.0, 1_000_000.0), false, true,
            "Table files kept open; -1 = all (avoids reopen cost on reads)"),
        opt_size!(max_total_wal_size, Db, (0.0, TIB), true, true,
            "Force memtable switch once live WALs exceed this (0 = 4x write buffers)"),
        opt_size!(db_write_buffer_size, Db, (0.0, TIB), true, true,
            "Global memtable budget across all column families (0 = unlimited)"),
        opt_bool!(dump_malloc_stats, Db, true, false, false,
            "Dump allocator statistics to the info log (observability only)"),
        opt_int!(stats_dump_period_sec, Db, (0.0, 86_400.0), true, false,
            "Seconds between statistics dumps to the info log"),
        opt_size!(rate_limiter_bytes_per_sec, Db, (0.0, GIB64), true, true,
            "Cap background I/O rate to smooth foreground latency (0 = unlimited)"),
        opt_bool!(paranoid_checks, Db, false, false, true,
            "Verify checksums aggressively on every read"),
        opt_bool!(use_fsync, Db, false, false, true,
            "Use fsync instead of fdatasync at durability points"),
        OptionMeta {
            name: "disable_wal",
            aliases: &["disableWAL"],
            section: Db,
            kind: OptionKind::Bool,
            range: None,
            mutable_online: false,
            protected_by_default: true,
            performance_relevant: true,
            description: "Disable the write-ahead log (unsafe: loses durability; protected)",
            get: |o| o.disable_wal.to_string(),
            set: |o, v| {
                o.disable_wal = parse_bool(v)
                    .ok_or_else(|| Error::invalid_argument(format!("disable_wal={v} is not a boolean")))?;
                Ok(())
            },
        },
        opt_bool!(manual_wal_flush, Db, false, true, true,
            "Flush WAL only on explicit request (unsafe: loses durability; protected)"),
        opt_int!(table_cache_numshardbits, Db, (0.0, 19.0), false, false,
            "Shards (log2) in the table-reader cache"),
        opt_bool!(avoid_flush_during_shutdown, Db, false, true, true,
            "Skip flushing memtables at shutdown (unsafe: loses recent writes; protected)"),
        opt_bool!(avoid_flush_during_recovery, Db, false, false, false,
            "Skip flushing replayed memtables right after recovery"),
        opt_int!(recycle_log_file_num, Db, (0.0, 64.0), false, false,
            "Recycle this many WAL files instead of deleting them"),
        opt_size!(writable_file_max_buffer_size, Db, (4096.0, (64u64 << 20) as f64), false, true,
            "Write buffer size for file appends before hitting the device"),
        opt_int!(max_file_opening_threads, Db, (1.0, 64.0), false, false,
            "Threads used to open table files at DB open"),
        opt_bool!(enable_write_thread_adaptive_yield, Db, false, false, false,
            "Spin briefly before blocking when joining the write group"),
        opt_compression!(wal_compression, Db, false,
            "Compress WAL records (accepted; modeled as neutral)"),
        opt_int!(num_shards, Db, (1.0, 64.0), false, true,
            "Key-range shards, each an independent LSM tree behind one facade (1 = unsharded)"),
        opt_size!(shard_bytes_soft_limit, Db, (0.0, TIB), true, true,
            "Per-shard size beyond which extra compaction pressure is charged (0 = disabled)"),
        // ---------------- CFOptions ----------------
        opt_size!(write_buffer_size, Cf, (65_536.0, GIB64), true, true,
            "Memtable size that triggers a flush; bigger absorbs more writes but uses RAM"),
        opt_int!(max_write_buffer_number, Cf, (1.0, 64.0), true, true,
            "Memtables (active+immutable) kept before writes stall"),
        opt_int!(min_write_buffer_number_to_merge, Cf, (1.0, 16.0), true, true,
            "Immutable memtables merged into one L0 file per flush"),
        opt_int!(level0_file_num_compaction_trigger, Cf, (1.0, 1000.0), true, true,
            "L0 file count that triggers L0->L1 compaction"),
        opt_int!(level0_slowdown_writes_trigger, Cf, (1.0, 10_000.0), true, true,
            "L0 file count at which writes are throttled"),
        opt_int!(level0_stop_writes_trigger, Cf, (1.0, 10_000.0), true, true,
            "L0 file count at which writes stop entirely"),
        opt_int!(num_levels, Cf, (2.0, 12.0), false, true,
            "Number of LSM levels"),
        opt_size!(target_file_size_base, Cf, (65_536.0, GIB64), true, true,
            "Target SST file size at L1"),
        opt_int!(target_file_size_multiplier, Cf, (1.0, 100.0), true, true,
            "Per-level multiplier applied to target_file_size_base"),
        opt_size!(max_bytes_for_level_base, Cf, (1_048_576.0, TIB), true, true,
            "Target total bytes at L1"),
        opt_double!(max_bytes_for_level_multiplier, Cf, (1.0, 100.0), true, true,
            "Growth factor between consecutive level targets"),
        opt_bool!(level_compaction_dynamic_level_bytes, Cf, false, false, true,
            "Size levels dynamically from the last level upward (lower space amplification)"),
        OptionMeta {
            name: "compaction_style",
            aliases: &[],
            section: Cf,
            kind: OptionKind::Enum(&["level", "universal", "fifo"]),
            range: None,
            mutable_online: false,
            protected_by_default: false,
            performance_relevant: true,
            description: "Compaction strategy: leveled, universal (size-tiered), or FIFO",
            get: |o| o.compaction_style.to_string(),
            set: |o, v| {
                o.compaction_style = CompactionStyle::parse(v).ok_or_else(|| {
                    Error::invalid_argument(format!("compaction_style={v} is not a compaction style"))
                })?;
                Ok(())
            },
        },
        opt_compression!(compression, Cf, true,
            "Block compression: trades CPU for smaller files and less write I/O"),
        opt_compression!(bottommost_compression, Cf, true,
            "Compression override for the bottommost level"),
        opt_bool!(disable_auto_compactions, Cf, true, false, true,
            "Disable automatic compactions (manual compaction only)"),
        opt_double!(memtable_prefix_bloom_size_ratio, Cf, (0.0, 0.25), true, true,
            "Memtable bloom filter size as a fraction of write_buffer_size"),
        opt_bool!(optimize_filters_for_hits, Cf, false, false, true,
            "Skip bloom filters on the last level to save memory when most reads hit"),
        opt_size!(soft_pending_compaction_bytes_limit, Cf, (0.0, TIB), true, true,
            "Pending compaction debt that triggers write slowdown"),
        opt_size!(hard_pending_compaction_bytes_limit, Cf, (0.0, TIB), true, true,
            "Pending compaction debt that stops writes"),
        opt_size!(max_compaction_bytes, Cf, (1_048_576.0, TIB), true, true,
            "Maximum bytes one compaction may span"),
        opt_bool!(report_bg_io_stats, Cf, true, false, false,
            "Collect per-job background I/O statistics"),
        opt_int!(universal_max_size_amplification_percent, Cf, (1.0, 10_000.0), true, true,
            "Universal compaction: allowed space amplification percent"),
        opt_int!(universal_size_ratio, Cf, (0.0, 100.0), true, true,
            "Universal compaction: size-ratio tolerance percent for merging runs"),
        opt_int!(universal_min_merge_width, Cf, (2.0, 64.0), true, true,
            "Universal compaction: minimum runs merged at once"),
        opt_int!(universal_max_merge_width, Cf, (2.0, 1024.0), true, true,
            "Universal compaction: maximum runs merged at once"),
        opt_size!(fifo_max_table_files_size, Cf, (1_048_576.0, TIB), true, true,
            "FIFO compaction: total size budget before oldest files are dropped"),
        opt_int!(periodic_compaction_seconds, Cf, (0.0, 31_536_000.0), true, false,
            "Rewrite files older than this (accepted; modeled as neutral)"),
        // ---------------- BlockBasedTableOptions ----------------
        opt_size!(block_size, Table, (256.0, (64u64 << 20) as f64), false, true,
            "Uncompressed data block size; smaller favours point reads, larger favours scans"),
        opt_int!(block_restart_interval, Table, (1.0, 256.0), false, true,
            "Keys between restart points inside a block"),
        // Mutable online: the filter policy is read per flush/compaction, so
        // a live change takes effect on every table built afterwards.
        opt_double!(bloom_filter_bits_per_key, Table, (0.0, 40.0), true, true,
            "Bloom filter bits per key (0 disables; ~10 gives ~1% false positives)"),
        opt_bool!(whole_key_filtering, Table, false, false, true,
            "Add whole keys to the bloom filter"),
        opt_bool!(cache_index_and_filter_blocks, Table, false, false, true,
            "Charge index/filter blocks to the block cache instead of pinning them"),
        opt_bool!(pin_l0_filter_and_index_blocks_in_cache, Table, false, false, true,
            "Pin L0 index/filter blocks in cache even when charged to it"),
        opt_size!(block_cache_size, &["cache_size"], Table, (0.0, TIB), false, true,
            "Block cache capacity for uncompressed data blocks"),
        opt_bool!(no_block_cache, Table, false, false, true,
            "Disable the block cache entirely"),
    ]
}

/// Options retired by upstream RocksDB that the framework still
/// recognizes — the paper notes LLMs "can unnecessarily focus" on
/// deprecated options, so these must parse and be reported, not crash.
pub const DEPRECATED_OPTIONS: &[DeprecatedOption] = &[
    DeprecatedOption {
        name: "base_background_compactions",
        remap_to: Some("max_background_compactions"),
        note: "merged into max_background_compactions / max_background_jobs",
    },
    DeprecatedOption {
        name: "max_mem_compaction_level",
        remap_to: None,
        note: "removed; memtable flushes always target L0",
    },
    DeprecatedOption {
        name: "soft_rate_limit",
        remap_to: None,
        note: "removed; use delayed_write_rate and the pending-compaction limits",
    },
    DeprecatedOption {
        name: "hard_rate_limit",
        remap_to: None,
        note: "removed; use hard_pending_compaction_bytes_limit",
    },
    DeprecatedOption {
        name: "rate_limit_delay_max_milliseconds",
        remap_to: None,
        note: "removed along with the old rate limits",
    },
    DeprecatedOption {
        name: "skip_log_error_on_recovery",
        remap_to: None,
        note: "removed; recovery is always strict",
    },
    DeprecatedOption {
        name: "purge_redundant_kvs_while_flush",
        remap_to: None,
        note: "removed; flush always drops shadowed entries",
    },
    DeprecatedOption {
        name: "db_log_dir",
        remap_to: None,
        note: "info-log placement is not modeled",
    },
];

/// All registered options, sorted by (section, name).
pub fn all_options() -> &'static [OptionMeta] {
    static REGISTRY: OnceLock<Vec<OptionMeta>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut v = build_registry();
        v.sort_by(|a, b| match (a.section as u8).cmp(&(b.section as u8)) {
            Ordering::Equal => a.name.cmp(b.name),
            o => o,
        });
        v
    })
}

/// Looks up an option by name or alias (case-insensitive).
pub fn find_option(name: &str) -> Option<&'static OptionMeta> {
    let needle = name.trim();
    all_options().iter().find(|m| {
        m.name.eq_ignore_ascii_case(needle)
            || m.aliases.iter().any(|a| a.eq_ignore_ascii_case(needle))
    })
}

/// Looks up a deprecated option by name (case-insensitive).
pub fn find_deprecated(name: &str) -> Option<&'static DeprecatedOption> {
    let needle = name.trim();
    DEPRECATED_OPTIONS
        .iter()
        .find(|d| d.name.eq_ignore_ascii_case(needle))
}

/// Resolves a name (or alias, or remappable deprecated name) to its
/// registry entry.
fn resolve_meta(name: &str) -> Result<&'static OptionMeta> {
    if let Some(meta) = find_option(name) {
        return Ok(meta);
    }
    if let Some(dep) = find_deprecated(name) {
        if let Some(target) = dep.remap_to {
            return resolve_meta(target);
        }
        return Err(Error::invalid_argument(format!(
            "option {name} is deprecated: {}",
            dep.note
        )));
    }
    Err(Error::invalid_argument(format!("unknown option: {name}")))
}

/// Outcome of [`Options::apply_live`].
///
/// All names and values are canonical (aliases resolved, size literals
/// rendered as plain byte counts), so entries compare cleanly against
/// [`Options::get_by_name`] output and against other outcomes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LiveApplyOutcome {
    /// `(name, from, to)` for every option whose value actually changed.
    pub applied: Vec<(String, String, String)>,
    /// `(name, value)` pairs that parsed to the value already in force.
    pub unchanged: Vec<(String, String)>,
    /// Names rejected because the engine cannot honour them without a
    /// reopen (`mutable_online == false`). When non-empty, **nothing**
    /// from the batch was committed.
    pub rejected_immutable: Vec<String>,
}

impl LiveApplyOutcome {
    /// True when the batch committed (no immutable rejections).
    pub fn committed(&self) -> bool {
        self.rejected_immutable.is_empty()
    }
}

impl Options {
    /// Reads an option's current value as its canonical string.
    pub fn get_by_name(&self, name: &str) -> Option<String> {
        find_option(name).map(|m| (m.get)(self))
    }

    /// Parses and stores an option value by name — the
    /// *construction-time* setter: it accepts every registered option,
    /// including ones the engine cannot change after open. For changes
    /// to a live database use [`Options::apply_live`].
    ///
    /// # Errors
    ///
    /// [`ErrorKind::InvalidArgument`](crate::ErrorKind) if the option is unknown, deprecated
    /// without a remap, fails to parse, or is out of range.
    pub fn set_by_name(&mut self, name: &str, value: &str) -> Result<()> {
        (resolve_meta(name)?.set)(self, value)
    }

    /// Applies a batch of `(name, value)` changes as a *live* update:
    /// options that are not `mutable_online` are collected in
    /// [`LiveApplyOutcome::rejected_immutable`] instead of being set.
    ///
    /// The batch is atomic: it commits only when every pair parses, the
    /// combined result passes [`Options::validate`], and no pair named
    /// an immutable option. Otherwise `self` is left untouched — on
    /// `Err`, and also on `Ok` with a non-empty `rejected_immutable`
    /// (the caller decides how severe an immutable rejection is).
    ///
    /// # Errors
    ///
    /// [`ErrorKind::InvalidArgument`](crate::ErrorKind) if any pair is unknown, fails to
    /// parse, is out of range, or the combined result violates a
    /// cross-option invariant.
    pub fn apply_live(&mut self, changes: &[(&str, &str)]) -> Result<LiveApplyOutcome> {
        let mut next = self.clone();
        let mut out = LiveApplyOutcome::default();
        for (name, value) in changes {
            let meta = resolve_meta(name)?;
            if !meta.mutable_online {
                if !out.rejected_immutable.iter().any(|n| n == meta.name) {
                    out.rejected_immutable.push(meta.name.to_string());
                }
                continue;
            }
            let before = (meta.get)(&next);
            (meta.set)(&mut next, value)?;
            let after = (meta.get)(&next);
            if before == after {
                out.unchanged.push((meta.name.to_string(), after));
            } else {
                out.applied.push((meta.name.to_string(), before, after));
            }
        }
        if !out.rejected_immutable.is_empty() {
            return Ok(out);
        }
        next.validate()?;
        *self = next;
        Ok(out)
    }

    /// Normalizes a proposed `(name, value)` pair through the registry:
    /// resolves aliases and deprecated remaps to the canonical name and
    /// re-renders the parsed value canonically (`"64MB"` →
    /// `"67108864"`, `"kZSTDCompression"` → `"zstd"`).
    ///
    /// # Errors
    ///
    /// [`ErrorKind::InvalidArgument`](crate::ErrorKind) if the name is unknown or the value
    /// fails to parse or is out of range.
    pub fn normalize_change(name: &str, value: &str) -> Result<(String, String)> {
        let meta = resolve_meta(name)?;
        let mut scratch = Options::default();
        (meta.set)(&mut scratch, value)?;
        Ok((meta.name.to_string(), (meta.get)(&scratch)))
    }

    /// Diffs proposed raw `(name, value)` pairs against this
    /// configuration, returning `(name, current, proposed)` only for
    /// pairs that would actually change a value. Both sides are
    /// normalized through the registry first, so `("cache_size",
    /// "8MB")` against the default `block_cache_size = 8388608` is
    /// correctly reported as a no-op rather than a spurious diff.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::InvalidArgument`](crate::ErrorKind) if any pair is unknown or unparseable.
    pub fn diff_changes(&self, changes: &[(&str, &str)]) -> Result<Vec<(String, String, String)>> {
        let mut out = Vec::new();
        for (name, value) in changes {
            let (canon_name, proposed) = Self::normalize_change(name, value)?;
            let current = self
                .get_by_name(&canon_name)
                .expect("normalize_change returned a registered name");
            if current != proposed {
                out.push((canon_name, current, proposed));
            }
        }
        Ok(out)
    }

    /// Lists `(name, from, to)` for every option that differs from
    /// `other`. Both sides are read through the registry's canonical
    /// getters, so equivalent spellings never produce spurious entries.
    pub fn diff(&self, other: &Options) -> Vec<(String, String, String)> {
        all_options()
            .iter()
            .filter_map(|m| {
                let a = (m.get)(self);
                let b = (m.get)(other);
                if a != b {
                    Some((m.name.to_string(), a, b))
                } else {
                    None
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_many_options() {
        // The paper's premise: "often exceeding 100" total parameters; we
        // register the meaningful core of that surface.
        assert!(all_options().len() >= 60, "got {}", all_options().len());
    }

    #[test]
    fn registry_names_are_unique() {
        let mut names: Vec<_> = all_options().iter().map(|m| m.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn every_table5_option_is_registered() {
        // The 15 options the paper shows GPT-4 tuning in Table 5.
        for name in [
            "max_background_flushes",
            "wal_bytes_per_sync",
            "bytes_per_sync",
            "strict_bytes_per_sync",
            "max_background_compactions",
            "dump_malloc_stats",
            "enable_pipelined_write",
            "max_bytes_for_level_multiplier",
            "max_write_buffer_number",
            "compaction_readahead_size",
            "max_background_jobs",
            "target_file_size_base",
            "write_buffer_size",
            "level0_file_num_compaction_trigger",
            "min_write_buffer_number_to_merge",
        ] {
            assert!(find_option(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn get_set_roundtrip_every_option() {
        let mut opts = Options::default();
        for meta in all_options() {
            let current = (meta.get)(&opts);
            (meta.set)(&mut opts, &current).unwrap_or_else(|e| {
                panic!("option {} rejected its own default {current}: {e}", meta.name)
            });
            assert_eq!((meta.get)(&opts), current, "{} drifted", meta.name);
        }
    }

    #[test]
    fn size_literals_parse() {
        assert_eq!(parse_size("67108864"), Some(67_108_864));
        assert_eq!(parse_size("64MB"), Some(64 << 20));
        assert_eq!(parse_size("64 MiB"), Some(64 << 20));
        assert_eq!(parse_size("1g"), Some(1 << 30));
        assert_eq!(parse_size("0.5GB"), Some(1 << 29));
        assert_eq!(parse_size("4k"), Some(4096));
        assert_eq!(parse_size("512B"), Some(512));
        assert_eq!(parse_size(""), None);
        assert_eq!(parse_size("lots"), None);
    }

    #[test]
    fn set_by_name_validates_range() {
        let mut opts = Options::default();
        let err = opts.set_by_name("max_background_jobs", "9999").unwrap_err();
        assert!(err.to_string().contains("outside the valid range"));
        let err = opts.set_by_name("bloom_filter_bits_per_key", "-3").unwrap_err();
        assert!(err.to_string().contains("outside the valid range"));
    }

    #[test]
    fn set_by_name_handles_aliases_and_case() {
        let mut opts = Options::default();
        opts.set_by_name("cache_size", "128MB").unwrap();
        assert_eq!(opts.block_cache_size, 128 << 20);
        opts.set_by_name("WRITE_BUFFER_SIZE", "16mb").unwrap();
        assert_eq!(opts.write_buffer_size, 16 << 20);
    }

    #[test]
    fn deprecated_options_remap_or_explain() {
        let mut opts = Options::default();
        opts.set_by_name("base_background_compactions", "4").unwrap();
        assert_eq!(opts.max_background_compactions, 4);
        let err = opts.set_by_name("soft_rate_limit", "0.5").unwrap_err();
        assert!(err.to_string().contains("deprecated"));
    }

    #[test]
    fn unknown_option_is_rejected() {
        let mut opts = Options::default();
        let err = opts.set_by_name("write_buffer_magic", "1").unwrap_err();
        assert!(err.to_string().contains("unknown option"));
    }

    #[test]
    fn diff_reports_changes() {
        let a = Options::default();
        let mut b = Options::default();
        b.set_by_name("write_buffer_size", "32MB").unwrap();
        b.set_by_name("compression", "zstd").unwrap();
        let diff = a.diff(&b);
        assert_eq!(diff.len(), 2);
        assert!(diff.iter().any(|(n, from, to)| n == "write_buffer_size"
            && from == "67108864"
            && to == "33554432"));
    }

    #[test]
    fn diff_changes_normalizes_aliases_and_size_literals() {
        // Regression: comparing proposed raw strings against rendered
        // current values reported spurious diffs — "64MB" vs the
        // canonical "67108864", and "cache_size" never matching the
        // canonical block_cache_size entry. Both must normalize through
        // the registry before comparing.
        let opts = Options::default();
        // Equivalent size literal for the default write_buffer_size.
        assert_eq!(opts.diff_changes(&[("write_buffer_size", "64MB")]).unwrap(), vec![]);
        // Alias + equivalent literal for the default block_cache_size.
        assert_eq!(opts.diff_changes(&[("cache_size", "8MB")]).unwrap(), vec![]);
        // RocksDB-style enum spelling of the default compression.
        assert_eq!(opts.diff_changes(&[("compression", "kSnappyCompression")]).unwrap(), vec![]);
        // A real change still shows, with both sides canonical.
        let diff = opts
            .diff_changes(&[("cache_size", "128MB"), ("write_buffer_size", "64MB")])
            .unwrap();
        assert_eq!(
            diff,
            vec![("block_cache_size".to_string(), "8388608".to_string(), "134217728".to_string())]
        );
        // Unknown names are errors, not silent no-ops.
        assert!(opts.diff_changes(&[("write_buffer_magic", "1")]).is_err());
    }

    #[test]
    fn normalize_change_canonicalizes() {
        assert_eq!(
            Options::normalize_change("cache_size", "64 MiB").unwrap(),
            ("block_cache_size".to_string(), "67108864".to_string())
        );
        assert_eq!(
            Options::normalize_change("base_background_compactions", "4").unwrap(),
            ("max_background_compactions".to_string(), "4".to_string())
        );
        assert!(Options::normalize_change("write_buffer_size", "tiny").is_err());
        assert!(Options::normalize_change("max_background_jobs", "9999").is_err());
    }

    #[test]
    fn apply_live_applies_mutable_batch_atomically() {
        let mut opts = Options::default();
        let out = opts
            .apply_live(&[
                ("write_buffer_size", "32MB"),
                ("level0_slowdown_writes_trigger", "24"),
                ("compression", "snappy"), // default: a no-op
            ])
            .unwrap();
        assert!(out.committed());
        assert_eq!(opts.write_buffer_size, 32 << 20);
        assert_eq!(opts.level0_slowdown_writes_trigger, 24);
        assert_eq!(out.applied.len(), 2);
        assert_eq!(out.unchanged, vec![("compression".to_string(), "snappy".to_string())]);
        assert!(out.applied.iter().any(|(n, from, to)| n == "write_buffer_size"
            && from == "67108864"
            && to == "33554432"));
    }

    #[test]
    fn apply_live_rejects_immutable_without_committing() {
        let mut opts = Options::default();
        let out = opts
            .apply_live(&[
                ("write_buffer_size", "32MB"),
                ("num_shards", "4"),
                ("cache_size", "128MB"), // alias of immutable block_cache_size
            ])
            .unwrap();
        assert!(!out.committed());
        assert_eq!(
            out.rejected_immutable,
            vec!["num_shards".to_string(), "block_cache_size".to_string()]
        );
        // Nothing committed — not even the mutable pair.
        assert_eq!(opts, Options::default());
    }

    #[test]
    fn apply_live_aborts_on_parse_range_and_validate_errors() {
        let base = Options::default();

        let mut opts = base.clone();
        assert!(opts.apply_live(&[("write_buffer_size", "32MB"), ("compression", "brotli")]).is_err());
        assert_eq!(opts, base);

        let mut opts = base.clone();
        assert!(opts.apply_live(&[("max_background_jobs", "9999")]).is_err());
        assert_eq!(opts, base);

        // Cross-option invariant: slowdown trigger above the stop trigger.
        let mut opts = base.clone();
        let err = opts.apply_live(&[("level0_slowdown_writes_trigger", "99")]).unwrap_err();
        assert!(err.to_string().contains("level0_stop_writes_trigger"), "{err}");
        assert_eq!(opts, base);
    }

    #[test]
    fn mutability_flags_match_engine_behavior() {
        // The table-reader cache is sized once at open; bloom bits are
        // read every time a table is built.
        assert!(!find_option("max_open_files").unwrap().mutable_online);
        assert!(find_option("bloom_filter_bits_per_key").unwrap().mutable_online);
        assert!(!find_option("block_cache_size").unwrap().mutable_online);
        assert!(find_option("write_buffer_size").unwrap().mutable_online);
        assert!(!find_option("disable_wal").unwrap().mutable_online);
    }

    #[test]
    fn protected_options_marked() {
        assert!(find_option("disable_wal").unwrap().protected_by_default);
        assert!(find_option("avoid_flush_during_shutdown").unwrap().protected_by_default);
        assert!(!find_option("write_buffer_size").unwrap().protected_by_default);
    }

    #[test]
    fn enum_options_parse_rocksdb_names() {
        let mut opts = Options::default();
        opts.set_by_name("compression", "kZSTDCompression").unwrap();
        assert_eq!(opts.compression, CompressionType::Zstd);
        opts.set_by_name("compaction_style", "kCompactionStyleUniversal").unwrap();
        assert_eq!(opts.compaction_style, CompactionStyle::Universal);
    }
}
