//! RocksDB `OPTIONS`-file-style ini serialization.
//!
//! The tuning loop passes configurations around as ini text — the same
//! "common language" the paper's framework uses between the LLM and the
//! store. The format mirrors RocksDB's `OPTIONS-NNNN` files:
//!
//! ```ini
//! [DBOptions]
//!   max_background_jobs=2
//! [CFOptions "default"]
//!   write_buffer_size=67108864
//! [TableOptions/BlockBasedTable "default"]
//!   block_size=4096
//! ```

use crate::error::{Error, Result};
use crate::options::registry::{all_options, Section};
use crate::options::Options;

/// Serializes the full option set to ini text, grouped by section.
pub fn to_ini(opts: &Options) -> String {
    let mut out = String::new();
    for section in [Section::Db, Section::Cf, Section::Table] {
        out.push_str(section.ini_header());
        out.push('\n');
        for meta in all_options().iter().filter(|m| m.section == section) {
            out.push_str("  ");
            out.push_str(meta.name);
            out.push('=');
            out.push_str(&(meta.get)(opts));
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// The outcome of parsing ini text: the options that applied plus
/// anything that could not be applied (unknown names, bad values).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IniParseOutcome {
    /// `(name, value)` pairs successfully applied.
    pub applied: Vec<(String, String)>,
    /// `(name, value, reason)` triples that were rejected.
    pub rejected: Vec<(String, String, String)>,
}

/// Parses ini text into `opts`, applying every recognized `key=value`.
///
/// Unknown sections are tolerated (RocksDB files carry a `[Version]`
/// section). Unknown or invalid entries are reported in the outcome
/// rather than failing the whole parse — the safeguard layer decides what
/// to do about them.
pub fn apply_ini(opts: &mut Options, text: &str) -> IniParseOutcome {
    let mut outcome = IniParseOutcome::default();
    for raw_line in text.lines() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with(';') || line.starts_with('[')
        {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim().trim_matches('"');
        match opts.set_by_name(key, value) {
            Ok(()) => outcome.applied.push((key.to_string(), value.to_string())),
            Err(e) => outcome
                .rejected
                .push((key.to_string(), value.to_string(), e.to_string())),
        }
    }
    outcome
}

/// Parses ini text into a fresh option set starting from defaults.
///
/// # Errors
///
/// Returns [`ErrorKind::InvalidArgument`](crate::ErrorKind) if *no* line applied — the text was
/// not an options file at all.
pub fn from_ini(text: &str) -> Result<(Options, IniParseOutcome)> {
    let mut opts = Options::default();
    let outcome = apply_ini(&mut opts, text);
    if outcome.applied.is_empty() {
        return Err(Error::invalid_argument(
            "no recognizable option assignments in ini text",
        ));
    }
    Ok((opts, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{CompactionStyle, CompressionType};

    #[test]
    fn roundtrip_defaults() {
        let opts = Options::default();
        let ini = to_ini(&opts);
        let (parsed, outcome) = from_ini(&ini).unwrap();
        assert_eq!(parsed, opts);
        assert!(outcome.rejected.is_empty(), "{:?}", outcome.rejected);
        assert_eq!(outcome.applied.len(), all_options().len());
    }

    #[test]
    fn roundtrip_modified() {
        let opts = Options {
            write_buffer_size: 128 << 20,
            compression: CompressionType::Zstd,
            compaction_style: CompactionStyle::Universal,
            bloom_filter_bits_per_key: 10.0,
            ..Options::default()
        };
        let (parsed, _) = from_ini(&to_ini(&opts)).unwrap();
        assert_eq!(parsed, opts);
    }

    #[test]
    fn ini_has_rocksdb_sections() {
        let ini = to_ini(&Options::default());
        assert!(ini.contains("[DBOptions]"));
        assert!(ini.contains("[CFOptions \"default\"]"));
        assert!(ini.contains("[TableOptions/BlockBasedTable \"default\"]"));
    }

    #[test]
    fn unknown_keys_are_reported_not_fatal() {
        let text = "[DBOptions]\nwrite_buffer_size=32MB\nmagic_turbo_mode=on\n";
        let (opts, outcome) = from_ini(text).unwrap();
        assert_eq!(opts.write_buffer_size, 32 << 20);
        assert_eq!(outcome.rejected.len(), 1);
        assert!(outcome.rejected[0].2.contains("unknown option"));
    }

    #[test]
    fn comments_and_version_sections_tolerated() {
        let text = "# produced by a tool\n[Version]\n  rocksdb_version=8.8.1\n[DBOptions]\n  max_background_jobs=4\n";
        let (opts, outcome) = from_ini(text).unwrap();
        assert_eq!(opts.max_background_jobs, 4);
        // rocksdb_version is inside [Version]; we don't track sections so it
        // is reported as unknown — which the safeguards treat as noise.
        assert_eq!(outcome.rejected.len(), 1);
    }

    #[test]
    fn empty_text_is_an_error() {
        assert!(from_ini("nothing here").is_err());
    }
}
