//! Engine configuration: a RocksDB-compatible option surface.
//!
//! The tuning framework manipulates the engine exclusively through this
//! module: every option has a RocksDB name, a typed field on [`Options`],
//! an entry in the [`registry`] with metadata (type, range, default,
//! section, mutability, deprecation), and an ini representation compatible
//! with RocksDB `OPTIONS` files ([`ini`]).

pub mod ini;
pub mod registry;

use std::fmt;

use crate::error::{Error, Result};

/// Compaction strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CompactionStyle {
    /// Leveled compaction (RocksDB `kCompactionStyleLevel`).
    #[default]
    Level,
    /// Universal / size-tiered compaction.
    Universal,
    /// FIFO: drop oldest files beyond a size budget.
    Fifo,
}

impl CompactionStyle {
    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            CompactionStyle::Level => "level",
            CompactionStyle::Universal => "universal",
            CompactionStyle::Fifo => "fifo",
        }
    }

    /// Parses RocksDB-style (`kCompactionStyleLevel`) or plain names.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "level" | "kcompactionstylelevel" | "leveled" | "0" => Some(CompactionStyle::Level),
            "universal" | "kcompactionstyleuniversal" | "tiered" | "1" => {
                Some(CompactionStyle::Universal)
            }
            "fifo" | "kcompactionstylefifo" | "2" => Some(CompactionStyle::Fifo),
            _ => None,
        }
    }
}

impl fmt::Display for CompactionStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Block compression algorithm.
///
/// The engine ships its own LZ-style codec; the named variants select the
/// codec's effort level and model the speed/ratio trade-offs of the
/// corresponding real algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CompressionType {
    /// No compression.
    None,
    /// Fast, moderate ratio (models Snappy).
    #[default]
    Snappy,
    /// Fastest, slightly lower ratio (models LZ4).
    Lz4,
    /// Slower, best ratio (models Zstd).
    Zstd,
}

impl CompressionType {
    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            CompressionType::None => "none",
            CompressionType::Snappy => "snappy",
            CompressionType::Lz4 => "lz4",
            CompressionType::Zstd => "zstd",
        }
    }

    /// Parses RocksDB-style (`kSnappyCompression`) or plain names.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "none" | "no" | "knocompression" | "disable" | "disabled" | "false" => {
                Some(CompressionType::None)
            }
            "snappy" | "ksnappycompression" => Some(CompressionType::Snappy),
            "lz4" | "klz4compression" => Some(CompressionType::Lz4),
            "zstd" | "kzstd" | "kzstdcompression" => Some(CompressionType::Zstd),
            _ => None,
        }
    }
}

impl fmt::Display for CompressionType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Full engine configuration with RocksDB-compatible field names.
///
/// Defaults match the `db_bench` baseline the paper tunes against
/// (RocksDB 8.x era defaults; see each field's registry entry).
///
/// # Examples
///
/// ```
/// use lsm_kvs::options::Options;
///
/// let mut opts = Options::default();
/// opts.set_by_name("write_buffer_size", "32MB").unwrap();
/// assert_eq!(opts.write_buffer_size, 32 << 20);
/// assert_eq!(opts.get_by_name("write_buffer_size").unwrap(), "33554432");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    // ---- DBOptions ----
    /// Max concurrent background jobs (flushes + compactions).
    pub max_background_jobs: i64,
    /// Max concurrent compactions; -1 derives from `max_background_jobs`.
    pub max_background_compactions: i64,
    /// Max concurrent flushes; -1 derives from `max_background_jobs`.
    pub max_background_flushes: i64,
    /// Max threads a single compaction may fan out to.
    pub max_subcompactions: i64,
    /// Incremental-sync chunk for SST writes (0 = leave to the OS).
    pub bytes_per_sync: u64,
    /// Incremental-sync chunk for WAL writes (0 = leave to the OS).
    pub wal_bytes_per_sync: u64,
    /// Block writers until incremental syncs complete.
    pub strict_bytes_per_sync: bool,
    /// Write throughput while the controller is in the slowdown regime.
    pub delayed_write_rate: u64,
    /// Pipeline WAL append and memtable insert. In real-concurrency mode
    /// a commit group becomes reader-visible before its WAL sync returns
    /// when this is on; off means durability strictly precedes visibility.
    pub enable_pipelined_write: bool,
    /// Allow concurrent memtable inserts. In real-concurrency mode,
    /// disabling this caps group commit at one batch per group.
    pub allow_concurrent_memtable_write: bool,
    /// Bypass the OS page cache for user reads.
    pub use_direct_reads: bool,
    /// Bypass the OS page cache for flush/compaction I/O.
    pub use_direct_io_for_flush_and_compaction: bool,
    /// Readahead chunk for compaction input reads.
    pub compaction_readahead_size: u64,
    /// Max open table files (-1 = unlimited).
    pub max_open_files: i64,
    /// Total WAL size that forces a memtable switch (0 = derived).
    pub max_total_wal_size: u64,
    /// Global memtable budget across the DB (0 = unlimited).
    pub db_write_buffer_size: u64,
    /// Dump allocator stats to the info log.
    pub dump_malloc_stats: bool,
    /// Seconds between stats dumps to the info log.
    pub stats_dump_period_sec: i64,
    /// Background I/O rate limit in bytes/sec (0 = unlimited).
    pub rate_limiter_bytes_per_sec: u64,
    /// Verify checksums aggressively on every read.
    pub paranoid_checks: bool,
    /// fsync instead of fdatasync for durability points.
    pub use_fsync: bool,
    /// Disable the write-ahead log entirely (protected by safeguards).
    pub disable_wal: bool,
    /// Flush the WAL only on explicit request.
    pub manual_wal_flush: bool,
    /// Number of shards (log2) in the table cache.
    pub table_cache_numshardbits: i64,
    /// Avoid flushing memtables during shutdown (protected).
    pub avoid_flush_during_shutdown: bool,
    /// Avoid flushing during recovery.
    pub avoid_flush_during_recovery: bool,
    /// Recycle WAL files instead of deleting.
    pub recycle_log_file_num: i64,
    /// Buffer size for writable files.
    pub writable_file_max_buffer_size: u64,
    /// Threads used to open files on DB open.
    pub max_file_opening_threads: i64,
    /// Adaptive yield before blocking in the write path.
    pub enable_write_thread_adaptive_yield: bool,
    /// WAL compression (accepted, modeled as neutral).
    pub wal_compression: CompressionType,

    // ---- CFOptions ----
    /// Memtable size that triggers a flush.
    pub write_buffer_size: u64,
    /// Max memtables (active + immutable) before stalling.
    pub max_write_buffer_number: i64,
    /// Immutable memtables merged into one L0 file per flush.
    pub min_write_buffer_number_to_merge: i64,
    /// L0 file count that triggers compaction.
    pub level0_file_num_compaction_trigger: i64,
    /// L0 file count that slows writes.
    pub level0_slowdown_writes_trigger: i64,
    /// L0 file count that stops writes.
    pub level0_stop_writes_trigger: i64,
    /// Number of LSM levels.
    pub num_levels: i64,
    /// Target SST size at L1.
    pub target_file_size_base: u64,
    /// Per-level multiplier for target SST size.
    pub target_file_size_multiplier: i64,
    /// Target total bytes at L1.
    pub max_bytes_for_level_base: u64,
    /// Per-level growth factor for level targets.
    pub max_bytes_for_level_multiplier: f64,
    /// Size levels dynamically from the last level up.
    pub level_compaction_dynamic_level_bytes: bool,
    /// Compaction strategy.
    pub compaction_style: CompactionStyle,
    /// Block compression for all levels.
    pub compression: CompressionType,
    /// Override compression for the bottommost level.
    pub bottommost_compression: CompressionType,
    /// Disable automatic compactions (manual only).
    pub disable_auto_compactions: bool,
    /// Memtable bloom filter size as a fraction of `write_buffer_size`.
    pub memtable_prefix_bloom_size_ratio: f64,
    /// Skip filters on the last level (saves memory for hit-heavy loads).
    pub optimize_filters_for_hits: bool,
    /// Pending-compaction bytes that slow writes.
    pub soft_pending_compaction_bytes_limit: u64,
    /// Pending-compaction bytes that stop writes.
    pub hard_pending_compaction_bytes_limit: u64,
    /// Max bytes a single compaction may span.
    pub max_compaction_bytes: u64,
    /// Report detailed background I/O stats.
    pub report_bg_io_stats: bool,
    /// Universal compaction: max size amplification percent.
    pub universal_max_size_amplification_percent: i64,
    /// Universal compaction: size-ratio tolerance percent.
    pub universal_size_ratio: i64,
    /// Universal compaction: min files merged at once.
    pub universal_min_merge_width: i64,
    /// Universal compaction: max files merged at once.
    pub universal_max_merge_width: i64,
    /// FIFO compaction: total size budget before dropping old files.
    pub fifo_max_table_files_size: u64,
    /// TTL for periodic compaction (accepted, modeled as neutral).
    pub periodic_compaction_seconds: i64,

    // ---- BlockBasedTableOptions ----
    /// Uncompressed data block size.
    pub block_size: u64,
    /// Keys between restart points inside a block.
    pub block_restart_interval: i64,
    /// Bloom filter bits per key (0 = no filter).
    pub bloom_filter_bits_per_key: f64,
    /// Include whole keys in the filter.
    pub whole_key_filtering: bool,
    /// Charge index/filter blocks to the block cache.
    pub cache_index_and_filter_blocks: bool,
    /// Keep L0 index/filter blocks pinned in cache.
    pub pin_l0_filter_and_index_blocks_in_cache: bool,
    /// Block cache capacity in bytes.
    pub block_cache_size: u64,
    /// Disable the block cache entirely.
    pub no_block_cache: bool,

    // ---- Sharding ----
    /// Number of key-range shards (1 = plain single-tree DB).
    pub num_shards: i64,
    /// Per-shard size above which extra compaction pressure is charged
    /// to the shared write controller (0 = disabled).
    pub shard_bytes_soft_limit: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            max_background_jobs: 2,
            max_background_compactions: -1,
            max_background_flushes: -1,
            max_subcompactions: 1,
            bytes_per_sync: 0,
            wal_bytes_per_sync: 0,
            strict_bytes_per_sync: false,
            delayed_write_rate: 16 << 20,
            enable_pipelined_write: true,
            allow_concurrent_memtable_write: true,
            use_direct_reads: false,
            use_direct_io_for_flush_and_compaction: false,
            compaction_readahead_size: 2 << 20,
            max_open_files: -1,
            max_total_wal_size: 0,
            db_write_buffer_size: 0,
            dump_malloc_stats: true,
            stats_dump_period_sec: 600,
            rate_limiter_bytes_per_sec: 0,
            paranoid_checks: true,
            use_fsync: false,
            disable_wal: false,
            manual_wal_flush: false,
            table_cache_numshardbits: 6,
            avoid_flush_during_shutdown: false,
            avoid_flush_during_recovery: false,
            recycle_log_file_num: 0,
            writable_file_max_buffer_size: 1 << 20,
            max_file_opening_threads: 16,
            enable_write_thread_adaptive_yield: true,
            wal_compression: CompressionType::None,

            write_buffer_size: 64 << 20,
            max_write_buffer_number: 2,
            min_write_buffer_number_to_merge: 1,
            level0_file_num_compaction_trigger: 4,
            level0_slowdown_writes_trigger: 20,
            level0_stop_writes_trigger: 36,
            num_levels: 7,
            target_file_size_base: 64 << 20,
            target_file_size_multiplier: 1,
            max_bytes_for_level_base: 256 << 20,
            max_bytes_for_level_multiplier: 10.0,
            level_compaction_dynamic_level_bytes: false,
            compaction_style: CompactionStyle::Level,
            compression: CompressionType::Snappy,
            bottommost_compression: CompressionType::None,
            disable_auto_compactions: false,
            memtable_prefix_bloom_size_ratio: 0.0,
            optimize_filters_for_hits: false,
            soft_pending_compaction_bytes_limit: 64 << 30,
            hard_pending_compaction_bytes_limit: 256 << 30,
            max_compaction_bytes: (64 << 20) * 25,
            report_bg_io_stats: false,
            universal_max_size_amplification_percent: 200,
            universal_size_ratio: 1,
            universal_min_merge_width: 2,
            universal_max_merge_width: 64,
            fifo_max_table_files_size: 1 << 30,
            periodic_compaction_seconds: 0,

            block_size: 4096,
            block_restart_interval: 16,
            bloom_filter_bits_per_key: 0.0,
            whole_key_filtering: true,
            cache_index_and_filter_blocks: false,
            pin_l0_filter_and_index_blocks_in_cache: false,
            block_cache_size: 8 << 20,
            no_block_cache: false,

            num_shards: 1,
            shard_bytes_soft_limit: 0,
        }
    }
}

impl Options {
    /// Effective number of concurrent compactions.
    pub fn effective_max_compactions(&self) -> usize {
        if self.max_background_compactions > 0 {
            self.max_background_compactions as usize
        } else {
            ((self.max_background_jobs.max(1) as usize) * 3).div_ceil(4).max(1)
        }
    }

    /// Effective number of concurrent flushes.
    pub fn effective_max_flushes(&self) -> usize {
        if self.max_background_flushes > 0 {
            self.max_background_flushes as usize
        } else {
            ((self.max_background_jobs.max(1) as usize) / 4).max(1)
        }
    }

    /// Effective WAL budget before forcing a memtable switch.
    pub fn effective_max_total_wal_size(&self) -> u64 {
        if self.max_total_wal_size > 0 {
            self.max_total_wal_size
        } else {
            self.write_buffer_size
                .saturating_mul(self.max_write_buffer_number.max(1) as u64)
                .saturating_mul(4)
        }
    }

    /// Compression used for the bottommost level.
    pub fn effective_bottommost_compression(&self) -> CompressionType {
        if self.bottommost_compression == CompressionType::None
            && self.compression != CompressionType::None
        {
            // RocksDB semantics: kDisableCompressionOption falls back to
            // `compression`; we treat explicit `none` on the bottom level
            // as "follow the general setting" unless compression is off.
            self.compression
        } else {
            self.bottommost_compression
        }
    }

    /// Validates cross-field invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::InvalidArgument`](crate::ErrorKind) when a combination of options is
    /// inconsistent (e.g. slowdown trigger above stop trigger).
    pub fn validate(&self) -> Result<()> {
        if self.write_buffer_size == 0 {
            return Err(Error::invalid_argument("write_buffer_size must be positive"));
        }
        if self.max_write_buffer_number < 1 {
            return Err(Error::invalid_argument(
                "max_write_buffer_number must be at least 1",
            ));
        }
        if self.min_write_buffer_number_to_merge > self.max_write_buffer_number {
            return Err(Error::invalid_argument(
                "min_write_buffer_number_to_merge cannot exceed max_write_buffer_number",
            ));
        }
        if self.level0_slowdown_writes_trigger > self.level0_stop_writes_trigger {
            return Err(Error::invalid_argument(
                "level0_slowdown_writes_trigger cannot exceed level0_stop_writes_trigger",
            ));
        }
        if self.level0_file_num_compaction_trigger < 1 {
            return Err(Error::invalid_argument(
                "level0_file_num_compaction_trigger must be at least 1",
            ));
        }
        if self.num_levels < 2 || self.num_levels > 12 {
            return Err(Error::invalid_argument("num_levels must be between 2 and 12"));
        }
        if self.max_bytes_for_level_multiplier < 1.0 {
            return Err(Error::invalid_argument(
                "max_bytes_for_level_multiplier must be at least 1",
            ));
        }
        if self.block_size < 256 || self.block_size > (64 << 20) {
            return Err(Error::invalid_argument(
                "block_size must be between 256B and 64MB",
            ));
        }
        if self.target_file_size_base == 0 {
            return Err(Error::invalid_argument("target_file_size_base must be positive"));
        }
        // Universal-compaction knobs are validated here (not silently
        // clamped in the picker): option files and set_by_name go through
        // the registry ranges, but direct struct construction must be
        // rejected too so the picker can trust its inputs.
        if self.universal_size_ratio < 0 || self.universal_size_ratio > 100 {
            return Err(Error::invalid_argument(
                "universal_size_ratio must be between 0 and 100",
            ));
        }
        if self.universal_min_merge_width < 2 {
            return Err(Error::invalid_argument(
                "universal_min_merge_width must be at least 2",
            ));
        }
        if self.universal_max_merge_width < self.universal_min_merge_width {
            return Err(Error::invalid_argument(
                "universal_max_merge_width cannot be below universal_min_merge_width",
            ));
        }
        if self.universal_max_size_amplification_percent < 1 {
            return Err(Error::invalid_argument(
                "universal_max_size_amplification_percent must be at least 1",
            ));
        }
        if self.num_shards < 1 || self.num_shards > 64 {
            return Err(Error::invalid_argument("num_shards must be between 1 and 64"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        Options::default().validate().unwrap();
    }

    #[test]
    fn derived_background_limits() {
        let mut o = Options::default();
        assert_eq!(o.effective_max_compactions(), 2);
        assert_eq!(o.effective_max_flushes(), 1);
        o.max_background_jobs = 8;
        assert_eq!(o.effective_max_compactions(), 6);
        assert_eq!(o.effective_max_flushes(), 2);
        o.max_background_compactions = 3;
        o.max_background_flushes = 2;
        assert_eq!(o.effective_max_compactions(), 3);
        assert_eq!(o.effective_max_flushes(), 2);
    }

    #[test]
    fn validate_rejects_inverted_triggers() {
        let o = Options {
            level0_slowdown_writes_trigger: 50,
            level0_stop_writes_trigger: 40,
            ..Options::default()
        };
        assert!(o.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_write_buffer() {
        let o = Options {
            write_buffer_size: 0,
            ..Options::default()
        };
        assert!(o.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_universal_options() {
        // Regression: these used to be silently clamped inside
        // pick_universal (.max(0) / .max(2)) instead of rejected here.
        let bad = [
            Options { universal_size_ratio: -1, ..Options::default() },
            Options { universal_size_ratio: 101, ..Options::default() },
            Options { universal_min_merge_width: 0, ..Options::default() },
            Options { universal_min_merge_width: 1, ..Options::default() },
            Options {
                universal_min_merge_width: 8,
                universal_max_merge_width: 4,
                ..Options::default()
            },
            Options {
                universal_max_size_amplification_percent: 0,
                ..Options::default()
            },
        ];
        for o in bad {
            assert!(o.validate().is_err(), "expected rejection: {o:?}");
        }
        // Boundary-valid values pass.
        let ok = Options {
            universal_size_ratio: 0,
            universal_min_merge_width: 2,
            universal_max_merge_width: 2,
            universal_max_size_amplification_percent: 1,
            ..Options::default()
        };
        ok.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_shard_counts() {
        assert!(Options { num_shards: 0, ..Options::default() }.validate().is_err());
        assert!(Options { num_shards: 65, ..Options::default() }.validate().is_err());
        Options { num_shards: 64, ..Options::default() }.validate().unwrap();
    }

    #[test]
    fn compaction_style_parsing() {
        assert_eq!(CompactionStyle::parse("kCompactionStyleLevel"), Some(CompactionStyle::Level));
        assert_eq!(CompactionStyle::parse("universal"), Some(CompactionStyle::Universal));
        assert_eq!(CompactionStyle::parse("FIFO"), Some(CompactionStyle::Fifo));
        assert_eq!(CompactionStyle::parse("bogus"), None);
    }

    #[test]
    fn compression_parsing() {
        assert_eq!(CompressionType::parse("kSnappyCompression"), Some(CompressionType::Snappy));
        assert_eq!(CompressionType::parse("none"), Some(CompressionType::None));
        assert_eq!(CompressionType::parse("ZSTD"), Some(CompressionType::Zstd));
        assert_eq!(CompressionType::parse("gzip"), None);
    }

    #[test]
    fn bottommost_follows_general_compression() {
        let mut o = Options {
            compression: CompressionType::Zstd,
            ..Options::default()
        };
        assert_eq!(o.effective_bottommost_compression(), CompressionType::Zstd);
        o.compression = CompressionType::None;
        assert_eq!(o.effective_bottommost_compression(), CompressionType::None);
    }

    #[test]
    fn wal_budget_derives_from_buffers() {
        let o = Options::default();
        assert_eq!(o.effective_max_total_wal_size(), (64 << 20) * 2 * 4);
    }
}
