//! Event listeners: push-style notification of engine transitions.
//!
//! Harnesses (and the tuning loop's Active Flagger) previously had to
//! poll `Db::stats()` to notice flushes, compactions, or stall-regime
//! changes. An [`EventListener`] registered at open time is instead
//! invoked synchronously when those transitions happen, mirroring
//! RocksDB's `EventListener` (`OnFlushCompleted`,
//! `OnCompactionCompleted`, `OnStallConditionsChanged`).
//!
//! Callbacks may run on foreground or background threads and may hold
//! internal engine locks: implementations must be fast, must not block,
//! and must not call back into the database.

use crate::types::FileNumber;
use crate::write_controller::WriteRegime;

/// Details of a completed flush (one new L0 table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushJobInfo {
    /// File number of the new table.
    pub file_number: FileNumber,
    /// On-disk size of the new table in bytes.
    pub file_size: u64,
    /// Entries in the new table.
    pub num_entries: u64,
    /// Memtables merged into the table.
    pub memtables_merged: usize,
}

/// Details of a completed compaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionJobInfo {
    /// Level the outputs were installed into.
    pub output_level: usize,
    /// Number of input files consumed.
    pub input_files: usize,
    /// Number of output files produced.
    pub output_files: usize,
    /// Bytes read from input files.
    pub bytes_read: u64,
    /// Bytes written to output files.
    pub bytes_written: u64,
    /// Keys dropped (shadowed versions and bottommost tombstones).
    pub keys_dropped: u64,
}

/// A write-stall regime transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallConditionsChanged {
    /// Regime before the transition.
    pub previous: WriteRegime,
    /// Regime after the transition.
    pub current: WriteRegime,
}

/// Details of a committed live options change ([`crate::Db::set_options`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptionsChangedInfo {
    /// `(name, from, to)` canonical triples, one per option whose value
    /// actually changed (no-op pairs in the batch are omitted).
    pub changes: Vec<(String, String, String)>,
}

/// Callbacks fired by the engine on background-work and stall
/// transitions. All methods have empty default bodies, so implementors
/// override only what they observe.
pub trait EventListener: Send + Sync {
    /// A flush finished and its table was installed into L0.
    fn on_flush_completed(&self, _info: &FlushJobInfo) {}

    /// A compaction finished and its outputs were installed.
    fn on_compaction_completed(&self, _info: &CompactionJobInfo) {}

    /// The write controller moved between Normal / Delayed / Stopped.
    ///
    /// Fires exactly once per observed transition (deduplicated on the
    /// regime value), including the transition back to
    /// [`WriteRegime::Normal`] when pressure clears.
    fn on_stall_conditions_changed(&self, _info: &StallConditionsChanged) {}

    /// A `set_options` batch committed: the listed options now apply to
    /// all subsequent operations. Fires once per committed batch, after
    /// the new values are visible, while the state lock is still held.
    fn on_options_changed(&self, _info: &OptionsChangedInfo) {}
}
