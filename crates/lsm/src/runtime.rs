//! Real-concurrency runtime: group-commit plumbing and the background
//! job pool's shared signalling state.
//!
//! In simulation mode the engine is single-threaded and background work
//! runs eagerly on the foreground thread with its effects installed at
//! virtual instants. When a [`Db`](crate::Db) is opened against a wall
//! clock (see `Db::builder` with a non-sim `HardwareEnv`), it instead gets a
//! `Runtime`: writers coalesce through a leader-based commit queue, and a
//! pool of OS worker threads executes flushes and compactions off the
//! foreground path.
//!
//! The types here are deliberately free of engine logic: the commit
//! protocol and the job claim/install steps live in `db.rs` where the
//! engine state is. This module owns the queueing, signalling, and
//! lifecycle (worker spawn/join) mechanics.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::batch::WriteBatch;
use crate::error::Error;
use crate::types::{InternalKey, SequenceNumber};

/// A write batch pre-encoded by the submitting thread.
///
/// Everything sequence-independent is done before joining the commit
/// queue: the WAL record is serialized with a zero placeholder in its
/// first-sequence header, and each memtable entry's internal key is built
/// with a zero sequence in its tag. The group leader only patches
/// sequence numbers in place and moves the entries in, keeping the
/// critical section short.
pub(crate) struct PreparedWrite {
    /// WAL record (batch encoding) with `first_seq = 0` placeholder.
    pub record: Vec<u8>,
    /// Memtable entries as `(encoded internal key, value)`, tags holding
    /// the value type but a zero sequence.
    pub entries: Vec<(Vec<u8>, Vec<u8>)>,
    /// Number of operations in the batch.
    pub count: u64,
    /// Total user key + value bytes (ticker accounting).
    pub payload_bytes: u64,
    /// Whether this write requested a durable WAL sync.
    pub sync: bool,
}

impl PreparedWrite {
    /// Encodes `batch` for commit. CRC framing happens later inside the
    /// WAL writer, so patching the sequence header afterwards is safe.
    pub fn prepare(batch: &WriteBatch, sync: bool) -> PreparedWrite {
        let record = batch.encode(0);
        let mut entries = Vec::with_capacity(batch.len());
        let mut payload_bytes = 0u64;
        for (ty, key, value) in batch.iter() {
            payload_bytes += (key.len() + value.len()) as u64;
            entries.push((InternalKey::new(key, 0, ty).encoded().to_vec(), value.to_vec()));
        }
        PreparedWrite {
            record,
            entries,
            count: batch.len() as u64,
            payload_bytes,
            sync,
        }
    }

    /// Stamps the assigned first sequence into the WAL record header and
    /// each entry's tag (`tag |= seq << 8`; the type byte is already set).
    pub fn patch_seq(&mut self, first_seq: SequenceNumber) {
        self.record[0..8].copy_from_slice(&first_seq.to_le_bytes());
        for (i, (key, _)) in self.entries.iter_mut().enumerate() {
            let seq = first_seq + i as u64;
            let tag_at = key.len() - 8;
            let tag = u64::from_le_bytes(key[tag_at..].try_into().expect("8-byte tag"));
            key[tag_at..].copy_from_slice(&((tag | (seq << 8)).to_le_bytes()));
        }
    }
}

/// FIFO queue of writes awaiting commit, drained in groups by a leader.
///
/// Ids are assigned contiguously at enqueue time and the leader always
/// drains from the front, so `completed` is a watermark: every id below
/// it has either committed or failed (failed ids park their error in
/// `failures` until the owner collects it).
pub(crate) struct CommitQueue {
    /// Writes not yet taken by a leader, in id order.
    pub pending: VecDeque<(u64, PreparedWrite)>,
    /// Id the next enqueued write receives.
    pub next_id: u64,
    /// All ids `< completed` are finished.
    pub completed: u64,
    /// Whether some thread is currently committing a group.
    pub leader_active: bool,
    /// Errors for completed-but-failed ids, awaiting pickup.
    pub failures: Vec<(u64, Error)>,
}

impl CommitQueue {
    fn new() -> Self {
        CommitQueue {
            pending: VecDeque::new(),
            next_id: 0,
            completed: 0,
            leader_active: false,
            failures: Vec::new(),
        }
    }

    /// Removes and returns the parked error for `id`, if it failed.
    pub fn take_failure(&mut self, id: u64) -> Option<Error> {
        let at = self.failures.iter().position(|(fid, _)| *fid == id)?;
        Some(self.failures.swap_remove(at).1)
    }
}

/// Signalling shared between the worker pool and the rest of the engine.
///
/// Workers hold only this (plus a `Weak` handle to the engine), so the
/// pool never keeps the database alive on its own.
pub(crate) struct BgShared {
    /// Monotonic work-arrival counter; bumped by [`kick`](Self::kick).
    work: Mutex<u64>,
    cv: Condvar,
    shutdown: AtomicBool,
}

impl BgShared {
    fn new() -> Self {
        BgShared {
            work: Mutex::new(0),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Announces that background work may be available.
    pub fn kick(&self) {
        *self.work.lock() += 1;
        self.cv.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Blocks until the work counter moves past `last_seen`, shutdown is
    /// requested, or `timeout` elapses. Returns the current counter.
    pub fn wait_for_work(&self, last_seen: u64, timeout: Duration) -> u64 {
        let mut work = self.work.lock();
        if *work == last_seen && !self.is_shutdown() {
            self.cv.wait_for(&mut work, timeout);
        }
        *work
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        // Touch the mutex so a worker between its shutdown check and its
        // wait cannot miss the wake.
        let _work = self.work.lock();
        self.cv.notify_all();
    }
}

/// A counting permit budget for background jobs, shared by the shards of
/// a sharded database so N independent trees respect one global
/// `max_background_jobs` limit instead of N times it.
///
/// Fairness comes from permit granularity: a worker takes one permit per
/// job and releases it when the job installs, so no shard can hold the
/// whole budget longer than its currently running jobs.
#[derive(Debug)]
pub(crate) struct JobBudget {
    available: AtomicU64,
}

impl JobBudget {
    /// Creates a budget with `permits` concurrent job slots.
    pub fn new(permits: usize) -> Self {
        JobBudget {
            available: AtomicU64::new(permits as u64),
        }
    }

    /// Takes one permit; `false` when the budget is exhausted.
    pub fn try_acquire(&self) -> bool {
        self.available
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
            .is_ok()
    }

    /// Returns one permit.
    pub fn release(&self) {
        self.available.fetch_add(1, Ordering::AcqRel);
    }
}

/// Per-database concurrency state for wall-clock (real) execution mode.
pub(crate) struct Runtime {
    /// Group-commit queue; writers park here and a leader drains it.
    pub commit: Mutex<CommitQueue>,
    /// Wakes queued writers when a group completes.
    pub commit_cv: Condvar,
    /// Wakes foreground threads waiting on background progress. Paired
    /// with the engine's state mutex; all waits use timeouts, so
    /// notifying without that mutex held is safe.
    pub done_cv: Condvar,
    /// Worker-pool signalling.
    pub bg: Arc<BgShared>,
    /// Largest sequence number visible to readers. Published at the end
    /// of each commit, read lock-free by `get`/`scan`.
    visible_seq: AtomicU64,
    /// Sticky fatal error (WAL append or background job failure). Once
    /// set, writes and maintenance calls fail with a clone of it rather
    /// than risk acknowledging writes that recovery would drop.
    fatal: Mutex<Option<Error>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Runtime {
    /// Creates the runtime with reader visibility starting at `last_seq`.
    pub fn new(last_seq: SequenceNumber) -> Self {
        Runtime {
            commit: Mutex::new(CommitQueue::new()),
            commit_cv: Condvar::new(),
            done_cv: Condvar::new(),
            bg: Arc::new(BgShared::new()),
            visible_seq: AtomicU64::new(last_seq),
            fatal: Mutex::new(None),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// Largest sequence visible to readers.
    pub fn visible_seq(&self) -> SequenceNumber {
        self.visible_seq.load(Ordering::Acquire)
    }

    /// Publishes a new reader-visible sequence watermark.
    pub fn publish_visible(&self, seq: SequenceNumber) {
        self.visible_seq.store(seq, Ordering::Release);
    }

    /// Returns the sticky fatal error, if any.
    pub fn fatal_error(&self) -> Option<Error> {
        self.fatal.lock().clone()
    }

    /// Records a fatal error (first one wins).
    pub fn set_fatal(&self, err: Error) {
        let mut slot = self.fatal.lock();
        if slot.is_none() {
            *slot = Some(err);
        }
    }

    /// Registers a spawned worker handle for join-at-drop.
    pub fn register_worker(&self, handle: JoinHandle<()>) {
        self.workers.lock().push(handle);
    }

    /// Signals shutdown and joins all workers (skipping the current
    /// thread: the last `Arc` holding the database may be dropped *by* a
    /// worker, which must not join itself).
    pub fn shutdown_and_join(&self) {
        self.bg.request_shutdown();
        let handles = std::mem::take(&mut *self.workers.lock());
        let me = std::thread::current().id();
        for handle in handles {
            if handle.thread().id() != me {
                let _ = handle.join();
            }
        }
    }
}
