//! Write batches: the unit of atomic writes and WAL records.
//!
//! Encoding: `fixed64 first_seq | fixed32 count |`
//! `(u8 type | varint32 klen | key | varint32 vlen | value)*`.

use crate::error::{Error, Result};
use crate::types::{SequenceNumber, ValueType};
use crate::util::{get_fixed32, get_fixed64, get_varint32, put_fixed32, put_fixed64, put_varint32};

/// An ordered set of writes applied atomically.
///
/// # Examples
///
/// ```
/// use lsm_kvs::WriteBatch;
///
/// let mut batch = WriteBatch::new();
/// batch.put(b"k1", b"v1");
/// batch.delete(b"k2");
/// assert_eq!(batch.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteBatch {
    entries: Vec<(ValueType, Vec<u8>, Vec<u8>)>,
    approximate_bytes: usize,
}

impl WriteBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty batch pre-sized for `ops` operations, avoiding
    /// reallocation of the entry list on the hot single-op path.
    pub fn with_capacity(ops: usize) -> Self {
        WriteBatch {
            entries: Vec::with_capacity(ops),
            approximate_bytes: 0,
        }
    }

    /// Adds a key/value insertion.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> &mut Self {
        self.approximate_bytes += key.len() + value.len() + 13;
        self.entries
            .push((ValueType::Value, key.to_vec(), value.to_vec()));
        self
    }

    /// Adds a deletion.
    pub fn delete(&mut self, key: &[u8]) -> &mut Self {
        self.approximate_bytes += key.len() + 13;
        self.entries.push((ValueType::Deletion, key.to_vec(), Vec::new()));
        self
    }

    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate encoded size in bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.approximate_bytes + 12
    }

    /// Iterates `(type, key, value)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (ValueType, &[u8], &[u8])> {
        self.entries
            .iter()
            .map(|(t, k, v)| (*t, k.as_slice(), v.as_slice()))
    }

    /// Serializes the batch for the WAL with its assigned first sequence.
    pub fn encode(&self, first_seq: SequenceNumber) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.approximate_bytes() + 16);
        put_fixed64(&mut out, first_seq);
        put_fixed32(&mut out, self.entries.len() as u32);
        for (ty, key, value) in &self.entries {
            out.push(*ty as u8);
            put_varint32(&mut out, key.len() as u32);
            out.extend_from_slice(key);
            put_varint32(&mut out, value.len() as u32);
            out.extend_from_slice(value);
        }
        out
    }

    /// Decodes a WAL record back into a batch plus its first sequence.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Corruption`](crate::ErrorKind) on any structural violation.
    pub fn decode(data: &[u8]) -> Result<(SequenceNumber, WriteBatch)> {
        let first_seq =
            get_fixed64(data, 0).ok_or_else(|| Error::corruption("batch: short header"))?;
        let count =
            get_fixed32(data, 8).ok_or_else(|| Error::corruption("batch: short header"))? as usize;
        let mut pos = 12;
        let mut batch = WriteBatch::new();
        for _ in 0..count {
            let ty = *data
                .get(pos)
                .ok_or_else(|| Error::corruption("batch: missing type byte"))?;
            let ty = ValueType::from_u8(ty)
                .ok_or_else(|| Error::corruption(format!("batch: bad value type {ty}")))?;
            pos += 1;
            let (klen, n) = get_varint32(&data[pos..])
                .ok_or_else(|| Error::corruption("batch: bad key length"))?;
            pos += n;
            let key = data
                .get(pos..pos + klen as usize)
                .ok_or_else(|| Error::corruption("batch: key past end"))?;
            pos += klen as usize;
            let (vlen, n) = get_varint32(&data[pos..])
                .ok_or_else(|| Error::corruption("batch: bad value length"))?;
            pos += n;
            let value = data
                .get(pos..pos + vlen as usize)
                .ok_or_else(|| Error::corruption("batch: value past end"))?;
            pos += vlen as usize;
            match ty {
                ValueType::Value => batch.put(key, value),
                ValueType::Deletion => batch.delete(key),
            };
        }
        if pos != data.len() {
            return Err(Error::corruption("batch: trailing bytes"));
        }
        Ok((first_seq, batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut b = WriteBatch::new();
        b.put(b"alpha", b"1");
        b.delete(b"beta");
        b.put(b"", b"empty-key-value");
        let encoded = b.encode(42);
        let (seq, decoded) = WriteBatch::decode(&encoded).unwrap();
        assert_eq!(seq, 42);
        assert_eq!(decoded, b);
    }

    #[test]
    fn empty_batch_roundtrips() {
        let b = WriteBatch::new();
        let (seq, decoded) = WriteBatch::decode(&b.encode(7)).unwrap();
        assert_eq!(seq, 7);
        assert!(decoded.is_empty());
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut b = WriteBatch::new();
        b.put(b"key", b"value");
        let encoded = b.encode(1);
        for cut in [0, 5, 11, encoded.len() - 1] {
            assert!(WriteBatch::decode(&encoded[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut b = WriteBatch::new();
        b.put(b"k", b"v");
        let mut encoded = b.encode(1);
        encoded.push(0);
        assert!(WriteBatch::decode(&encoded).is_err());
    }

    #[test]
    fn iter_preserves_order() {
        let mut b = WriteBatch::new();
        b.put(b"z", b"1");
        b.delete(b"a");
        let ops: Vec<_> = b.iter().collect();
        assert_eq!(ops[0].0, ValueType::Value);
        assert_eq!(ops[0].1, b"z");
        assert_eq!(ops[1].0, ValueType::Deletion);
        assert_eq!(ops[1].1, b"a");
    }

    #[test]
    fn approximate_bytes_scales_with_content() {
        let mut small = WriteBatch::new();
        small.put(b"k", b"v");
        let mut big = WriteBatch::new();
        big.put(b"k", &[0u8; 1000]);
        assert!(big.approximate_bytes() > small.approximate_bytes() + 900);
    }
}
