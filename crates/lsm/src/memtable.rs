//! In-memory write buffer (memtable).
//!
//! Entries are kept in internal-key order (user key ascending, sequence
//! descending) so lookups find the newest visible version first and
//! flushes emit sorted runs directly.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::ops::Bound;

use crate::sstable::bloom::BloomFilter;
use crate::types::{internal_key_cmp, InternalKey, SequenceNumber, ValueType};

/// A byte key ordered by the internal-key comparator.
#[derive(Debug, Clone, PartialEq, Eq)]
struct OrderedKey(Vec<u8>);

impl PartialOrd for OrderedKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedKey {
    fn cmp(&self, other: &Self) -> Ordering {
        internal_key_cmp(&self.0, &other.0)
    }
}

/// Result of a memtable lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemTableGet {
    /// The key has a live value.
    Found(Vec<u8>),
    /// The key is deleted at this snapshot.
    Deleted,
    /// The memtable holds no entry for the key.
    NotFound,
}

/// An ordered in-memory buffer of recent writes.
///
/// Memory accounting is approximate (key + value + fixed per-entry
/// overhead), mirroring how RocksDB charges its arena.
#[derive(Debug)]
pub struct MemTable {
    entries: BTreeMap<OrderedKey, Vec<u8>>,
    approximate_bytes: usize,
    /// Optional whole-key bloom filter over user keys, enabled by
    /// `memtable_prefix_bloom_size_ratio > 0`.
    bloom: Option<MemTableBloom>,
    first_seq: Option<SequenceNumber>,
    last_seq: SequenceNumber,
}

#[derive(Debug)]
struct MemTableBloom {
    bits: Vec<u64>,
    num_probes: u32,
}

impl MemTableBloom {
    fn new(size_bytes: usize) -> Self {
        let bits = (size_bytes.max(64) * 8).next_power_of_two();
        MemTableBloom {
            bits: vec![0u64; bits / 64],
            num_probes: 6,
        }
    }

    fn add(&mut self, key: &[u8]) {
        let (mut h, delta) = bloom_hashes(key);
        let nbits = self.bits.len() * 64;
        for _ in 0..self.num_probes {
            let bit = (h as usize) % nbits;
            self.bits[bit / 64] |= 1u64 << (bit % 64);
            h = h.wrapping_add(delta);
        }
    }

    fn may_contain(&self, key: &[u8]) -> bool {
        let (mut h, delta) = bloom_hashes(key);
        let nbits = self.bits.len() * 64;
        for _ in 0..self.num_probes {
            let bit = (h as usize) % nbits;
            if self.bits[bit / 64] & (1u64 << (bit % 64)) == 0 {
                return false;
            }
            h = h.wrapping_add(delta);
        }
        true
    }
}

fn bloom_hashes(key: &[u8]) -> (u64, u64) {
    let h = crate::util::fnv1a(key);
    (h, h.rotate_right(17) | 1)
}

const ENTRY_OVERHEAD: usize = 48;

impl MemTable {
    /// Creates an empty memtable. `bloom_bytes > 0` enables the in-memory
    /// bloom filter at roughly that size.
    pub fn new(bloom_bytes: usize) -> Self {
        MemTable {
            entries: BTreeMap::new(),
            approximate_bytes: 0,
            bloom: if bloom_bytes > 0 {
                Some(MemTableBloom::new(bloom_bytes))
            } else {
                None
            },
            first_seq: None,
            last_seq: 0,
        }
    }

    /// Inserts a value or tombstone.
    pub fn add(&mut self, seq: SequenceNumber, ty: ValueType, user_key: &[u8], value: &[u8]) {
        let ikey = InternalKey::new(user_key, seq, ty);
        self.approximate_bytes += ikey.encoded().len() + value.len() + ENTRY_OVERHEAD;
        if let Some(bloom) = &mut self.bloom {
            bloom.add(user_key);
        }
        self.entries
            .insert(OrderedKey(ikey.encoded().to_vec()), value.to_vec());
        if self.first_seq.is_none() {
            self.first_seq = Some(seq);
        }
        self.last_seq = self.last_seq.max(seq);
    }

    /// Inserts an entry whose internal key was encoded by the caller
    /// (`user_key ++ fixed64(seq << 8 | ty)`).
    ///
    /// Group commit pre-encodes entries off the critical path and the
    /// leader moves them in without re-building the key. The caller must
    /// pass a well-formed internal key (at least 8 bytes of tag).
    pub fn add_encoded(&mut self, encoded_key: Vec<u8>, value: Vec<u8>) {
        debug_assert!(encoded_key.len() >= 8, "internal key must carry a tag");
        let tag_at = encoded_key.len() - 8;
        let tag = u64::from_le_bytes(encoded_key[tag_at..].try_into().expect("8-byte tag"));
        let seq = tag >> 8;
        self.approximate_bytes += encoded_key.len() + value.len() + ENTRY_OVERHEAD;
        if let Some(bloom) = &mut self.bloom {
            bloom.add(&encoded_key[..tag_at]);
        }
        self.entries.insert(OrderedKey(encoded_key), value);
        if self.first_seq.is_none() {
            self.first_seq = Some(seq);
        }
        self.last_seq = self.last_seq.max(seq);
    }

    /// Looks up the newest entry for `user_key` visible at `snapshot`.
    pub fn get(&self, user_key: &[u8], snapshot: SequenceNumber) -> MemTableGet {
        if let Some(bloom) = &self.bloom {
            if !bloom.may_contain(user_key) {
                return MemTableGet::NotFound;
            }
        }
        let lookup = crate::types::lookup_key(user_key, snapshot);
        let start = Bound::Included(OrderedKey(lookup.encoded().to_vec()));
        // Entries are newest-first per user key; the first one at or
        // below the snapshot decides.
        match self.entries.range((start, Bound::Unbounded)).next() {
            Some((k, v)) => {
                let ik = InternalKey::decode(&k.0).expect("memtable keys are valid");
                if ik.user_key() != user_key {
                    return MemTableGet::NotFound;
                }
                match ik.value_type() {
                    ValueType::Value => MemTableGet::Found(v.clone()),
                    ValueType::Deletion => MemTableGet::Deleted,
                }
            }
            None => MemTableGet::NotFound,
        }
    }

    /// Approximate memory footprint in bytes.
    pub fn approximate_memory_usage(&self) -> usize {
        self.approximate_bytes
            + self
                .bloom
                .as_ref()
                .map_or(0, |b| b.bits.len() * 8)
    }

    /// Number of entries (including tombstones and shadowed versions).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the memtable holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Smallest sequence number inserted, if any.
    pub fn first_sequence(&self) -> Option<SequenceNumber> {
        self.first_seq
    }

    /// Largest sequence number inserted.
    pub fn last_sequence(&self) -> SequenceNumber {
        self.last_seq
    }

    /// Iterates entries in internal-key order as `(encoded_key, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &[u8])> {
        self.entries.iter().map(|(k, v)| (k.0.as_slice(), v.as_slice()))
    }

    /// Returns the first entry with internal key >= `target` (or strictly
    /// greater when `exclusive`), as owned `(encoded_key, value)`.
    ///
    /// This is the stepping primitive behind merged scans: cursors hold an
    /// `Arc<MemTable>` and re-query per step instead of borrowing.
    pub fn next_at_or_after(&self, target: &[u8], exclusive: bool) -> Option<(Vec<u8>, Vec<u8>)> {
        let bound = if exclusive {
            Bound::Excluded(OrderedKey(target.to_vec()))
        } else {
            Bound::Included(OrderedKey(target.to_vec()))
        };
        self.entries
            .range((bound, Bound::Unbounded))
            .next()
            .map(|(k, v)| (k.0.clone(), v.clone()))
    }

    /// Builds an optional SST-style bloom filter over the distinct user
    /// keys, reusing the table bloom implementation.
    pub fn build_table_bloom(&self, bits_per_key: f64) -> Option<BloomFilter> {
        if bits_per_key <= 0.0 {
            return None;
        }
        let mut keys: Vec<&[u8]> = Vec::with_capacity(self.entries.len());
        for (k, _) in self.iter() {
            // entries are sorted by user key; dedup consecutive
            let user = &k[..k.len() - 8];
            if keys.last().map(|l| *l != user).unwrap_or(true) {
                keys.push(user);
            }
        }
        Some(BloomFilter::build(keys.iter().copied(), bits_per_key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_then_get() {
        let mut mt = MemTable::new(0);
        mt.add(1, ValueType::Value, b"alpha", b"1");
        mt.add(2, ValueType::Value, b"beta", b"2");
        assert_eq!(mt.get(b"alpha", 100), MemTableGet::Found(b"1".to_vec()));
        assert_eq!(mt.get(b"gamma", 100), MemTableGet::NotFound);
    }

    #[test]
    fn newer_version_shadows_older() {
        let mut mt = MemTable::new(0);
        mt.add(1, ValueType::Value, b"k", b"old");
        mt.add(5, ValueType::Value, b"k", b"new");
        assert_eq!(mt.get(b"k", 100), MemTableGet::Found(b"new".to_vec()));
        // Snapshot between versions sees the old value.
        assert_eq!(mt.get(b"k", 3), MemTableGet::Found(b"old".to_vec()));
    }

    #[test]
    fn deletion_is_visible() {
        let mut mt = MemTable::new(0);
        mt.add(1, ValueType::Value, b"k", b"v");
        mt.add(2, ValueType::Deletion, b"k", b"");
        assert_eq!(mt.get(b"k", 100), MemTableGet::Deleted);
        assert_eq!(mt.get(b"k", 1), MemTableGet::Found(b"v".to_vec()));
    }

    #[test]
    fn snapshot_before_any_version_sees_nothing() {
        let mut mt = MemTable::new(0);
        mt.add(10, ValueType::Value, b"k", b"v");
        assert_eq!(mt.get(b"k", 5), MemTableGet::NotFound);
    }

    #[test]
    fn iteration_is_sorted_by_user_key() {
        let mut mt = MemTable::new(0);
        mt.add(1, ValueType::Value, b"c", b"");
        mt.add(2, ValueType::Value, b"a", b"");
        mt.add(3, ValueType::Value, b"b", b"");
        let keys: Vec<Vec<u8>> = mt
            .iter()
            .map(|(k, _)| InternalKey::decode(k).unwrap().user_key().to_vec())
            .collect();
        assert_eq!(keys, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn memory_usage_grows() {
        let mut mt = MemTable::new(0);
        let before = mt.approximate_memory_usage();
        mt.add(1, ValueType::Value, b"key", &[0u8; 100]);
        assert!(mt.approximate_memory_usage() >= before + 100);
    }

    #[test]
    fn bloom_filters_absent_keys() {
        let mut mt = MemTable::new(4096);
        for i in 0..100 {
            mt.add(i + 1, ValueType::Value, format!("key-{i}").as_bytes(), b"v");
        }
        assert_eq!(mt.get(b"key-42", 1000), MemTableGet::Found(b"v".to_vec()));
        // Bloom short-circuits most absent lookups; correctness-wise all
        // must return NotFound.
        for i in 200..300 {
            assert_eq!(mt.get(format!("key-{i}").as_bytes(), 1000), MemTableGet::NotFound);
        }
    }

    #[test]
    fn sequences_tracked() {
        let mut mt = MemTable::new(0);
        assert_eq!(mt.first_sequence(), None);
        mt.add(7, ValueType::Value, b"a", b"");
        mt.add(9, ValueType::Value, b"b", b"");
        assert_eq!(mt.first_sequence(), Some(7));
        assert_eq!(mt.last_sequence(), 9);
    }

    #[test]
    fn table_bloom_built_over_distinct_user_keys() {
        let mut mt = MemTable::new(0);
        mt.add(1, ValueType::Value, b"k", b"v1");
        mt.add(2, ValueType::Value, b"k", b"v2");
        mt.add(3, ValueType::Value, b"other", b"v");
        let bloom = mt.build_table_bloom(10.0).unwrap();
        assert!(bloom.may_contain(b"k"));
        assert!(bloom.may_contain(b"other"));
        assert!(mt.build_table_bloom(0.0).is_none());
    }
}
