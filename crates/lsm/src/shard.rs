//! Key-range sharded database: N independent LSM trees behind one facade.
//!
//! A [`ShardedDb`] partitions the key space into `num_shards` contiguous
//! ranges, each owned by a full [`Db`] (its own memtable, WAL, and SST
//! tree) living under a `s{i}_` name prefix on the shared VFS. Writes
//! route by key, so group commit stays shard-local and writers on
//! disjoint ranges never contend on a memtable or WAL mutex — the point
//! of sharding on multi-core hardware.
//!
//! What the shards *share*:
//!
//! - **Block cache**: one cache sized once by `block_cache_size`, handed
//!   to every shard, so memory budget does not multiply by shard count.
//! - **Background job budget**: a [`JobBudget`] with `max_background_jobs`
//!   permits gates every shard's job claims, so N trees respect one
//!   global limit. Fairness comes from permit granularity plus
//!   cross-shard kicks on release.
//! - **Write-controller debt**: each shard publishes its pending
//!   compaction bytes (plus any excess over `shard_bytes_soft_limit`)
//!   into a shared slot array; every shard's stall decision charges the
//!   others' debt, so one hot shard slows all writers rather than racing
//!   ahead of the shared budget.
//!
//! Cross-shard scans capture a per-shard snapshot sequence up front and
//! concatenate per-shard scans in shard order — range partitioning means
//! no k-way merge is needed. Batch writes are atomic per shard, not
//! across shards (documented on [`ShardedDb::write`]).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use hw_sim::HardwareEnv;
use parking_lot::Mutex;

use crate::batch::WriteBatch;
use crate::cache::BlockCache;
use crate::db::{Db, DbStats, ReadOptions, ScanResult, WriteOptions};
use crate::error::{Error, Result};
use crate::options::Options;
use crate::runtime::{BgShared, JobBudget};
use crate::write_controller::WriteRegime;
use crate::types::ValueType;
use crate::vfs::{MemVfs, NamespaceVfs, Vfs};

/// Marker file in the base directory recording the shard count, so a
/// database cannot be reopened with a different partitioning (keys would
/// silently land in the wrong tree).
const SHARDS_MARKER: &str = "SHARDS";

/// State shared by all shards of one [`ShardedDb`].
pub(crate) struct ShardShared {
    block_cache: Option<Arc<BlockCache>>,
    budget: JobBudget,
    /// Set when some shard failed to take a permit; the next release
    /// kicks the peers. Gating kicks on real starvation matters: an
    /// unconditional kick-on-release livelocks — every woken worker that
    /// finds no job would wake the other shards' workers in turn.
    starved: AtomicBool,
    /// Per-shard published compaction debt, indexed by shard.
    debt: Vec<AtomicU64>,
    /// Worker-pool handles of every shard, for cross-shard kicks when a
    /// budget permit frees up. `Weak` so the pool never outlives its Db.
    peers: Mutex<Vec<Weak<BgShared>>>,
}

/// One shard's view of the shared state.
#[derive(Clone)]
pub(crate) struct ShardCtx {
    shared: Arc<ShardShared>,
    index: usize,
}

impl ShardCtx {
    /// The cache all shards share (sized once by the facade).
    pub fn shared_block_cache(&self) -> Option<Arc<BlockCache>> {
        self.shared.block_cache.clone()
    }

    /// High-bit tag mixed into block-cache file ids so shards (whose
    /// file numbers overlap) never alias each other's blocks.
    pub fn cache_tag(&self) -> u64 {
        (self.index as u64 + 1) << 56
    }

    /// Publishes this shard's compaction debt and returns the sum of
    /// every *other* shard's published debt, saturating.
    pub fn publish_debt_and_sum_peers(&self, local: u64) -> u64 {
        self.shared.debt[self.index].store(local, Ordering::Relaxed);
        self.shared
            .debt
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != self.index)
            .map(|(_, d)| d.load(Ordering::Relaxed))
            .fold(0u64, u64::saturating_add)
    }

    /// Takes one permit from the global job budget. A failure records
    /// starvation so the next release wakes the backed-off shards.
    pub fn try_acquire_job(&self) -> bool {
        let got = self.shared.budget.try_acquire();
        if !got {
            self.shared.starved.store(true, Ordering::Release);
        }
        got
    }

    /// Returns a permit. Only a release that follows a *completed job*
    /// (`ran_job`) may kick starved peers: a permit freed by an empty
    /// claim was never scarce, and kicking on it lets idle workers wake
    /// each other in a storm — every woken worker finds no job, releases,
    /// and re-kicks, saturating a small machine with context switches.
    pub fn release_job(&self, ran_job: bool) {
        self.shared.budget.release();
        if !ran_job || !self.shared.starved.swap(false, Ordering::AcqRel) {
            return;
        }
        let peers = self.shared.peers.lock();
        let n = peers.len();
        for off in 1..n {
            if let Some(bg) = peers[(self.index + off) % n].upgrade() {
                bg.kick();
            }
        }
    }
}

/// Builder for [`ShardedDb`], mirroring [`Db::builder`].
pub struct ShardedDbBuilder {
    opts: Options,
    env: Option<HardwareEnv>,
    vfs: Option<Arc<dyn Vfs>>,
    split_points: Option<Vec<Vec<u8>>>,
}

impl ShardedDbBuilder {
    /// Runs against `env`'s clock and hardware model.
    #[must_use]
    pub fn env(mut self, env: &HardwareEnv) -> Self {
        self.env = Some(env.clone());
        self
    }

    /// Stores files on `vfs`; each shard lives under a `s{i}_` prefix.
    #[must_use]
    pub fn vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.vfs = Some(vfs);
        self
    }

    /// Supplies explicit range boundaries instead of the default uniform
    /// binary split. `points` must hold `num_shards - 1` strictly
    /// increasing, non-empty keys; shard `i` owns `[points[i-1],
    /// points[i])` with open ends. Callers whose keys are not uniform
    /// over the byte space (e.g. zero-padded decimal, where every key
    /// starts with `'0'`) need this, or all traffic lands in shard 0.
    /// The boundaries are persisted in the `SHARDS` marker and must
    /// match on reopen.
    #[must_use]
    pub fn split_points(mut self, points: Vec<Vec<u8>>) -> Self {
        self.split_points = Some(points);
        self
    }

    /// Opens (creating or recovering) every shard.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::InvalidArgument`](crate::ErrorKind) for
    /// inconsistent options or a shard count that does not match the
    /// existing on-disk marker, and I/O/corruption errors from recovery.
    pub fn open(self) -> Result<ShardedDb> {
        let env = self
            .env
            .unwrap_or_else(|| HardwareEnv::builder().build_sim());
        let vfs = self
            .vfs
            .unwrap_or_else(|| Arc::new(MemVfs::new()) as Arc<dyn Vfs>);
        ShardedDb::open_impl(self.opts, &env, vfs, self.split_points)
    }
}

/// A key-range partitioned database: `num_shards` independent LSM trees
/// behind a [`Db`]-compatible facade. See the module docs for what is
/// shared (block cache, job budget, stall debt) and what is per-shard
/// (memtable, WAL, SST tree, group commit).
///
/// Like [`Db`], cloning is cheap (shared handles) and every method takes
/// `&self`, so one facade can be shared across threads.
#[derive(Clone)]
pub struct ShardedDb {
    shards: Vec<Db>,
    /// `num_shards - 1` increasing boundaries; shard `i` owns keys in
    /// `[split[i-1], split[i])` with the usual open ends. Two-byte
    /// big-endian by default, caller-supplied via
    /// [`ShardedDbBuilder::split_points`] otherwise.
    split_points: Vec<Vec<u8>>,
}

impl ShardedDb {
    /// Starts building a sharded database with `opts`; the shard count
    /// comes from [`Options::num_shards`].
    pub fn builder(opts: Options) -> ShardedDbBuilder {
        ShardedDbBuilder {
            opts,
            env: None,
            vfs: None,
            split_points: None,
        }
    }

    fn open_impl(
        opts: Options,
        env: &HardwareEnv,
        vfs: Arc<dyn Vfs>,
        custom_splits: Option<Vec<Vec<u8>>>,
    ) -> Result<ShardedDb> {
        opts.validate()?;
        let n = opts.num_shards as usize;
        if let Some(p) = &custom_splits {
            validate_split_points(p, n)?;
        }
        // The partitioning is a persistent property of the database: an
        // existing marker's boundaries win on reopen (callers need not
        // re-supply them), but an *explicit* request that conflicts with
        // them is an error — honouring it would misroute every key.
        let splits = match read_marker(&*vfs)? {
            Some((stored_n, stored)) => {
                if stored_n != n {
                    return Err(Error::invalid_argument(format!(
                        "database was created with {stored_n} shards, reopened with {n}"
                    )));
                }
                let stored = if stored.is_empty() { split_points(n) } else { stored };
                if let Some(p) = custom_splits {
                    if p != stored {
                        return Err(Error::invalid_argument(
                            "database was created with different shard split points",
                        ));
                    }
                }
                stored
            }
            None => {
                let splits = custom_splits.unwrap_or_else(|| split_points(n));
                write_marker(&*vfs, n, &splits)?;
                splits
            }
        };

        let block_cache = if opts.no_block_cache {
            None
        } else {
            Some(Arc::new(BlockCache::new(opts.block_cache_size.max(1), 4)))
        };
        let shared = Arc::new(ShardShared {
            block_cache,
            budget: JobBudget::new(opts.max_background_jobs.clamp(1, 16) as usize),
            starved: AtomicBool::new(false),
            debt: (0..n).map(|_| AtomicU64::new(0)).collect(),
            peers: Mutex::new(Vec::with_capacity(n)),
        });

        let mut shard_opts = opts;
        shard_opts.num_shards = 1;
        let mut shards = Vec::with_capacity(n);
        for i in 0..n {
            let ns = Arc::new(NamespaceVfs::new(Arc::clone(&vfs), format!("s{i}_")));
            let db = Db::builder(shard_opts.clone())
                .env(env)
                .vfs(ns)
                .shard_context(ShardCtx {
                    shared: Arc::clone(&shared),
                    index: i,
                })
                .open()?;
            shards.push(db);
        }
        // Register worker pools only once every shard is open; a kick to
        // a not-yet-listed peer is harmless (workers poll on a timeout).
        {
            let mut peers = shared.peers.lock();
            for db in &shards {
                peers.push(
                    db.bg_shared()
                        .map_or_else(Weak::new, |bg| Arc::downgrade(&bg)),
                );
            }
        }
        Ok(ShardedDb {
            shards,
            split_points: splits,
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Direct access to shard `i` (tests and tooling).
    pub fn shard(&self, i: usize) -> &Db {
        &self.shards[i]
    }

    fn shard_for(&self, key: &[u8]) -> usize {
        self.split_points
            .partition_point(|b| b.as_slice() <= key)
    }

    /// Stores `value` under `key`.
    ///
    /// # Errors
    ///
    /// See [`Db::put`].
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.shards[self.shard_for(key)].put(key, value)
    }

    /// Deletes a key (writes a tombstone).
    ///
    /// # Errors
    ///
    /// See [`Db::delete`].
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        self.shards[self.shard_for(key)].delete(key)
    }

    /// Reads the newest value for `key`.
    ///
    /// # Errors
    ///
    /// See [`Db::get`].
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.shards[self.shard_for(key)].get(key)
    }

    /// Reads the newest value for `key` under explicit [`ReadOptions`].
    ///
    /// # Errors
    ///
    /// See [`Db::get_opt`]. Additionally rejects an explicit
    /// `snapshot_seq` when more than one shard exists (see
    /// [`check_explicit_snapshot`](Self::check_explicit_snapshot)).
    pub fn get_opt(&self, ropts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.check_explicit_snapshot(ropts)?;
        self.shards[self.shard_for(key)].get_opt(ropts, key)
    }

    /// Reads the newest values for a batch of keys; results align 1:1
    /// with `keys`.
    ///
    /// # Errors
    ///
    /// See [`Db::multi_get`].
    pub fn multi_get(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>> {
        self.multi_get_opt(&ReadOptions::default(), keys)
    }

    /// Batched point reads: the batch is split by key range and each
    /// shard's sub-batch runs as one [`Db::multi_get_opt`], so per-shard
    /// snapshot/pin sharing and per-table amortization are preserved.
    /// Shards execute sequentially (deterministic, single-caller-thread);
    /// each shard's sub-batch reads at that shard's own snapshot, exactly
    /// like looped `get_opt` calls would.
    ///
    /// # Errors
    ///
    /// See [`Db::multi_get_opt`]. Additionally rejects an explicit
    /// `snapshot_seq` when more than one shard exists (see
    /// [`check_explicit_snapshot`](Self::check_explicit_snapshot)).
    pub fn multi_get_opt(
        &self,
        ropts: &ReadOptions,
        keys: &[Vec<u8>],
    ) -> Result<Vec<Option<Vec<u8>>>> {
        self.check_explicit_snapshot(ropts)?;
        if self.shards.len() == 1 {
            return self.shards[0].multi_get_opt(ropts, keys);
        }
        let mut per: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, key) in keys.iter().enumerate() {
            per[self.shard_for(key)].push(i);
        }
        let mut out: Vec<Option<Vec<u8>>> = vec![None; keys.len()];
        for (shard, idxs) in per.into_iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let sub: Vec<Vec<u8>> = idxs.iter().map(|&i| keys[i].clone()).collect();
            let vals = self.shards[shard].multi_get_opt(ropts, &sub)?;
            for (slot, val) in idxs.into_iter().zip(vals) {
                out[slot] = val;
            }
        }
        Ok(out)
    }

    /// Rejects a caller-provided `snapshot_seq` on the sharded facade.
    ///
    /// Each shard runs its own sequence domain, so one number cannot
    /// name a consistent point across shards: forwarding it verbatim
    /// would pin wildly different moments in time per shard (or be out
    /// of range entirely). With a single shard the domains coincide and
    /// the option passes through.
    fn check_explicit_snapshot(&self, ropts: &ReadOptions) -> Result<()> {
        if self.shards.len() > 1 && ropts.snapshot_seq.is_some() {
            return Err(Error::invalid_argument(
                "explicit snapshot_seq is not meaningful across shards: \
                 each shard has an independent sequence domain",
            ));
        }
        Ok(())
    }

    /// Applies a batch with default write options. Atomic *per shard*:
    /// the batch is split by key range and each sub-batch commits
    /// atomically in its shard, but there is no cross-shard transaction —
    /// a reader may observe one shard's part before another's.
    ///
    /// # Errors
    ///
    /// See [`Db::write`].
    pub fn write(&self, batch: WriteBatch) -> Result<()> {
        self.write_opt(&WriteOptions::default(), batch)
    }

    /// Applies a batch under explicit [`WriteOptions`]; atomic per shard
    /// (see [`write`](Self::write)).
    ///
    /// # Errors
    ///
    /// See [`Db::write_opt`].
    pub fn write_opt(&self, wopts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        if self.shards.len() == 1 {
            return self.shards[0].write_opt(wopts, batch);
        }
        let mut parts: Vec<WriteBatch> = vec![WriteBatch::new(); self.shards.len()];
        for (ty, key, value) in batch.iter() {
            let part = &mut parts[self.shard_for(key)];
            match ty {
                ValueType::Value => part.put(key, value),
                ValueType::Deletion => part.delete(key),
            };
        }
        for (i, part) in parts.into_iter().enumerate() {
            if !part.is_empty() {
                self.shards[i].write_opt(wopts, part)?;
            }
        }
        Ok(())
    }

    /// Scans forward from `start`, returning up to `count` live entries
    /// across all shards in key order. Per-shard snapshot sequences are
    /// captured before any shard is read, so entries already visible when
    /// the scan starts are seen consistently even while writers run.
    ///
    /// # Errors
    ///
    /// See [`Db::scan_opt`]. Additionally rejects an explicit
    /// `snapshot_seq` when more than one shard exists (see
    /// [`check_explicit_snapshot`](Self::check_explicit_snapshot)).
    pub fn scan_opt(&self, ropts: &ReadOptions, start: &[u8], count: usize) -> Result<ScanResult> {
        self.check_explicit_snapshot(ropts)?;
        let pins: Vec<u64> = self.shards.iter().map(Db::snapshot_seq).collect();
        let mut out = ScanResult::new();
        let first = self.shard_for(start);
        for (i, shard) in self.shards.iter().enumerate().skip(first) {
            if out.len() >= count {
                break;
            }
            let mut shard_ropts = *ropts;
            if shard_ropts.snapshot_seq.is_none() {
                shard_ropts.snapshot_seq = Some(pins[i]);
            }
            let from = if i == first { start } else { b"" as &[u8] };
            out.extend(shard.scan_opt(&shard_ropts, from, count - out.len())?);
        }
        Ok(out)
    }

    /// Scans forward from `start` with default read options.
    ///
    /// # Errors
    ///
    /// See [`Db::scan`].
    pub fn scan(&self, start: &[u8], count: usize) -> Result<ScanResult> {
        self.scan_opt(&ReadOptions::default(), start, count)
    }

    /// Flushes every shard's memtable.
    ///
    /// # Errors
    ///
    /// See [`Db::flush`].
    pub fn flush(&self) -> Result<()> {
        for db in &self.shards {
            db.flush()?;
        }
        Ok(())
    }

    /// The most severe write regime across all shards: a server gating
    /// intake on stalls must back off as soon as *any* shard is stopped,
    /// because a batch may touch every shard.
    pub fn write_regime(&self) -> WriteRegime {
        let mut worst = WriteRegime::Normal;
        for db in &self.shards {
            match db.write_regime() {
                WriteRegime::Stopped => return WriteRegime::Stopped,
                WriteRegime::Delayed => worst = WriteRegime::Delayed,
                WriteRegime::Normal => {}
            }
        }
        worst
    }

    /// Applies a batch of live `(name, value)` option changes to every
    /// shard; see [`Db::set_options`]. The batch is validated once
    /// against shard 0's current options before any shard is touched,
    /// so a rejected batch (immutable name, parse failure, range or
    /// invariant violation) leaves all shards unchanged. Shards always
    /// run identical options, so the per-shard applications commit the
    /// same triples.
    ///
    /// # Errors
    ///
    /// See [`Db::set_options`].
    pub fn set_options(&self, changes: &[(&str, &str)]) -> Result<Vec<(String, String, String)>> {
        // Dry-run against shard 0's config: every shard shares it, so
        // one verdict covers them all and failures commit nothing.
        let mut probe = (*self.shards[0].options()).clone();
        let outcome = probe.apply_live(changes)?;
        if !outcome.committed() {
            return Err(Error::invalid_argument(format!(
                "cannot change immutable option(s) without reopen: {}",
                outcome.rejected_immutable.join(", ")
            )));
        }
        let mut applied = Vec::new();
        for db in &self.shards {
            applied = db.set_options(changes)?;
        }
        Ok(applied)
    }

    /// Compacts every shard fully.
    ///
    /// # Errors
    ///
    /// See [`Db::compact_all`].
    pub fn compact_all(&self) -> Result<()> {
        for db in &self.shards {
            db.compact_all()?;
        }
        Ok(())
    }

    /// Blocks until every shard's background work is drained.
    ///
    /// # Errors
    ///
    /// See [`Db::wait_background_idle`].
    pub fn wait_background_idle(&self) -> Result<()> {
        for db in &self.shards {
            db.wait_background_idle()?;
        }
        Ok(())
    }

    /// Aggregated statistics across all shards. Tickers, level shapes,
    /// and debt sum; the shared block cache is counted once.
    pub fn stats(&self) -> DbStats {
        let mut agg = self.shards[0].stats();
        for db in &self.shards[1..] {
            let s = db.stats();
            agg.tickers.merge(&s.tickers);
            if agg.levels.len() < s.levels.len() {
                agg.levels.resize(s.levels.len(), (0, 0));
            }
            for (l, (files, bytes)) in s.levels.iter().enumerate() {
                agg.levels[l].0 += files;
                agg.levels[l].1 += bytes;
            }
            agg.memtable_bytes += s.memtable_bytes;
            agg.immutable_memtables += s.immutable_memtables;
            agg.pending_compaction_bytes =
                agg.pending_compaction_bytes.saturating_add(s.pending_compaction_bytes);
            agg.running_background_jobs += s.running_background_jobs;
            agg.last_sequence = agg.last_sequence.max(s.last_sequence);
            agg.background_retries += s.background_retries;
            agg.wal_rotations += s.wal_rotations;
            agg.manifest_resyncs += s.manifest_resyncs;
            agg.wal_sync_retries += s.wal_sync_retries;
            // block_cache / block_cache_capacity: shared, already counted.
        }
        agg
    }

    /// Human-readable statistics: an aggregated summary followed by one
    /// section per shard.
    pub fn stats_text(&self) -> String {
        use std::fmt::Write as _;
        if self.shards.len() == 1 {
            return self.shards[0].stats_text();
        }
        let agg = self.stats();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "** Aggregate across {} shards **",
            self.shards.len()
        );
        let _ = writeln!(
            out,
            "last_sequence: {}  pending_compaction_bytes: {}  running_bg_jobs: {}",
            agg.last_sequence, agg.pending_compaction_bytes, agg.running_background_jobs
        );
        for (l, (files, bytes)) in agg.levels.iter().enumerate() {
            if *files > 0 {
                let _ = writeln!(out, "  L{l}: {files} files, {bytes} bytes");
            }
        }
        for (i, db) in self.shards.iter().enumerate() {
            let _ = writeln!(out, "\n** Shard {i} **");
            out.push_str(&db.stats_text());
        }
        out
    }
}

/// One database abstraction over [`Db`] and [`ShardedDb`], so benchmark
/// drivers and tools run unchanged against either.
pub trait KvEngine: Send + Sync {
    /// Stores `value` under `key`.
    ///
    /// # Errors
    ///
    /// See [`Db::put`].
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()>;
    /// Deletes a key.
    ///
    /// # Errors
    ///
    /// See [`Db::delete`].
    fn delete(&self, key: &[u8]) -> Result<()>;
    /// Reads the newest value for `key`.
    ///
    /// # Errors
    ///
    /// See [`Db::get`].
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>>;
    /// Reads the newest values for a batch of keys; results align 1:1
    /// with `keys`. The default implementation loops [`get`](Self::get);
    /// engines with a native batched path override it.
    ///
    /// # Errors
    ///
    /// See [`Db::multi_get`].
    fn multi_get(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>> {
        keys.iter().map(|k| self.get(k)).collect()
    }
    /// Applies a batch (atomic per shard for sharded engines).
    ///
    /// # Errors
    ///
    /// See [`Db::write_opt`].
    fn write_opt(&self, wopts: &WriteOptions, batch: WriteBatch) -> Result<()>;
    /// Scans forward from `start` for up to `count` live entries.
    ///
    /// # Errors
    ///
    /// See [`Db::scan`].
    fn scan(&self, start: &[u8], count: usize) -> Result<ScanResult>;
    /// Flushes the memtable(s).
    ///
    /// # Errors
    ///
    /// See [`Db::flush`].
    fn flush(&self) -> Result<()>;
    /// Waits for background work to drain.
    ///
    /// # Errors
    ///
    /// See [`Db::wait_background_idle`].
    fn wait_background_idle(&self) -> Result<()>;
    /// Point-in-time statistics.
    fn stats(&self) -> DbStats;
    /// Human-readable statistics report.
    fn stats_text(&self) -> String;
    /// The regime the write controller would choose for a write issued
    /// now. Engines without stall visibility report `Normal`.
    fn write_regime(&self) -> WriteRegime {
        WriteRegime::Normal
    }
    /// Applies a batch of live `(name, value)` option changes
    /// atomically, returning the canonical `(name, from, to)` triples
    /// that took effect; see [`Db::set_options`].
    ///
    /// # Errors
    ///
    /// See [`Db::set_options`]. Engines without live-options support
    /// return [`ErrorKind::NotSupported`](crate::ErrorKind).
    fn set_options(&self, changes: &[(&str, &str)]) -> Result<Vec<(String, String, String)>> {
        let _ = changes;
        Err(Error::not_supported("this engine does not support set_options"))
    }
}

impl KvEngine for Db {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        Db::put(self, key, value)
    }
    fn delete(&self, key: &[u8]) -> Result<()> {
        Db::delete(self, key)
    }
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Db::get(self, key)
    }
    fn multi_get(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>> {
        Db::multi_get(self, keys)
    }
    fn write_opt(&self, wopts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        Db::write_opt(self, wopts, batch)
    }
    fn scan(&self, start: &[u8], count: usize) -> Result<ScanResult> {
        Db::scan(self, start, count)
    }
    fn flush(&self) -> Result<()> {
        Db::flush(self)
    }
    fn wait_background_idle(&self) -> Result<()> {
        Db::wait_background_idle(self)
    }
    fn stats(&self) -> DbStats {
        Db::stats(self)
    }
    fn stats_text(&self) -> String {
        Db::stats_text(self)
    }
    fn write_regime(&self) -> WriteRegime {
        Db::write_regime(self)
    }
    fn set_options(&self, changes: &[(&str, &str)]) -> Result<Vec<(String, String, String)>> {
        Db::set_options(self, changes)
    }
}

impl KvEngine for ShardedDb {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        ShardedDb::put(self, key, value)
    }
    fn delete(&self, key: &[u8]) -> Result<()> {
        ShardedDb::delete(self, key)
    }
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        ShardedDb::get(self, key)
    }
    fn multi_get(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>> {
        ShardedDb::multi_get(self, keys)
    }
    fn write_opt(&self, wopts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        ShardedDb::write_opt(self, wopts, batch)
    }
    fn scan(&self, start: &[u8], count: usize) -> Result<ScanResult> {
        ShardedDb::scan(self, start, count)
    }
    fn flush(&self) -> Result<()> {
        ShardedDb::flush(self)
    }
    fn wait_background_idle(&self) -> Result<()> {
        ShardedDb::wait_background_idle(self)
    }
    fn stats(&self) -> DbStats {
        ShardedDb::stats(self)
    }
    fn stats_text(&self) -> String {
        ShardedDb::stats_text(self)
    }
    fn write_regime(&self) -> WriteRegime {
        ShardedDb::write_regime(self)
    }
    fn set_options(&self, changes: &[(&str, &str)]) -> Result<Vec<(String, String, String)>> {
        ShardedDb::set_options(self, changes)
    }
}

/// Evenly spaced two-byte big-endian boundaries: shard `i` of `n` owns
/// keys whose first two bytes fall in `[i*65536/n, (i+1)*65536/n)`.
fn split_points(n: usize) -> Vec<Vec<u8>> {
    (1..n)
        .map(|i| {
            let b = (i as u32 * 65536 / n as u32) as u16;
            b.to_be_bytes().to_vec()
        })
        .collect()
}

/// Rejects boundary lists that would misroute keys: wrong count, empty
/// boundaries (indistinguishable from the open left end), or any pair
/// out of strict order.
fn validate_split_points(points: &[Vec<u8>], n: usize) -> Result<()> {
    if points.len() + 1 != n {
        return Err(Error::invalid_argument(format!(
            "{n} shards need {} split points, got {}",
            n - 1,
            points.len()
        )));
    }
    for (i, p) in points.iter().enumerate() {
        if p.is_empty() {
            return Err(Error::invalid_argument("empty split point"));
        }
        if i > 0 && points[i - 1].as_slice() >= p.as_slice() {
            return Err(Error::invalid_argument(format!(
                "split points must be strictly increasing (point {i} is not)"
            )));
        }
    }
    Ok(())
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(line: &str) -> Result<Vec<u8>> {
    if !line.len().is_multiple_of(2) || !line.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(Error::corruption(format!("bad split point in SHARDS marker: {line:?}")));
    }
    Ok((0..line.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&line[i..i + 2], 16).expect("checked hex"))
        .collect())
}

/// Reads the marker: shard count plus the persisted split boundaries
/// (empty for markers written before boundaries were recorded).
fn read_marker(vfs: &dyn Vfs) -> Result<Option<(usize, Vec<Vec<u8>>)>> {
    if !vfs.exists(SHARDS_MARKER) {
        return Ok(None);
    }
    let raw = vfs.read_all(SHARDS_MARKER)?;
    let text = String::from_utf8_lossy(&raw);
    let mut lines = text.lines();
    let head = lines.next().unwrap_or("");
    let n: usize = head
        .trim()
        .parse()
        .map_err(|_| Error::corruption(format!("bad SHARDS marker: {text:?}")))?;
    let splits = lines
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(unhex)
        .collect::<Result<Vec<_>>>()?;
    Ok(Some((n, splits)))
}

/// Writes the marker recording the partitioning: the shard count on the
/// first line, then one hex-encoded boundary per line.
fn write_marker(vfs: &dyn Vfs, n: usize, splits: &[Vec<u8>]) -> Result<()> {
    let mut f = vfs.create(SHARDS_MARKER)?;
    let mut body = format!("{n}\n");
    for p in splits {
        body.push_str(&hex(p));
        body.push('\n');
    }
    f.append(body.as_bytes())?;
    f.sync()?;
    f.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Ticker;

    fn sim_env() -> HardwareEnv {
        HardwareEnv::builder().build_sim()
    }

    #[test]
    fn split_points_partition_the_key_space() {
        let splits = split_points(4);
        assert_eq!(splits, vec![vec![0x40, 0x00], vec![0x80, 0x00], vec![0xc0, 0x00]]);
        let db = ShardedDb::builder(Options {
            num_shards: 4,
            ..Options::default()
        })
        .env(&sim_env())
        .open()
        .unwrap();
        assert_eq!(db.shard_for(b""), 0);
        assert_eq!(db.shard_for(&[0x3f, 0xff]), 0);
        assert_eq!(db.shard_for(&[0x40]), 0); // shorter than the boundary
        assert_eq!(db.shard_for(&[0x40, 0x00]), 1);
        assert_eq!(db.shard_for(&[0x80, 0x00, 0x01]), 2);
        assert_eq!(db.shard_for(&[0xff, 0xff]), 3);
    }

    #[test]
    fn explicit_snapshot_rejected_across_shards() {
        let db = ShardedDb::builder(Options {
            num_shards: 4,
            ..Options::default()
        })
        .env(&sim_env())
        .open()
        .unwrap();
        db.put(b"abc", b"v").unwrap();
        let ropts = ReadOptions {
            snapshot_seq: Some(1),
            ..ReadOptions::default()
        };
        let get_err = db.get_opt(&ropts, b"abc").unwrap_err();
        assert_eq!(get_err.kind(), crate::ErrorKind::InvalidArgument);
        let scan_err = db.scan_opt(&ropts, b"", 10).unwrap_err();
        assert_eq!(scan_err.kind(), crate::ErrorKind::InvalidArgument);
        // Implicit snapshots (scan pinning) still work.
        assert_eq!(db.get_opt(&ReadOptions::default(), b"abc").unwrap(), Some(b"v".to_vec()));
        assert_eq!(db.scan(b"", 10).unwrap().len(), 1);
    }

    #[test]
    fn explicit_snapshot_passes_through_single_shard() {
        let db = ShardedDb::builder(Options {
            num_shards: 1,
            ..Options::default()
        })
        .env(&sim_env())
        .open()
        .unwrap();
        db.put(b"k", b"v1").unwrap();
        let pin = db.shards[0].snapshot_seq();
        db.put(b"k", b"v2").unwrap();
        let ropts = ReadOptions {
            snapshot_seq: Some(pin),
            ..ReadOptions::default()
        };
        assert_eq!(db.get_opt(&ropts, b"k").unwrap(), Some(b"v1".to_vec()));
    }

    #[test]
    fn routes_reads_writes_and_deletes() {
        let db = ShardedDb::builder(Options {
            num_shards: 4,
            ..Options::default()
        })
        .env(&sim_env())
        .open()
        .unwrap();
        let keys: Vec<Vec<u8>> = (0..=255u8).map(|b| vec![b, b, b]).collect();
        for k in &keys {
            db.put(k, k).unwrap();
        }
        for k in &keys {
            assert_eq!(db.get(k).unwrap().as_deref(), Some(k.as_slice()));
        }
        db.delete(&keys[7]).unwrap();
        assert_eq!(db.get(&keys[7]).unwrap(), None);
        // Every shard saw some of the writes.
        for i in 0..db.num_shards() {
            assert!(
                db.shard(i).stats().tickers.get(Ticker::BytesWritten) > 0,
                "shard {i} got no writes"
            );
        }
    }

    #[test]
    fn batch_writes_split_by_range() {
        let db = ShardedDb::builder(Options {
            num_shards: 2,
            ..Options::default()
        })
        .env(&sim_env())
        .open()
        .unwrap();
        let mut batch = WriteBatch::new();
        batch.put(&[0x10], b"low");
        batch.put(&[0xf0], b"high");
        batch.delete(&[0x11]);
        db.write(batch).unwrap();
        assert_eq!(db.get(&[0x10]).unwrap(), Some(b"low".to_vec()));
        assert_eq!(db.get(&[0xf0]).unwrap(), Some(b"high".to_vec()));
        assert_eq!(db.get(&[0x11]).unwrap(), None);
    }

    #[test]
    fn cross_shard_scan_is_ordered_and_complete() {
        let db = ShardedDb::builder(Options {
            num_shards: 4,
            ..Options::default()
        })
        .env(&sim_env())
        .open()
        .unwrap();
        let mut keys: Vec<Vec<u8>> = (0..=255u8).step_by(3).map(|b| vec![b, 0x55]).collect();
        for k in &keys {
            db.put(k, b"v").unwrap();
        }
        keys.sort();
        let got = db.scan(b"", usize::MAX).unwrap();
        assert_eq!(got.len(), keys.len());
        assert!(got.iter().map(|(k, _)| k).eq(keys.iter()), "scan out of order");
        // Mid-range start lands mid-shard and spills across boundaries.
        let tail = db.scan(&[0x7d], 10).unwrap();
        assert_eq!(tail.len(), 10);
        assert!(tail.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(tail[0].0.as_slice() >= [0x7d].as_slice());
    }

    #[test]
    fn shards_share_one_block_cache() {
        let db = ShardedDb::builder(Options {
            num_shards: 4,
            ..Options::default()
        })
        .env(&sim_env())
        .open()
        .unwrap();
        for b in 0..=255u8 {
            db.put(&[b, b], &[b; 64]).unwrap();
        }
        db.flush().unwrap();
        for b in 0..=255u8 {
            assert_eq!(db.get(&[b, b]).unwrap(), Some(vec![b; 64]));
        }
        let agg = db.stats();
        // All four shards report the SAME shared cache, and it served
        // inserts from every shard's reads.
        let c0 = db.shard(0).stats().block_cache;
        let c3 = db.shard(3).stats().block_cache;
        assert_eq!(c0.inserts, c3.inserts);
        assert!(agg.block_cache.inserts >= 4, "cache unused: {:?}", agg.block_cache);
    }

    #[test]
    fn reopen_with_different_shard_count_is_rejected() {
        let vfs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let env = sim_env();
        let opts = Options {
            num_shards: 4,
            ..Options::default()
        };
        let db = ShardedDb::builder(opts.clone())
            .env(&env)
            .vfs(Arc::clone(&vfs))
            .open()
            .unwrap();
        db.put(b"k", b"v").unwrap();
        drop(db);
        let err = match ShardedDb::builder(Options {
            num_shards: 2,
            ..opts.clone()
        })
        .env(&env)
        .vfs(Arc::clone(&vfs))
        .open()
        {
            Err(e) => e,
            Ok(_) => panic!("reopen with a different shard count succeeded"),
        };
        assert!(err.to_string().contains("4 shards"), "{err}");
        // Matching count reopens and recovers.
        let db = ShardedDb::builder(opts).env(&env).vfs(vfs).open().unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn aggregated_stats_sum_tickers_and_levels() {
        let db = ShardedDb::builder(Options {
            num_shards: 2,
            ..Options::default()
        })
        .env(&sim_env())
        .open()
        .unwrap();
        db.put(&[0x01], b"a").unwrap();
        db.put(&[0xfe], b"b").unwrap();
        db.flush().unwrap();
        db.wait_background_idle().unwrap();
        let agg = db.stats();
        let per: u64 = (0..2)
            .map(|i| db.shard(i).stats().tickers.get(Ticker::BytesWritten))
            .sum();
        assert_eq!(agg.tickers.get(Ticker::BytesWritten), per);
        let files: usize = agg.levels.iter().map(|(f, _)| f).sum();
        let per_files: usize = (0..2)
            .map(|i| db.shard(i).stats().levels.iter().map(|(f, _)| f).sum::<usize>())
            .sum();
        assert_eq!(files, per_files);
        let text = db.stats_text();
        assert!(text.contains("Aggregate across 2 shards"), "{text}");
        assert!(text.contains("** Shard 1 **"), "{text}");
    }

    #[test]
    fn custom_split_points_route_skewed_keys() {
        // Decimal-rendered keys all start with '0': the default binary
        // boundaries would put everything in shard 0.
        let db = ShardedDb::builder(Options {
            num_shards: 3,
            ..Options::default()
        })
        .env(&sim_env())
        .split_points(vec![b"0100".to_vec(), b"0200".to_vec()])
        .open()
        .unwrap();
        for i in 0..300u32 {
            let k = format!("{i:04}");
            db.put(k.as_bytes(), b"v").unwrap();
        }
        for i in 0..db.num_shards() {
            assert!(
                db.shard(i).stats().tickers.get(Ticker::BytesWritten) > 0,
                "shard {i} got no writes"
            );
        }
        // Scans still come back globally ordered across custom bounds.
        let got = db.scan(b"", usize::MAX).unwrap();
        assert_eq!(got.len(), 300);
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn invalid_split_points_are_rejected() {
        let cases: Vec<Vec<Vec<u8>>> = vec![
            vec![b"a".to_vec()],                  // wrong count for 3 shards
            vec![b"b".to_vec(), b"a".to_vec()],   // out of order
            vec![b"a".to_vec(), b"a".to_vec()],   // duplicate
            vec![Vec::new(), b"a".to_vec()],      // empty boundary
        ];
        for points in cases {
            let r = ShardedDb::builder(Options {
                num_shards: 3,
                ..Options::default()
            })
            .env(&sim_env())
            .split_points(points.clone())
            .open();
            assert!(r.is_err(), "accepted bad split points {points:?}");
        }
    }

    #[test]
    fn reopen_with_different_split_points_is_rejected() {
        let vfs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let env = sim_env();
        let opts = Options {
            num_shards: 2,
            ..Options::default()
        };
        let db = ShardedDb::builder(opts.clone())
            .env(&env)
            .vfs(Arc::clone(&vfs))
            .split_points(vec![b"m".to_vec()])
            .open()
            .unwrap();
        db.put(b"k", b"v").unwrap();
        drop(db);
        // Same count, different boundary: keys would silently misroute.
        let r = ShardedDb::builder(opts.clone())
            .env(&env)
            .vfs(Arc::clone(&vfs))
            .split_points(vec![b"q".to_vec()])
            .open();
        match r {
            Err(e) => assert!(e.to_string().contains("split points"), "{e}"),
            Ok(_) => panic!("reopen with different split points succeeded"),
        }
        // Matching boundaries reopen fine.
        let db = ShardedDb::builder(opts)
            .env(&env)
            .vfs(vfs)
            .split_points(vec![b"m".to_vec()])
            .open()
            .unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn reopen_without_split_points_adopts_stored_boundaries() {
        let vfs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let env = sim_env();
        let opts = Options {
            num_shards: 2,
            ..Options::default()
        };
        // Created with a custom boundary: "zz" routes to shard 1 only
        // under the stored split, not under the default binary one.
        let db = ShardedDb::builder(opts.clone())
            .env(&env)
            .vfs(Arc::clone(&vfs))
            .split_points(vec![b"m".to_vec()])
            .open()
            .unwrap();
        db.put(b"zz", b"v").unwrap();
        assert_eq!(db.shard_for(b"zz"), 1);
        drop(db);
        let db = ShardedDb::builder(opts).env(&env).vfs(vfs).open().unwrap();
        assert_eq!(db.shard_for(b"zz"), 1, "reopen ignored stored boundaries");
        assert_eq!(db.get(b"zz").unwrap(), Some(b"v".to_vec()));
    }
}
