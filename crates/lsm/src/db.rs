//! The database: ties memtables, WAL, levels, caches, background jobs,
//! and the hardware model together.
//!
//! # Execution model
//!
//! The engine is *discrete-event timed*: every foreground operation
//! advances the shared [`hw_sim::Clock`] by its modeled cost (CPU,
//! device queueing, stalls), and background jobs (flush/compaction) are
//! executed eagerly but their *effects* are installed at a computed
//! completion instant via an event queue. Device channels and CPU cores
//! are shared with foreground work, so background pressure shows up as
//! foreground tail latency — the phenomenon LSM tuning fights.
//!
//! With a wall [`hw_sim::Clock`] the engine switches to *real-concurrency
//! mode* instead: writers coalesce through a group-commit queue (one
//! leader appends and syncs the WAL for the whole group), flushes and
//! compactions run on a pool of background OS threads honoring
//! `max_background_jobs`, and reads traverse immutable snapshots
//! (`Arc`ed memtables and versions) without holding the state mutex for
//! the lookup. The mode is selected once at [`Db::builder`] from the
//! environment's clock; simulation behavior is byte-identical to before
//! the runtime existed.

use std::collections::BinaryHeap;
use std::sync::{Arc, Weak};
use std::time::Duration;

use hw_sim::{AccessPattern, HardwareEnv, MemoryUser, SimDuration, SimTime};
use parking_lot::{Mutex, MutexGuard, RwLock};

use crate::batch::WriteBatch;
use crate::cache::{BlockCache, BlockKey, CacheStats, TableCache};
use crate::compaction::{
    level_targets, pending_compaction_bytes, pick_compaction, run_compaction, CompactionPick,
};
use crate::error::{Error, Result};
use crate::flush::{build_l0_table, sst_file_name};
use crate::memtable::{MemTable, MemTableGet};
use crate::options::{ini, Options};
use crate::listener::{
    CompactionJobInfo, EventListener, FlushJobInfo, StallConditionsChanged,
};
use crate::runtime::{BgShared, PreparedWrite, Runtime};
use crate::sstable::block::Block;
use crate::sstable::compress::decompress_cpu_cost;
use crate::sstable::table::{FinishedTable, TableConfig, TableReader};
use crate::stats::{HistogramKind, Statistics, Ticker, TickerSnapshot};
use crate::version::CompactionLevelStats;
use crate::types::{internal_key_cmp, FileNumber, InternalKey, SequenceNumber, ValueType};
use crate::version::{FileMetadata, Version, VersionEdit};
use crate::vfs::{MemVfs, Vfs};
use crate::wal::{replay_wal, WalWriter};
use crate::write_controller::{WriteController, WritePressure, WriteRegime};

const CURRENT_FILE: &str = "CURRENT";
const CURRENT_TMP_FILE: &str = "CURRENT.tmp";

/// Encodes a [`WriteRegime`] for the atomic transition tracker.
fn regime_code(r: WriteRegime) -> u8 {
    match r {
        WriteRegime::Normal => 0,
        WriteRegime::Delayed => 1,
        WriteRegime::Stopped => 2,
    }
}

fn regime_from_code(code: u8) -> WriteRegime {
    match code {
        1 => WriteRegime::Delayed,
        2 => WriteRegime::Stopped,
        _ => WriteRegime::Normal,
    }
}

fn wal_file_name(number: u64) -> String {
    format!("{number:06}.log")
}

fn manifest_file_name(number: u64) -> String {
    format!("MANIFEST-{number:06}")
}

/// Atomically points `CURRENT` at `manifest_name`: write a temp file,
/// sync it, then rename over. A crash at any point leaves either the old
/// or the new pointer — never a torn/empty `CURRENT`.
fn write_current(vfs: &dyn Vfs, manifest_name: &str) -> Result<()> {
    let mut tmp = vfs.create(CURRENT_TMP_FILE)?;
    tmp.append(manifest_name.as_bytes())?;
    tmp.sync()?;
    tmp.finish()?;
    drop(tmp);
    vfs.rename(CURRENT_TMP_FILE, CURRENT_FILE)
}

/// Foreground/background cost constants (reference-core nanoseconds).
///
/// These calibrate the simulation to `db_bench`-like magnitudes; they are
/// deliberately public so experiments can ablate them.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Fixed CPU per write operation.
    pub write_base_cpu: SimDuration,
    /// CPU per byte inserted into the memtable.
    pub write_per_byte_cpu_ns: f64,
    /// Fixed CPU per WAL record plus per-byte cost.
    pub wal_record_cpu: SimDuration,
    /// CPU per byte appended to the WAL buffer.
    pub wal_per_byte_cpu_ns: f64,
    /// Fixed CPU per read operation.
    pub get_base_cpu: SimDuration,
    /// CPU per memtable probed.
    pub memtable_probe_cpu: SimDuration,
    /// CPU per bloom filter check.
    pub bloom_check_cpu: SimDuration,
    /// CPU per index-block seek.
    pub index_seek_cpu: SimDuration,
    /// CPU per block-cache hit (hash + seek in block).
    pub cache_hit_cpu: SimDuration,
    /// CPU per entry stepped during scans.
    pub scan_entry_cpu: SimDuration,
    /// Flush throughput at reference speed (bytes/sec of raw data).
    pub flush_cpu_bps: f64,
    /// Compaction merge throughput (bytes/sec of raw data).
    pub compaction_cpu_bps: f64,
    /// CPU per entry merged in compaction.
    pub compaction_entry_cpu: SimDuration,
    /// Dirty-page threshold that triggers an OS writeback burst when
    /// `bytes_per_sync`/`wal_bytes_per_sync` are zero.
    pub os_writeback_burst: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            write_base_cpu: SimDuration::from_nanos(900),
            write_per_byte_cpu_ns: 1.2,
            wal_record_cpu: SimDuration::from_nanos(250),
            wal_per_byte_cpu_ns: 0.3,
            get_base_cpu: SimDuration::from_nanos(500),
            memtable_probe_cpu: SimDuration::from_nanos(300),
            bloom_check_cpu: SimDuration::from_nanos(120),
            index_seek_cpu: SimDuration::from_nanos(200),
            cache_hit_cpu: SimDuration::from_nanos(250),
            scan_entry_cpu: SimDuration::from_nanos(180),
            flush_cpu_bps: 350e6,
            compaction_cpu_bps: 300e6,
            compaction_entry_cpu: SimDuration::from_nanos(100),
            os_writeback_burst: 64 << 20,
        }
    }
}

// ---------------------------------------------------------------------------
// Background events
// ---------------------------------------------------------------------------

#[derive(Debug)]
#[allow(clippy::enum_variant_names)] // the shared "Done" suffix is the point
enum EventKind {
    FlushDone {
        file_number: FileNumber,
        finished: FinishedTable,
        mems_consumed: usize,
    },
    CompactionDone {
        inputs: Vec<(usize, Arc<FileMetadata>)>,
        outputs: Vec<(FileNumber, FinishedTable)>,
        output_level: usize,
        bytes_read: u64,
        keys_dropped: u64,
    },
    FifoDropDone {
        files: Vec<Arc<FileMetadata>>,
    },
}

#[derive(Debug)]
struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Inverted: BinaryHeap pops the *earliest* event.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

#[derive(Debug)]
struct ImmEntry {
    mem: Arc<MemTable>,
    wal_number: u64,
    flushing: bool,
}

#[derive(Debug)]
struct DbState {
    mem: Arc<RwLock<MemTable>>,
    mem_wal_number: u64,
    imm: Vec<ImmEntry>,
    version: Arc<Version>,
    wal: Option<WalWriter>,
    wals_on_disk: Vec<u64>,
    manifest: WalWriter,
    next_file: u64,
    last_seq: SequenceNumber,
    events: BinaryHeap<Event>,
    event_seq: u64,
    running_flushes: usize,
    running_compactions: usize,
    pending_compaction_bytes: u64,
    dirty_wal_bytes: u64,
    writes_since_account: u64,
    /// Real mode: input SSTs replaced by a compaction but possibly still
    /// referenced by readers holding an older `Arc<Version>`. Physically
    /// deleted once their only remaining reference is this list.
    obsolete_files: Vec<Arc<FileMetadata>>,
}

/// Aggregate statistics exposed for prompts, reports, and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbStats {
    /// Ticker counters.
    pub tickers: TickerSnapshot,
    /// `(files, bytes)` per level.
    pub levels: Vec<(usize, u64)>,
    /// Current memtable + immutable memtable bytes.
    pub memtable_bytes: u64,
    /// Immutable memtables waiting to flush.
    pub immutable_memtables: usize,
    /// Block cache statistics.
    pub block_cache: CacheStats,
    /// Block cache capacity in bytes.
    pub block_cache_capacity: u64,
    /// Estimated pending compaction debt in bytes.
    pub pending_compaction_bytes: u64,
    /// Background jobs currently in flight.
    pub running_background_jobs: usize,
    /// Last sequence number assigned.
    pub last_sequence: SequenceNumber,
    /// Background jobs that hit a transient error and were retried
    /// instead of aborting.
    pub background_retries: u64,
    /// WAL files rotated after a transient append failure.
    pub wal_rotations: u64,
    /// Manifest append/sync operations re-driven after a transient error.
    pub manifest_resyncs: u64,
    /// WAL syncs re-driven after a transient error.
    pub wal_sync_retries: u64,
}

impl DbStats {
    /// Write amplification so far: total bytes written by flush+compaction
    /// per byte of user data written.
    pub fn write_amplification(&self) -> f64 {
        let user = self.tickers.get(Ticker::BytesWritten).max(1);
        let physical = self.tickers.get(Ticker::FlushBytesWritten)
            + self.tickers.get(Ticker::CompactionBytesWritten);
        physical as f64 / user as f64
    }
}

/// One key/value pair returned by a scan.
pub type ScanResult = Vec<(Vec<u8>, Vec<u8>)>;

/// Per-write durability options (RocksDB `WriteOptions` analog).
#[derive(Debug, Clone, Default)]
pub struct WriteOptions {
    /// Block until the WAL is durably synced before acknowledging the
    /// write. In real-concurrency mode the sync is amortized across the
    /// whole commit group, which is where multi-threaded write
    /// throughput comes from.
    pub sync: bool,
}

impl WriteOptions {
    /// Options requesting a durable (synced) write.
    pub fn synced() -> Self {
        WriteOptions { sync: true }
    }
}

/// Per-read options (RocksDB `ReadOptions` analog), consumed by
/// [`Db::get_opt`] and [`Db::scan_opt`]. Plain [`Db::get`]/[`Db::scan`]
/// use the defaults.
#[derive(Debug, Clone, Copy)]
pub struct ReadOptions {
    /// Verify block checksums on every read that misses the block cache.
    /// Disabling trades integrity checking for CPU.
    pub verify_checksums: bool,
    /// Insert blocks read on a cache miss into the block cache. Disable
    /// for one-off scans that would wipe the working set.
    pub fill_cache: bool,
    /// Read as of this sequence number instead of the latest visible
    /// one. Clamped to the currently visible watermark; `None` reads the
    /// newest visible state.
    pub snapshot_seq: Option<SequenceNumber>,
}

impl Default for ReadOptions {
    fn default() -> Self {
        ReadOptions {
            verify_checksums: true,
            fill_cache: true,
            snapshot_seq: None,
        }
    }
}

/// Upper bound on batches coalesced into one commit group.
const MAX_GROUP_BATCHES: usize = 128;

/// How long a stalled real-mode writer waits before giving up.
const REAL_STALL_TIMEOUT: Duration = Duration::from_secs(30);

/// Wait slice for foreground threads blocked on background progress.
const REAL_WAIT_SLICE: Duration = Duration::from_millis(20);

/// Bounded retries for manifest append/sync on transient errors.
const MANIFEST_RETRIES: u32 = 5;

/// Bounded re-sync attempts for an acknowledged-append WAL sync.
const WAL_SYNC_RETRIES: u32 = 3;

struct DbInner {
    /// Live options: swapped atomically by [`Db::set_options`] while
    /// the state lock is held. Readers grab one `Arc` snapshot per
    /// logical operation so multi-field decisions are never torn.
    opts: RwLock<Arc<Options>>,
    /// The options the database was opened with (drives the
    /// "Live options" stats section and open-time sizing decisions).
    opened_opts: Options,
    cost: CostModel,
    env: HardwareEnv,
    vfs: Arc<dyn Vfs>,
    state: Mutex<DbState>,
    /// `Some` when this tree is one shard of a [`ShardedDb`](crate::ShardedDb):
    /// shared block cache, global job budget, cross-shard stall debt.
    shard: Option<crate::shard::ShardCtx>,
    block_cache: Option<Arc<BlockCache>>,
    table_cache: TableCache<TableReader>,
    stats: Statistics,
    listeners: Vec<Arc<dyn EventListener>>,
    /// Last stall regime reported to listeners (encoded via
    /// [`regime_code`]); transitions are deduplicated on this value.
    last_regime: std::sync::atomic::AtomicU8,
    /// Clock position when the database was opened (drives uptime).
    opened_at: SimTime,
    /// `Some` in real-concurrency (wall clock) mode, `None` in simulation.
    runtime: Option<Runtime>,
    /// Number of live user-facing [`Db`] handles (workers hold `Weak`s).
    handles: std::sync::atomic::AtomicUsize,
    /// Background jobs retried (parked, not aborted) on transient errors.
    bg_retries: std::sync::atomic::AtomicU64,
    /// WAL rotations after transient append failures.
    wal_rotations: std::sync::atomic::AtomicU64,
    /// Manifest append/sync attempts re-driven on transient errors.
    manifest_resyncs: std::sync::atomic::AtomicU64,
    /// Acknowledged-append WAL syncs re-driven on transient errors.
    wal_sync_retries: std::sync::atomic::AtomicU64,
}

impl Drop for DbInner {
    fn drop(&mut self) {
        // Backstop: `Db::drop` normally joined the pool already; this
        // covers panics that skipped it.
        if let Some(rt) = &self.runtime {
            rt.shutdown_and_join();
        }
    }
}

impl std::fmt::Debug for DbInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbInner").field("opts", &"..").finish_non_exhaustive()
    }
}

/// An LSM-tree key-value store.
///
/// See the crate docs for an end-to-end example.
#[derive(Debug)]
pub struct Db {
    inner: Arc<DbInner>,
}

impl Clone for Db {
    fn clone(&self) -> Db {
        self.inner
            .handles
            .fetch_add(1, std::sync::atomic::Ordering::AcqRel);
        Db {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Drop for Db {
    fn drop(&mut self) {
        // When the last user handle goes away in real mode, stop and
        // join the worker pool *before* returning: a worker may hold a
        // transient strong reference, and letting it drop `DbInner`
        // later would race a caller that immediately reopens the path
        // (the buffered manifest tail would still be in flight).
        if self.inner.runtime.is_some()
            && self
                .inner
                .handles
                .fetch_sub(1, std::sync::atomic::Ordering::AcqRel)
                == 1
        {
            if let Some(rt) = &self.inner.runtime {
                rt.shutdown_and_join();
            }
        }
    }
}

/// Fluent constructor for [`Db`], created by [`Db::builder`].
///
/// ```
/// use lsm_kvs::{Db, FaultConfig, options::Options};
///
/// // Defaults: in-memory VFS, simulated 4-core / 8 GiB NVMe environment.
/// let db = Db::builder(Options::default()).open().unwrap();
/// db.put(b"k", b"v").unwrap();
///
/// // With fault injection layered over the chosen VFS:
/// let builder = Db::builder(Options::default()).fault_injection(FaultConfig::default());
/// let faults = builder.fault_vfs().unwrap();
/// let db = builder.open().unwrap();
/// db.put(b"k", b"v").unwrap();
/// assert_eq!(faults.injected_errors(), 0);
/// ```
pub struct DbBuilder {
    opts: Options,
    env: Option<HardwareEnv>,
    vfs: Option<Arc<dyn Vfs>>,
    fault: Option<crate::fault::FaultInjectionVfs>,
    listeners: Vec<Arc<dyn EventListener>>,
    shard: Option<crate::shard::ShardCtx>,
}

impl std::fmt::Debug for DbBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbBuilder")
            .field("listeners", &self.listeners.len())
            .finish_non_exhaustive()
    }
}

impl DbBuilder {
    /// Sets the hardware environment (defaults to a simulated
    /// 4-core / 8 GiB NVMe environment). The environment's clock selects
    /// the execution mode: simulated clock → discrete-event mode, wall
    /// clock → real-concurrency mode.
    #[must_use]
    pub fn env(mut self, env: &HardwareEnv) -> Self {
        self.env = Some(env.clone());
        self
    }

    /// Sets the backing VFS (defaults to a fresh [`MemVfs`]).
    ///
    /// Call before [`fault_injection`](Self::fault_injection): the fault
    /// layer wraps whatever VFS is configured when it is added.
    #[must_use]
    pub fn vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.vfs = Some(vfs);
        self
    }

    /// Wraps the configured VFS in a [`FaultInjectionVfs`](crate::FaultInjectionVfs)
    /// with `cfg`. Retrieve the handle with [`fault_vfs`](Self::fault_vfs)
    /// to drive power cuts and error bursts from the outside.
    #[must_use]
    pub fn fault_injection(mut self, cfg: crate::fault::FaultConfig) -> Self {
        let base = self
            .vfs
            .take()
            .unwrap_or_else(|| Arc::new(MemVfs::new()) as Arc<dyn Vfs>);
        let fault = crate::fault::FaultInjectionVfs::with_config(base, cfg);
        self.vfs = Some(Arc::new(fault.clone()) as Arc<dyn Vfs>);
        self.fault = Some(fault);
        self
    }

    /// The fault-injection handle, when [`fault_injection`](Self::fault_injection)
    /// was configured. Clone it before [`open`](Self::open).
    pub fn fault_vfs(&self) -> Option<crate::fault::FaultInjectionVfs> {
        self.fault.clone()
    }

    /// Registers an [`EventListener`] notified of flush/compaction
    /// completions and stall-regime transitions. May be called multiple
    /// times; listeners fire in registration order.
    #[must_use]
    pub fn listener(mut self, listener: Arc<dyn EventListener>) -> Self {
        self.listeners.push(listener);
        self
    }

    /// Marks this database as one shard of a [`ShardedDb`](crate::ShardedDb),
    /// wiring it to the shared block cache, job budget, and stall debt.
    pub(crate) fn shard_context(mut self, ctx: crate::shard::ShardCtx) -> Self {
        self.shard = Some(ctx);
        self
    }

    /// Opens (creating or recovering) the database.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::InvalidArgument`](crate::ErrorKind) for
    /// inconsistent options and I/O/corruption errors from recovery.
    pub fn open(self) -> Result<Db> {
        let env = self
            .env
            .unwrap_or_else(|| HardwareEnv::builder().build_sim());
        let vfs = self
            .vfs
            .unwrap_or_else(|| Arc::new(MemVfs::new()) as Arc<dyn Vfs>);
        Db::open_impl(self.opts, &env, vfs, self.listeners, self.shard)
    }
}

impl Db {
    /// Starts building a database handle; see [`DbBuilder`].
    pub fn builder(opts: Options) -> DbBuilder {
        DbBuilder {
            opts,
            env: None,
            vfs: None,
            fault: None,
            listeners: Vec::new(),
            shard: None,
        }
    }

    /// Opens (creating or recovering) a database on `vfs` under `env`.
    ///
    /// The execution mode follows the environment's clock: a simulated
    /// clock selects the single-threaded discrete-event mode, a wall
    /// clock selects real-concurrency mode (group commit + background
    /// worker pool).
    fn open_impl(
        opts: Options,
        env: &HardwareEnv,
        vfs: Arc<dyn Vfs>,
        listeners: Vec<Arc<dyn EventListener>>,
        shard: Option<crate::shard::ShardCtx>,
    ) -> Result<Db> {
        opts.validate()?;
        let block_cache = if let Some(ctx) = &shard {
            // Shards share one cache sized once by the facade.
            ctx.shared_block_cache()
        } else if opts.no_block_cache {
            None
        } else {
            Some(Arc::new(BlockCache::new(opts.block_cache_size.max(1), 4)))
        };
        let table_cache = TableCache::new(opts.max_open_files);

        let state = if vfs.exists(CURRENT_FILE) {
            Self::recover(&opts, vfs.as_ref())?
        } else {
            Self::create_fresh(&opts, vfs.as_ref())?
        };
        let runtime = if env.clock().is_sim() {
            None
        } else {
            Some(Runtime::new(state.last_seq))
        };
        let workers = opts.max_background_jobs.clamp(1, 16) as usize;

        let db = Db {
            inner: Arc::new(DbInner {
                opts: RwLock::new(Arc::new(opts.clone())),
                opened_opts: opts,
                cost: CostModel::default(),
                env: env.clone(),
                vfs,
                state: Mutex::new(state),
                shard,
                block_cache,
                table_cache,
                stats: Statistics::new(),
                listeners,
                last_regime: std::sync::atomic::AtomicU8::new(regime_code(WriteRegime::Normal)),
                opened_at: env.clock().now(),
                runtime,
                handles: std::sync::atomic::AtomicUsize::new(1),
                bg_retries: std::sync::atomic::AtomicU64::new(0),
                wal_rotations: std::sync::atomic::AtomicU64::new(0),
                manifest_resyncs: std::sync::atomic::AtomicU64::new(0),
                wal_sync_retries: std::sync::atomic::AtomicU64::new(0),
            }),
        };
        if let Some(rt) = &db.inner.runtime {
            for i in 0..workers {
                // Workers hold only a Weak handle: dropping the last Db
                // must shut the pool down, not leak it.
                let weak = Arc::downgrade(&db.inner);
                let bg = Arc::clone(&rt.bg);
                let handle = std::thread::Builder::new()
                    .name(format!("lsm-bg-{i}"))
                    .spawn(move || background_worker(weak, bg))
                    .map_err(|e| Error::io(format!("spawn background worker: {e}")))?;
                rt.register_worker(handle);
            }
        }
        Ok(db)
    }

    /// The newest sequence number visible to readers right now. Pass it
    /// as [`ReadOptions::snapshot_seq`] to pin a consistent snapshot;
    /// cross-shard scans capture one per shard before reading any.
    pub fn snapshot_seq(&self) -> u64 {
        let inner = &*self.inner;
        match &inner.runtime {
            Some(rt) => rt.visible_seq(),
            None => inner.state.lock().last_seq,
        }
    }

    /// The worker-pool signal handle, for cross-shard fairness kicks.
    pub(crate) fn bg_shared(&self) -> Option<Arc<crate::runtime::BgShared>> {
        self.inner.runtime.as_ref().map(|rt| Arc::clone(&rt.bg))
    }

    /// A consistent snapshot of the options currently in force. The
    /// snapshot is immutable; a concurrent [`Db::set_options`] swaps in
    /// a new snapshot rather than mutating this one.
    pub fn options(&self) -> Arc<Options> {
        self.inner.opts()
    }

    /// The current ini rendering of the options (what tuning feeds the
    /// LLM).
    pub fn options_ini(&self) -> String {
        ini::to_ini(&self.inner.opts())
    }

    /// Applies a batch of `(name, value)` option changes to the running
    /// database — no reopen. The batch is atomic: either every pair
    /// commits in one snapshot swap under the state lock, or nothing
    /// changes. Options whose registry entry is not `mutable_online`
    /// are rejected by name with a structured error; unknown names,
    /// parse failures, range violations, and cross-option invariant
    /// breaks also abort the whole batch.
    ///
    /// On a committing change the `OptionsChanged` ticker is bumped and
    /// every registered [`EventListener`] receives
    /// [`EventListener::on_options_changed`]. A batch whose pairs all
    /// parse to the values already in force is a successful no-op
    /// (no ticker, no callback).
    ///
    /// Returns the canonical `(name, from, to)` triples that took
    /// effect.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::InvalidArgument`](crate::ErrorKind) as described above; the message for
    /// immutable rejections names every offending option.
    pub fn set_options(&self, changes: &[(&str, &str)]) -> Result<Vec<(String, String, String)>> {
        let inner = &*self.inner;
        // The state lock serializes concurrent set_options calls and
        // pins every in-progress state-locked decision to a single
        // config: the swap below cannot interleave with them.
        let _state = inner.state.lock();
        let mut next = (*inner.opts()).clone();
        let outcome = next.apply_live(changes)?;
        if !outcome.committed() {
            return Err(Error::invalid_argument(format!(
                "cannot change immutable option(s) without reopen: {}",
                outcome.rejected_immutable.join(", ")
            )));
        }
        if outcome.applied.is_empty() {
            return Ok(Vec::new());
        }
        *inner.opts.write() = Arc::new(next);
        inner.stats.tickers().inc(Ticker::OptionsChanged);
        let info = crate::listener::OptionsChangedInfo {
            changes: outcome.applied.clone(),
        };
        for l in &inner.listeners {
            l.on_options_changed(&info);
        }
        Ok(outcome.applied)
    }

    fn create_fresh(opts: &Options, vfs: &dyn Vfs) -> Result<DbState> {
        let manifest_number = 1u64;
        let manifest_file = vfs.create(&manifest_file_name(manifest_number))?;
        let mut manifest = WalWriter::new(manifest_file);
        let wal_number = 2;
        let edit = VersionEdit {
            log_number: Some(wal_number),
            next_file_number: Some(3),
            last_sequence: Some(0),
            ..VersionEdit::default()
        };
        manifest.add_record(&edit.encode())?;
        manifest.sync()?;
        write_current(vfs, &manifest_file_name(manifest_number))?;

        let wal = if opts.disable_wal {
            None
        } else {
            Some(WalWriter::new(vfs.create(&wal_file_name(wal_number))?))
        };
        Ok(DbState {
            mem: Arc::new(RwLock::new(MemTable::new(memtable_bloom_bytes(opts)))),
            mem_wal_number: wal_number,
            imm: Vec::new(),
            version: Arc::new(Version::empty(opts.num_levels as usize)),
            wal,
            wals_on_disk: vec![wal_number],
            manifest,
            next_file: 3,
            last_seq: 0,
            events: BinaryHeap::new(),
            event_seq: 0,
            running_flushes: 0,
            running_compactions: 0,
            pending_compaction_bytes: 0,
            dirty_wal_bytes: 0,
            writes_since_account: 0,
            obsolete_files: Vec::new(),
        })
    }

    fn recover(opts: &Options, vfs: &dyn Vfs) -> Result<DbState> {
        // 1. Manifest replay.
        let current = vfs.read_all(CURRENT_FILE)?;
        let manifest_name = String::from_utf8(current)
            .map_err(|_| Error::corruption("CURRENT is not utf-8"))?;
        let manifest_data = vfs.read_all(manifest_name.trim())?;
        let replay = replay_wal(&manifest_data, !opts.paranoid_checks)?;
        let mut version = Version::empty(opts.num_levels as usize);
        let mut log_number = 0u64;
        let mut next_file = 3u64;
        let mut last_seq = 0u64;
        for record in &replay.records {
            let edit = VersionEdit::decode(record)?;
            if let Some(v) = edit.log_number {
                log_number = v;
            }
            if let Some(v) = edit.next_file_number {
                next_file = next_file.max(v);
            }
            if let Some(v) = edit.last_sequence {
                last_seq = last_seq.max(v);
            }
            version = version.apply(&edit)?;
        }

        // 2. WAL replay into a fresh memtable. Every intact record is
        // also kept aside so it can be re-logged into the new WAL below —
        // otherwise a second crash before the next flush would lose the
        // recovered entries (their old logs are garbage-collected).
        let mut mem = MemTable::new(memtable_bloom_bytes(opts));
        let mut replayed_records: Vec<Vec<u8>> = Vec::new();
        let mut wal_numbers: Vec<u64> = vfs
            .list("")?
            .into_iter()
            .filter_map(|name| {
                name.strip_suffix(".log")
                    .and_then(|stem| stem.parse::<u64>().ok())
            })
            .filter(|n| *n >= log_number)
            .collect();
        wal_numbers.sort_unstable();
        for n in &wal_numbers {
            let data = vfs.read_all(&wal_file_name(*n))?;
            let wal_replay = replay_wal(&data, false)?;
            for record in &wal_replay.records {
                replayed_records.push(record.clone());
                let (first_seq, batch) = WriteBatch::decode(record)?;
                // Replay everything in surviving WALs: entries that were
                // already flushed re-insert the identical (seq, value)
                // pair, which is harmless, while filtering on a sequence
                // cutoff would lose memtable-only writes (flush edits
                // record the *global* sequence, not the flushed one).
                for (i, (ty, key, value)) in batch.iter().enumerate() {
                    mem.add(first_seq + i as u64, ty, key, value);
                }
                last_seq = last_seq.max(first_seq + batch.len().saturating_sub(1) as u64);
            }
            next_file = next_file.max(n + 1);
        }

        // 3. Start a new manifest holding a full snapshot, plus a new WAL.
        let manifest_number = next_file;
        next_file += 1;
        let wal_number = next_file;
        next_file += 1;
        let mut snapshot = VersionEdit {
            log_number: Some(wal_number),
            next_file_number: Some(next_file),
            last_sequence: Some(last_seq),
            ..VersionEdit::default()
        };
        for level in 0..version.num_levels() {
            for f in version.files(level) {
                snapshot.added_files.push((level, Arc::clone(f)));
            }
        }
        let mut manifest = WalWriter::new(vfs.create(&manifest_file_name(manifest_number))?);
        manifest.add_record(&snapshot.encode())?;
        manifest.sync()?;

        // Re-log the recovered entries into the new WAL and make them
        // durable *before* switching CURRENT or deleting anything: until
        // the pointer flips, a crash recovers from the old manifest and
        // the old logs; after it flips, the new manifest + new WAL hold
        // everything.
        let wal = if opts.disable_wal {
            None
        } else {
            let mut writer = WalWriter::new(vfs.create(&wal_file_name(wal_number))?);
            for record in &replayed_records {
                writer.add_record(record)?;
            }
            writer.sync()?;
            Some(writer)
        };
        write_current(vfs, &manifest_file_name(manifest_number))?;

        // 4. Garbage-collect obsolete files from before the crash.
        let live: std::collections::HashSet<u64> =
            version.live_files().iter().map(|f| f.0).collect();
        for name in vfs.list("")? {
            if let Some(stem) = name.strip_suffix(".sst") {
                if let Ok(n) = stem.parse::<u64>() {
                    if !live.contains(&n) {
                        let _ = vfs.delete(&name);
                    }
                }
            } else if let Some(stem) = name.strip_suffix(".log") {
                if let Ok(n) = stem.parse::<u64>() {
                    if n < wal_number {
                        let _ = vfs.delete(&name);
                    }
                }
            } else if name.starts_with("MANIFEST-") && name != manifest_file_name(manifest_number)
            {
                let _ = vfs.delete(&name);
            }
        }
        let pending = pending_compaction_bytes(opts, &version);
        Ok(DbState {
            mem: Arc::new(RwLock::new(mem)),
            mem_wal_number: wal_number,
            imm: Vec::new(),
            version: Arc::new(version),
            wal,
            wals_on_disk: vec![wal_number],
            manifest,
            next_file,
            last_seq,
            events: BinaryHeap::new(),
            event_seq: 0,
            running_flushes: 0,
            running_compactions: 0,
            pending_compaction_bytes: pending,
            dirty_wal_bytes: 0,
            writes_since_account: 0,
            obsolete_files: Vec::new(),
        })
    }

    // -----------------------------------------------------------------
    // Write path
    // -----------------------------------------------------------------

    /// Inserts one key/value pair.
    ///
    /// # Errors
    ///
    /// Propagates WAL/flush I/O errors and [`ErrorKind::Busy`](crate::ErrorKind) if the write
    /// stall cannot clear.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let mut batch = WriteBatch::with_capacity(1);
        batch.put(key, value);
        self.write(batch)
    }

    /// Deletes a key (writes a tombstone).
    ///
    /// # Errors
    ///
    /// Same as [`Db::put`].
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        let mut batch = WriteBatch::with_capacity(1);
        batch.delete(key);
        self.write(batch)
    }

    /// Applies a batch atomically with default write options.
    ///
    /// # Errors
    ///
    /// Propagates WAL/flush I/O errors and [`ErrorKind::Busy`](crate::ErrorKind) if the write
    /// stall cannot clear.
    pub fn write(&self, batch: WriteBatch) -> Result<()> {
        self.write_opt(&WriteOptions::default(), batch)
    }

    /// Applies a batch atomically.
    ///
    /// In real-concurrency mode the batch joins the group-commit queue:
    /// the first queued writer becomes leader, appends every queued
    /// batch to the WAL with one write (and one sync, if any member
    /// requested it), applies them to the memtable, and wakes the
    /// followers. In simulation mode the write is applied inline under
    /// the modeled costs.
    ///
    /// # Errors
    ///
    /// Propagates WAL/flush I/O errors and [`ErrorKind::Busy`](crate::ErrorKind) if the write
    /// stall cannot clear.
    pub fn write_opt(&self, write_opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let started = self.inner.env.clock().now();
        let result = if self.inner.runtime.is_some() {
            self.write_real(write_opts, batch)
        } else {
            self.write_sim(write_opts, batch)
        };
        self.inner.stats.record(
            HistogramKind::DbWrite,
            self.inner.env.clock().now().saturating_since(started),
        );
        result
    }

    fn write_sim(&self, write_opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        let inner = &*self.inner;
        let mut state = inner.state.lock();
        let mut now = inner.env.clock().now();
        inner.pump_events(&mut state, now)?;
        inner.maybe_schedule_flush(&mut state, now)?;
        inner.maybe_schedule_compaction(&mut state, now)?;

        // Stall / slowdown loop.
        let batch_bytes = batch.approximate_bytes() as u64;
        let mut guard = 0;
        loop {
            guard += 1;
            if guard > 100_000 {
                return Err(Error::busy("write stall did not clear"));
            }
            // Rebuilt per iteration so a live change to the stall
            // thresholds or delayed_write_rate takes effect mid-stall.
            let controller = WriteController::from_options(&inner.opts());
            let regime = controller.regime(&inner.pressure(&state));
            inner.note_regime(regime);
            match regime {
                WriteRegime::Normal => break,
                WriteRegime::Delayed => {
                    inner.stats.tickers().inc(Ticker::WriteSlowdowns);
                    let delay = controller.delay_for(batch_bytes);
                    inner.env.clock().advance(delay);
                    inner.stats.tickers().add(Ticker::StallNanos, delay.as_nanos());
                    now = inner.env.clock().now();
                    inner.pump_events(&mut state, now)?;
                    break;
                }
                WriteRegime::Stopped => {
                    inner.stats.tickers().inc(Ticker::WriteStops);
                    // Schedule-then-wait: make sure any claimable relief
                    // work is in flight *before* deciding whether to wait
                    // or give up, so a queued background completion can
                    // never race the guard into a spurious Busy.
                    inner.maybe_schedule_flush(&mut state, now)?;
                    inner.maybe_schedule_compaction(&mut state, now)?;
                    let Some(next) = state.events.peek().map(|e| e.at) else {
                        // Nothing in flight can relieve the stall; give
                        // up on throttling rather than deadlock.
                        break;
                    };
                    let wait = next.saturating_since(now);
                    inner.env.clock().advance_to(next);
                    inner.stats.tickers().add(Ticker::StallNanos, wait.as_nanos());
                    now = inner.env.clock().now();
                    inner.pump_events(&mut state, now)?;
                    // The head event was consumed: that is real progress,
                    // so the no-progress guard starts over.
                    guard = 0;
                }
            }
        }

        // Assign sequence numbers.
        let first_seq = state.last_seq + 1;
        state.last_seq += batch.len() as u64;

        // WAL append.
        let mut cpu = inner.cost.write_base_cpu;
        if !inner.opts().disable_wal {
            let record = batch.encode(first_seq);
            let record_len = record.len() as u64;
            let wal = state.wal.as_mut().expect("wal enabled");
            if let Err(e) = wal.add_record(&record) {
                if e.is_retryable() {
                    // The append is atomic at the VFS layer, so a transient
                    // failure left the log at a clean frame boundary: rotate
                    // to a fresh WAL and fail only this write.
                    inner.rotate_wal(&mut state)?;
                }
                return Err(e);
            }
            inner.stats.tickers().add(Ticker::WalBytes, record_len);
            inner.stats.tickers().inc(Ticker::WalWrites);
            cpu += inner.cost.wal_record_cpu
                + SimDuration::from_nanos(
                    (record_len as f64 * inner.cost.wal_per_byte_cpu_ns) as u64,
                );
            // Incremental WAL syncing (wal_bytes_per_sync) or OS writeback.
            let per_sync = inner.opts().wal_bytes_per_sync;
            if write_opts.sync {
                // Durable write: the foreground blocks on the device sync.
                let chunk = wal.bytes_since_sync();
                wal.sync()?;
                let done = inner.env.device().submit_write(now, chunk, AccessPattern::Sequential);
                let done = inner.env.device().submit_sync(done);
                inner.env.clock().advance_to(done);
                inner.stats.tickers().inc(Ticker::WalSyncs);
            } else if per_sync > 0 && wal.bytes_since_sync() >= per_sync {
                let chunk = wal.bytes_since_sync();
                wal.sync()?;
                let done = inner.env.device().submit_write(now, chunk, AccessPattern::Sequential);
                inner.stats.tickers().inc(Ticker::WalSyncs);
                if inner.opts().strict_bytes_per_sync {
                    inner.env.clock().advance_to(done);
                }
            } else if per_sync == 0 {
                state.dirty_wal_bytes += record_len;
                if state.dirty_wal_bytes >= inner.cost.os_writeback_burst {
                    // The OS flushes a big burst of dirty pages; it does
                    // not block the writer but hogs the device.
                    inner.env.device().submit_write(
                        now,
                        state.dirty_wal_bytes,
                        AccessPattern::Sequential,
                    );
                    state.dirty_wal_bytes = 0;
                    inner.stats.tickers().inc(Ticker::WalSyncs);
                }
            }
        }

        // Memtable insert.
        let mut inserted_bytes = 0u64;
        {
            let mut mem = state.mem.write();
            for (i, (ty, key, value)) in batch.iter().enumerate() {
                mem.add(first_seq + i as u64, ty, key, value);
                inserted_bytes += (key.len() + value.len()) as u64;
            }
        }
        inner.stats.tickers().add(Ticker::KeysWritten, batch.len() as u64);
        inner.stats.tickers().add(Ticker::BytesWritten, inserted_bytes);
        cpu += SimDuration::from_nanos(
            (inserted_bytes as f64 * inner.cost.write_per_byte_cpu_ns) as u64,
        );

        // Pipelining and concurrency-control modifiers.
        let mut factor = 1.0;
        if inner.opts().enable_pipelined_write {
            factor *= if inner.env.cpu().num_cores() >= 4 { 0.88 } else { 1.05 };
        }
        if !inner.opts().allow_concurrent_memtable_write {
            factor *= 0.98; // single-writer skips the coordination
        }
        factor *= inner.foreground_contention(now);
        factor *= inner.env.memory().penalty_factor();
        inner.env.clock().advance(cpu.mul_f64(factor));

        // Memtable switch triggers.
        let mem_bytes = state.mem.read().approximate_memory_usage() as u64;
        let wal_total: u64 = state.wal.as_ref().map(|w| w.bytes_written()).unwrap_or(0);
        let db_buffer_full = inner.opts().db_write_buffer_size > 0
            && mem_bytes + state.imm_bytes() > inner.opts().db_write_buffer_size;
        if mem_bytes >= inner.opts().write_buffer_size
            || wal_total >= inner.opts().effective_max_total_wal_size()
            || db_buffer_full
        {
            inner.switch_memtable(&mut state)?;
            let now = inner.env.clock().now();
            inner.maybe_schedule_flush(&mut state, now)?;
        }

        state.writes_since_account += 1;
        if state.writes_since_account >= 1024 {
            state.writes_since_account = 0;
            inner.account_memory(&state);
        }
        Ok(())
    }

    /// Real-concurrency write: joins the group-commit queue. The first
    /// writer to find no active leader drains the queue front and
    /// commits the whole group; everyone else waits on the condvar for
    /// their id to pass the completion watermark.
    fn write_real(&self, write_opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        let inner = &*self.inner;
        let rt = inner.runtime.as_ref().expect("real mode");
        if let Some(e) = rt.fatal_error() {
            return Err(e);
        }
        // Without concurrent memtable writes, commit strictly one batch
        // at a time (the queue still serializes leaders).
        let max_group = if inner.opts().allow_concurrent_memtable_write {
            MAX_GROUP_BATCHES
        } else {
            1
        };
        let prepared = PreparedWrite::prepare(&batch, write_opts.sync);
        let mut queue = rt.commit.lock();
        let id = queue.next_id;
        queue.next_id += 1;
        queue.pending.push_back((id, prepared));
        loop {
            if queue.completed > id {
                return match queue.take_failure(id) {
                    Some(e) => Err(e),
                    None => Ok(()),
                };
            }
            if queue.leader_active {
                rt.commit_cv.wait(&mut queue);
                continue;
            }
            queue.leader_active = true;
            let take = queue.pending.len().min(max_group);
            let mut group: Vec<(u64, PreparedWrite)> = queue.pending.drain(..take).collect();
            drop(queue);
            let result = inner.commit_group(rt, &mut group);
            queue = rt.commit.lock();
            let last_id = group.last().expect("leader drained at least one").0;
            if let Err(e) = &result {
                for (gid, _) in &group {
                    queue.failures.push((*gid, e.clone()));
                }
            }
            queue.completed = last_id + 1;
            queue.leader_active = false;
            rt.commit_cv.notify_all();
            // This writer's own batch may not have been in the group it
            // led (group size capped); if so, go around again.
        }
    }

    // -----------------------------------------------------------------
    // Read path
    // -----------------------------------------------------------------

    /// Reads the newest value for `key`.
    ///
    /// # Errors
    ///
    /// Propagates I/O and corruption errors from table reads.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.get_opt(&ReadOptions::default(), key)
    }

    /// Reads the newest value for `key` under explicit [`ReadOptions`].
    ///
    /// # Errors
    ///
    /// Propagates I/O and corruption errors from table reads.
    pub fn get_opt(&self, ropts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let inner = &*self.inner;
        let started = inner.env.clock().now();
        let (mem, imm, version, snapshot) = {
            let mut state = inner.state.lock();
            if inner.runtime.is_none() {
                let now = inner.env.clock().now();
                inner.pump_events(&mut state, now)?;
            }
            (
                Arc::clone(&state.mem),
                state
                    .imm
                    .iter()
                    .map(|e| Arc::clone(&e.mem))
                    .collect::<Vec<_>>(),
                Arc::clone(&state.version),
                // Real mode: read the published watermark instead of
                // last_seq, which may include a group still committing
                // (its entries not yet in the memtable).
                match &inner.runtime {
                    Some(rt) => rt.visible_seq(),
                    None => state.last_seq,
                },
            )
        };
        // An explicit snapshot can only look backwards: clamp it to the
        // visible watermark so a stale handle never reads uncommitted state.
        let snapshot = ropts.snapshot_seq.map_or(snapshot, |s| s.min(snapshot));

        let mut cpu = inner.cost.get_base_cpu + inner.cost.memtable_probe_cpu;
        let mut found: Option<Option<Vec<u8>>> = None;

        match mem.read().get(key, snapshot) {
            MemTableGet::Found(v) => {
                inner.stats.tickers().inc(Ticker::MemtableHit);
                found = Some(Some(v));
            }
            MemTableGet::Deleted => {
                inner.stats.tickers().inc(Ticker::MemtableHit);
                found = Some(None);
            }
            MemTableGet::NotFound => {}
        }
        if found.is_none() {
            for m in &imm {
                cpu += inner.cost.memtable_probe_cpu;
                match m.get(key, snapshot) {
                    MemTableGet::Found(v) => {
                        found = Some(Some(v));
                        break;
                    }
                    MemTableGet::Deleted => {
                        found = Some(None);
                        break;
                    }
                    MemTableGet::NotFound => {}
                }
            }
        }
        if found.is_none() {
            inner.stats.tickers().inc(Ticker::MemtableMiss);
            found = inner.search_tables(&version, key, snapshot, ropts, &mut cpu)?;
        }

        let mut factor = inner.foreground_contention(inner.env.clock().now());
        if inner.opts().paranoid_checks {
            factor *= 1.08;
        }
        if inner.opts().use_direct_reads {
            factor *= 1.05;
        }
        factor *= inner.env.memory().penalty_factor();
        inner.env.clock().advance(cpu.mul_f64(factor));

        inner.stats.tickers().inc(Ticker::KeysRead);
        inner
            .stats
            .record(HistogramKind::DbGet, inner.env.clock().now().saturating_since(started));
        match found {
            Some(Some(v)) => {
                inner.stats.tickers().inc(Ticker::GetHit);
                Ok(Some(v))
            }
            _ => {
                inner.stats.tickers().inc(Ticker::GetMiss);
                Ok(None)
            }
        }
    }

    /// Reads the newest values for a batch of keys; results align 1:1
    /// with `keys`.
    ///
    /// # Errors
    ///
    /// Propagates I/O and corruption errors from table reads.
    pub fn multi_get(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>> {
        self.multi_get_opt(&ReadOptions::default(), keys)
    }

    /// Batched point reads under explicit [`ReadOptions`]. Returns one
    /// result per key, in input order.
    ///
    /// All keys are read at one snapshot (the visible watermark when the
    /// batch starts, or `ropts.snapshot_seq`), sharing a single
    /// memtable/version pin. SST probing sorts the keys so each table is
    /// opened once per batch and adjacent keys reuse the last
    /// fetched-and-parsed data block — the batch-read analog of group
    /// commit. Results are identical to calling [`get_opt`](Self::get_opt)
    /// per key at the same `snapshot_seq`.
    ///
    /// # Errors
    ///
    /// Propagates I/O and corruption errors from table reads.
    pub fn multi_get_opt(
        &self,
        ropts: &ReadOptions,
        keys: &[Vec<u8>],
    ) -> Result<Vec<Option<Vec<u8>>>> {
        let inner = &*self.inner;
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        let started = inner.env.clock().now();
        let (mem, imm, version, snapshot) = {
            let mut state = inner.state.lock();
            if inner.runtime.is_none() {
                let now = inner.env.clock().now();
                inner.pump_events(&mut state, now)?;
            }
            (
                Arc::clone(&state.mem),
                state
                    .imm
                    .iter()
                    .map(|e| Arc::clone(&e.mem))
                    .collect::<Vec<_>>(),
                Arc::clone(&state.version),
                match &inner.runtime {
                    Some(rt) => rt.visible_seq(),
                    None => state.last_seq,
                },
            )
        };
        let snapshot = ropts.snapshot_seq.map_or(snapshot, |s| s.min(snapshot));

        let mut cpu = inner.cost.get_base_cpu;
        // `None` = unresolved; `Some(None)` = resolved miss/tombstone;
        // `Some(Some(v))` = resolved hit.
        let mut results: Vec<Option<Option<Vec<u8>>>> = vec![None; keys.len()];
        let mut unresolved: Vec<usize> = Vec::new();
        {
            let mem = mem.read();
            for (i, key) in keys.iter().enumerate() {
                cpu += inner.cost.memtable_probe_cpu;
                match mem.get(key, snapshot) {
                    MemTableGet::Found(v) => {
                        inner.stats.tickers().inc(Ticker::MemtableHit);
                        results[i] = Some(Some(v));
                        continue;
                    }
                    MemTableGet::Deleted => {
                        inner.stats.tickers().inc(Ticker::MemtableHit);
                        results[i] = Some(None);
                        continue;
                    }
                    MemTableGet::NotFound => {}
                }
                for m in &imm {
                    cpu += inner.cost.memtable_probe_cpu;
                    match m.get(key, snapshot) {
                        MemTableGet::Found(v) => {
                            results[i] = Some(Some(v));
                            break;
                        }
                        MemTableGet::Deleted => {
                            results[i] = Some(None);
                            break;
                        }
                        MemTableGet::NotFound => {}
                    }
                }
                if results[i].is_none() {
                    inner.stats.tickers().inc(Ticker::MemtableMiss);
                    unresolved.push(i);
                }
            }
        }
        if !unresolved.is_empty() {
            // Sorting makes each table's candidate keys a contiguous
            // span, so every file (and its index/filter) is visited at
            // most once per batch.
            unresolved.sort_by(|&a, &b| keys[a].cmp(&keys[b]));
            inner.search_tables_multi(
                &version,
                keys,
                &mut unresolved,
                snapshot,
                ropts,
                &mut cpu,
                &mut results,
            )?;
        }

        let mut factor = inner.foreground_contention(inner.env.clock().now());
        if inner.opts().paranoid_checks {
            factor *= 1.08;
        }
        if inner.opts().use_direct_reads {
            factor *= 1.05;
        }
        factor *= inner.env.memory().penalty_factor();
        inner.env.clock().advance(cpu.mul_f64(factor));

        inner.stats.tickers().add(Ticker::KeysRead, keys.len() as u64);
        inner.stats.tickers().add(Ticker::MultiGetKeys, keys.len() as u64);
        inner.stats.tickers().inc(Ticker::MultiGetBatches);
        let out: Vec<Option<Vec<u8>>> = results.into_iter().map(|r| r.flatten()).collect();
        for v in &out {
            inner.stats.tickers().inc(if v.is_some() {
                Ticker::GetHit
            } else {
                Ticker::GetMiss
            });
        }
        inner.stats.record(
            HistogramKind::MultiGetMicros,
            inner.env.clock().now().saturating_since(started),
        );
        Ok(out)
    }

    /// Scans forward from `start`, returning up to `count` live entries.
    ///
    /// # Errors
    ///
    /// Propagates I/O and corruption errors from table reads.
    pub fn scan(&self, start: &[u8], count: usize) -> Result<ScanResult> {
        self.scan_opt(&ReadOptions::default(), start, count)
    }

    /// Scans forward from `start` under explicit [`ReadOptions`],
    /// returning up to `count` live entries.
    ///
    /// # Errors
    ///
    /// Propagates I/O and corruption errors from table reads.
    pub fn scan_opt(&self, ropts: &ReadOptions, start: &[u8], count: usize) -> Result<ScanResult> {
        let inner = &*self.inner;
        let (mem, imm, version, snapshot) = {
            let mut state = inner.state.lock();
            if inner.runtime.is_none() {
                let now = inner.env.clock().now();
                inner.pump_events(&mut state, now)?;
            }
            (
                Arc::clone(&state.mem),
                state
                    .imm
                    .iter()
                    .map(|e| Arc::clone(&e.mem))
                    .collect::<Vec<_>>(),
                Arc::clone(&state.version),
                match &inner.runtime {
                    Some(rt) => rt.visible_seq(),
                    None => state.last_seq,
                },
            )
        };

        let snapshot = ropts.snapshot_seq.map_or(snapshot, |s| s.min(snapshot));

        let target = crate::types::lookup_key(start, snapshot);
        let mut cursors: Vec<Box<dyn ScanCursor>> = Vec::new();
        cursors.push(Box::new(LockedMemCursor::new(mem, target.encoded())));
        for m in imm {
            cursors.push(Box::new(MemCursor::new(m, target.encoded())));
        }
        for f in version.files(0) {
            if f.largest.user_key() >= start {
                cursors.push(Box::new(FileCursor::open(
                    inner,
                    Arc::clone(f),
                    target.encoded(),
                    *ropts,
                )?));
            }
        }
        for level in 1..version.num_levels() {
            let files: Vec<Arc<FileMetadata>> = version
                .files(level)
                .iter()
                .filter(|f| f.largest.user_key() >= start)
                .cloned()
                .collect();
            if !files.is_empty() {
                cursors.push(Box::new(LevelCursor::open(
                    inner,
                    files,
                    target.encoded(),
                    *ropts,
                )?));
            }
        }

        let mut out = Vec::with_capacity(count.min(4096));
        let mut last_user: Option<Vec<u8>> = None;
        let mut cpu = inner.cost.get_base_cpu;
        while out.len() < count {
            // Pick the smallest current key across cursors.
            let mut best: Option<usize> = None;
            for (i, c) in cursors.iter().enumerate() {
                if let Some(k) = c.key() {
                    match best {
                        None => best = Some(i),
                        Some(b) => {
                            let bk = cursors[b].key().expect("best cursor valid");
                            if internal_key_cmp(k, bk) == std::cmp::Ordering::Less {
                                best = Some(i);
                            }
                        }
                    }
                }
            }
            let Some(idx) = best else { break };
            let key = cursors[idx].key().expect("valid").to_vec();
            let value = cursors[idx].value().expect("valid").to_vec();
            cursors[idx].advance(inner)?;
            cpu += inner.cost.scan_entry_cpu;

            let user_key = &key[..key.len() - 8];
            let tag = u64::from_le_bytes(key[key.len() - 8..].try_into().expect("tag"));
            if (tag >> 8) > snapshot {
                // The seek target only bounds the first key; entries for
                // later keys can carry sequences past our read snapshot
                // (e.g. a group commit applying concurrently). Skipping
                // them keeps scans atomic with respect to batches.
                continue;
            }
            if last_user.as_deref() == Some(user_key) {
                continue; // shadowed
            }
            last_user = Some(user_key.to_vec());
            if (tag & 0xff) == ValueType::Deletion as u64 {
                continue; // tombstone
            }
            out.push((user_key.to_vec(), value));
        }
        let factor =
            inner.foreground_contention(inner.env.clock().now()) * inner.env.memory().penalty_factor();
        inner.env.clock().advance(cpu.mul_f64(factor));
        inner.stats.tickers().add(Ticker::KeysRead, out.len() as u64);
        Ok(out)
    }

    // -----------------------------------------------------------------
    // Maintenance
    // -----------------------------------------------------------------

    /// Flushes the active memtable and waits for all pending flushes.
    ///
    /// # Errors
    ///
    /// Propagates flush I/O errors.
    pub fn flush(&self) -> Result<()> {
        let inner = &*self.inner;
        if let Some(rt) = &inner.runtime {
            let mut state = inner.state.lock();
            if !state.mem.read().is_empty() {
                inner.switch_memtable(&mut state)?;
            }
            loop {
                if let Some(e) = rt.fatal_error() {
                    return Err(e);
                }
                if state.imm.is_empty() && state.running_flushes == 0 {
                    return Ok(());
                }
                rt.bg.kick();
                rt.done_cv.wait_for(&mut state, REAL_WAIT_SLICE);
            }
        }
        let mut state = inner.state.lock();
        if !state.mem.read().is_empty() {
            inner.switch_memtable(&mut state)?;
        }
        loop {
            let now = inner.env.clock().now();
            inner.pump_events(&mut state, now)?;
            inner.maybe_schedule_flush(&mut state, now)?;
            if state.imm.is_empty() && state.running_flushes == 0 {
                return Ok(());
            }
            let Some(next) = state.events.peek().map(|e| e.at) else {
                return Ok(());
            };
            inner.env.clock().advance_to(next);
        }
    }

    /// Runs compactions until the tree is quiescent (no picks pending).
    ///
    /// # Errors
    ///
    /// Propagates compaction I/O errors.
    pub fn compact_all(&self) -> Result<()> {
        self.flush()?;
        let inner = &*self.inner;
        if let Some(rt) = &inner.runtime {
            let mut state = inner.state.lock();
            loop {
                if let Some(e) = rt.fatal_error() {
                    return Err(e);
                }
                if state.running_compactions == 0
                    && state.running_flushes == 0
                    && state.imm.is_empty()
                    && (inner.opts().disable_auto_compactions
                        || pick_compaction(&inner.opts(), &state.version).is_none())
                {
                    return Ok(());
                }
                rt.bg.kick();
                rt.done_cv.wait_for(&mut state, REAL_WAIT_SLICE);
            }
        }
        let mut state = inner.state.lock();
        loop {
            let now = inner.env.clock().now();
            inner.pump_events(&mut state, now)?;
            inner.maybe_schedule_compaction(&mut state, now)?;
            if state.running_compactions == 0 && state.running_flushes == 0 {
                let quiet = pick_compaction(&inner.opts(), &state.version).is_none();
                if quiet {
                    return Ok(());
                }
            }
            let Some(next) = state.events.peek().map(|e| e.at) else {
                return Ok(());
            };
            inner.env.clock().advance_to(next);
        }
    }

    /// Compacts every file overlapping the user-key range `[start, end]`
    /// down the tree until the range lives on a single level, flushing
    /// first. Useful for space reclamation and read-path benchmarks.
    ///
    /// # Errors
    ///
    /// Propagates flush/compaction I/O errors.
    pub fn compact_range(&self, start: &[u8], end: &[u8]) -> Result<()> {
        self.flush()?;
        let inner = &*self.inner;
        // After the push-down loop drains, one final in-place rewrite of
        // the range's bottommost files drops tombstones that already sat
        // at the bottom (RocksDB's bottommost-files pass). A single pass
        // guarantees termination.
        let mut rewrite_done = false;
        if let Some(rt) = &inner.runtime {
            // Manual compaction runs on the calling thread, like
            // RocksDB's CompactRange; automatic jobs keep their workers.
            loop {
                let mut state = inner.state.lock();
                if let Some(e) = rt.fatal_error() {
                    return Err(e);
                }
                if state.running_compactions > 0 || state.running_flushes > 0 {
                    rt.done_cv.wait_for(&mut state, REAL_WAIT_SLICE);
                    continue;
                }
                let version = Arc::clone(&state.version);
                let c = match pick_range_compaction(&version, start, end) {
                    Some(c) => c,
                    None if !rewrite_done => {
                        rewrite_done = true;
                        match pick_bottommost_rewrite(&version, start, end) {
                            Some(c) => c,
                            None => return Ok(()),
                        }
                    }
                    None => return Ok(()),
                };
                let job = inner.real_claim_merge(&mut state, c);
                drop(state);
                inner.real_run_merge(rt, job)?;
            }
        }
        let mut state = inner.state.lock();
        loop {
            let now = inner.env.clock().now();
            inner.pump_events(&mut state, now)?;
            if state.running_compactions > 0 || state.running_flushes > 0 {
                let Some(next) = state.events.peek().map(|e| e.at) else {
                    break;
                };
                inner.env.clock().advance_to(next);
                continue;
            }
            let version = Arc::clone(&state.version);
            let c = match pick_range_compaction(&version, start, end) {
                Some(c) => c,
                None if !rewrite_done => {
                    rewrite_done = true;
                    match pick_bottommost_rewrite(&version, start, end) {
                        Some(c) => c,
                        None => return Ok(()),
                    }
                }
                None => return Ok(()),
            };
            inner.schedule_merge(&mut state, now, c)?;
        }
        Ok(())
    }

    /// Blocks (advancing virtual time) until all background work is done.
    ///
    /// # Errors
    ///
    /// Propagates background job errors.
    pub fn wait_background_idle(&self) -> Result<()> {
        let inner = &*self.inner;
        if let Some(rt) = &inner.runtime {
            let mut state = inner.state.lock();
            loop {
                if let Some(e) = rt.fatal_error() {
                    return Err(e);
                }
                if state.running_flushes == 0
                    && state.running_compactions == 0
                    && !inner.has_claimable_work(&state)
                {
                    return Ok(());
                }
                rt.bg.kick();
                rt.done_cv.wait_for(&mut state, REAL_WAIT_SLICE);
            }
        }
        let mut state = inner.state.lock();
        loop {
            let now = inner.env.clock().now();
            inner.pump_events(&mut state, now)?;
            if state.events.is_empty() {
                return Ok(());
            }
            let next = state.events.peek().expect("non-empty").at;
            inner.env.clock().advance_to(next);
        }
    }

    /// The write regime the controller would choose for a write issued
    /// right now.
    ///
    /// This is a live query of the current pressure state, not the
    /// regime recorded by the last write: a caller that pauses its own
    /// writes (e.g. a server gating socket reads during a stall) still
    /// sees the regime clear once background work catches up.
    pub fn write_regime(&self) -> WriteRegime {
        let inner = &*self.inner;
        let state = inner.state.lock();
        WriteController::from_options(&inner.opts()).regime(&inner.pressure(&state))
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> DbStats {
        let inner = &*self.inner;
        let state = inner.state.lock();
        let levels = (0..state.version.num_levels())
            .map(|l| (state.version.files(l).len(), state.version.level_bytes(l)))
            .collect();
        let memtable_bytes = state.mem.read().approximate_memory_usage() as u64 + state.imm_bytes();
        let cache_snap = inner
            .block_cache
            .as_ref()
            .map(|c| c.snapshot())
            .unwrap_or_default();
        DbStats {
            tickers: inner.stats.tickers().snapshot(),
            levels,
            memtable_bytes,
            immutable_memtables: state.imm.len(),
            block_cache: cache_snap.stats,
            block_cache_capacity: cache_snap.capacity,
            pending_compaction_bytes: state.pending_compaction_bytes,
            running_background_jobs: state.running_flushes + state.running_compactions,
            last_sequence: state.last_seq,
            background_retries: inner
                .bg_retries
                .load(std::sync::atomic::Ordering::Relaxed),
            wal_rotations: inner
                .wal_rotations
                .load(std::sync::atomic::Ordering::Relaxed),
            manifest_resyncs: inner
                .manifest_resyncs
                .load(std::sync::atomic::Ordering::Relaxed),
            wal_sync_retries: inner
                .wal_sync_retries
                .load(std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Renders a RocksDB-style statistics dump: a `DB Stats` block, the
    /// per-level `Compaction Stats [default]` table, and one line per
    /// latency histogram.
    ///
    /// Works identically in both execution modes (the simulated clock
    /// reports wall time when the database runs in real-concurrency
    /// mode), so harness output is parseable either way.
    pub fn stats_text(&self) -> String {
        use std::fmt::Write as _;
        let inner = &*self.inner;
        let now = inner.env.clock().now();
        let uptime_secs = now.saturating_since(inner.opened_at).as_secs_f64().max(1e-9);
        let t = inner.stats.tickers();
        let mut out = String::new();

        // -- DB Stats ---------------------------------------------------
        // In real mode the leader appends a whole group with one vectored
        // WAL write, so `WalWrites` counts groups, not user writes;
        // `GroupCommitBatches` carries the user-write count there. Sim
        // mode commits each write individually (`GroupCommitBatches`
        // stays 0), so the WAL append count *is* the write count.
        let wal_writes = t.get(Ticker::WalWrites);
        let writes = match t.get(Ticker::GroupCommitBatches) {
            0 => wal_writes,
            b => b,
        };
        let keys = t.get(Ticker::KeysWritten);
        let groups = match t.get(Ticker::GroupCommits) {
            0 => writes,
            g => g,
        };
        let ingest = t.get(Ticker::BytesWritten);
        let wal_bytes = t.get(Ticker::WalBytes);
        let wal_syncs = t.get(Ticker::WalSyncs);
        let stall = SimDuration::from_nanos(t.get(Ticker::StallNanos));
        let stall_secs = stall.as_secs_f64();
        let _ = writeln!(out, "** DB Stats **");
        let _ = writeln!(out, "Uptime(secs): {uptime_secs:.1} total");
        let _ = writeln!(
            out,
            "Cumulative writes: {writes} writes, {keys} keys, {groups} commit groups, \
             {:.1} writes per commit group, ingest: {:.2} GB, {:.2} MB/s",
            writes as f64 / groups.max(1) as f64,
            ingest as f64 / GB,
            ingest as f64 / MB / uptime_secs,
        );
        let _ = writeln!(
            out,
            "Cumulative WAL: {wal_writes} writes, {wal_syncs} syncs, \
             {:.2} writes per sync, written: {:.2} GB",
            wal_writes as f64 / wal_syncs.max(1) as f64,
            wal_bytes as f64 / GB,
        );
        let _ = writeln!(
            out,
            "Cumulative stall: {}, {:.1} percent",
            format_hms(stall),
            100.0 * stall_secs / uptime_secs,
        );
        let _ = writeln!(
            out,
            "Cumulative reads: {} gets, {} multiget batches, {} multiget keys",
            t.get(Ticker::KeysRead),
            t.get(Ticker::MultiGetBatches),
            t.get(Ticker::MultiGetKeys),
        );

        // -- Compaction Stats -------------------------------------------
        let per_level = {
            let state = inner.state.lock();
            let targets = level_targets(&inner.opts(), &state.version);
            state.version.compaction_stats(
                &inner.stats.level_io(),
                &targets,
                inner.opts().level0_file_num_compaction_trigger.max(1) as usize,
            )
        };
        let _ = writeln!(out, "\n** Compaction Stats [default] **");
        let _ = writeln!(
            out,
            "{:>5} {:>8} {:>12} {:>7} {:>9} {:>10} {:>6} {:>10} {:>9}",
            "Level", "Files", "Size", "Score", "Read(GB)", "Write(GB)", "W-Amp", "Comp(cnt)", "KeyDrop"
        );
        let _ = writeln!(out, "{}", "-".repeat(84));
        let mut sum = CompactionLevelStats::default();
        for ls in &per_level {
            sum.files += ls.files;
            sum.bytes += ls.bytes;
            sum.bytes_read += ls.bytes_read;
            sum.bytes_written += ls.bytes_written;
            sum.jobs += ls.jobs;
            sum.keys_dropped += ls.keys_dropped;
            let _ = writeln!(out, "{}", compaction_stats_row(&format!("L{}", ls.level), ls));
        }
        sum.write_amp = if sum.bytes_read > 0 {
            sum.bytes_written as f64 / sum.bytes_read as f64
        } else if sum.bytes_written > 0 {
            1.0
        } else {
            0.0
        };
        let _ = writeln!(out, "{}", compaction_stats_row("Sum", &sum));

        // -- Histograms -------------------------------------------------
        let _ = writeln!(out, "\n** Level latency histograms (micros) **");
        for kind in [
            HistogramKind::DbGet,
            HistogramKind::MultiGetMicros,
            HistogramKind::DbWrite,
            HistogramKind::FlushTime,
            HistogramKind::CompactionTime,
            HistogramKind::SstReadMicros,
        ] {
            let h = inner.stats.histogram(kind);
            let _ = writeln!(
                out,
                "rocksdb.{} P50 : {:.2} P75 : {:.2} P99 : {:.2} P99.9 : {:.2} \
                 P99.99 : {:.2} P100 : {:.2} COUNT : {} AVG : {:.2} STDDEV : {:.2}",
                crate::stats::HISTOGRAM_NAMES[kind as usize],
                h.p50.as_micros_f64(),
                h.p75.as_micros_f64(),
                h.p99.as_micros_f64(),
                h.p999.as_micros_f64(),
                h.p9999.as_micros_f64(),
                h.max.as_micros_f64(),
                h.count,
                h.mean.as_micros_f64(),
                h.stddev.as_micros_f64(),
            );
        }

        // -- Live options -----------------------------------------------
        // Appended last so existing dump parsers are undisturbed. Lists
        // every option whose in-force value differs from the value the
        // database was opened with.
        let opts = inner.opts();
        let _ = writeln!(out, "\n** Live options **");
        let _ = writeln!(out, "options_changed: {}", t.get(Ticker::OptionsChanged));
        for (name, opened, live) in inner.opened_opts.diff(&opts) {
            let _ = writeln!(out, "  {name}: {live} (opened: {opened})");
        }
        out
    }
}

const KB: f64 = 1024.0;
const MB: f64 = 1024.0 * 1024.0;
const GB: f64 = 1024.0 * 1024.0 * 1024.0;

/// `H:M:S.millis` rendering used by the stall line of the stats dump.
fn format_hms(d: SimDuration) -> String {
    let total = d.as_secs_f64();
    let h = (total / 3600.0) as u64;
    let m = ((total % 3600.0) / 60.0) as u64;
    let s = total % 60.0;
    format!("{h:02}:{m:02}:{s:06.3} H:M:S")
}

/// A human-readable byte count as exactly two whitespace-separated
/// tokens (value and unit), keeping dump rows token-parseable.
fn format_size(bytes: u64) -> String {
    let b = bytes as f64;
    if b >= GB {
        format!("{:.2} GB", b / GB)
    } else if b >= MB {
        format!("{:.2} MB", b / MB)
    } else {
        format!("{:.2} KB", b / KB)
    }
}

/// One aligned row of the `Compaction Stats [default]` table.
fn compaction_stats_row(label: &str, ls: &CompactionLevelStats) -> String {
    format!(
        "{label:>5} {:>8} {:>12} {:>7.2} {:>9.2} {:>10.2} {:>6.1} {:>10} {:>9}",
        ls.files,
        format_size(ls.bytes),
        ls.score,
        ls.bytes_read as f64 / GB,
        ls.bytes_written as f64 / GB,
        ls.write_amp,
        ls.jobs,
        ls.keys_dropped,
    )
}

fn memtable_bloom_bytes(opts: &Options) -> usize {
    (opts.write_buffer_size as f64 * opts.memtable_prefix_bloom_size_ratio) as usize
}

/// Finds the shallowest level with unclaimed files in `[start, end]`
/// worth pushing down one level (the selection behind `compact_range`,
/// shared by both execution modes).
fn pick_range_compaction(
    version: &Version,
    start: &[u8],
    end: &[u8],
) -> Option<crate::compaction::CompactionInputs> {
    let n = version.num_levels();
    for level in 0..n - 1 {
        let overlapping = version.overlapping_files(level, start, end);
        let unclaimed: Vec<_> = overlapping
            .into_iter()
            .filter(|f| !f.is_being_compacted())
            .collect();
        if unclaimed.is_empty() {
            continue;
        }
        // Already fully pushed down? Only compact if a deeper level
        // holds overlapping data or this is not the last populated
        // level in range.
        let deeper_has_data =
            (level + 1..n).any(|l| !version.overlapping_files(l, start, end).is_empty());
        if !deeper_has_data && level > 0 && version.files(0).is_empty() {
            continue;
        }
        let output_level = level + 1;
        let bottom = version.overlapping_files(output_level, start, end);
        if bottom.iter().any(|f| f.is_being_compacted()) {
            continue;
        }
        let mut inputs: Vec<(usize, Arc<FileMetadata>)> =
            unclaimed.into_iter().map(|f| (level, f)).collect();
        inputs.extend(bottom.into_iter().map(|f| (output_level, f)));
        return Some(crate::compaction::CompactionInputs {
            inputs,
            output_level,
            reason: crate::compaction::CompactionReason::LevelSize,
        });
    }
    None
}

/// Picks the deepest level holding files in `[start, end]` for an
/// in-place rewrite, so `compact_range` drops tombstones that already
/// sit at the bottom of the range (which the push-down loop never
/// touches again). Returns `None` when the range is empty or its files
/// are claimed by another compaction.
fn pick_bottommost_rewrite(
    version: &Version,
    start: &[u8],
    end: &[u8],
) -> Option<crate::compaction::CompactionInputs> {
    for level in (0..version.num_levels()).rev() {
        let files = version.overlapping_files(level, start, end);
        if files.is_empty() {
            continue;
        }
        if files.iter().any(|f| f.is_being_compacted()) {
            return None;
        }
        return Some(crate::compaction::CompactionInputs {
            inputs: files.into_iter().map(|f| (level, f)).collect(),
            output_level: level,
            reason: crate::compaction::CompactionReason::BottommostFiles,
        });
    }
    None
}

/// Main loop of a background pool worker.
///
/// Holds only a `Weak` database handle plus the shared signal state, so
/// the pool never keeps the database alive; the handle is re-upgraded
/// per cycle and dropped before idling.
fn background_worker(db: Weak<DbInner>, bg: Arc<BgShared>) {
    let mut seen = 0u64;
    while !bg.is_shutdown() {
        let Some(inner) = db.upgrade() else { return };
        let jobs_run = inner.run_background_cycle();
        drop(inner);
        if jobs_run == 0 {
            seen = bg.wait_for_work(seen, Duration::from_millis(50));
        }
    }
}

/// A background job claimed under the state lock, executed unlocked.
enum BgJob {
    Flush {
        file_number: FileNumber,
        mems: Vec<Arc<MemTable>>,
    },
    Merge(MergeJob),
    Drop {
        files: Vec<Arc<FileMetadata>>,
    },
}

/// A claimed merging compaction with its parameters frozen at claim time.
struct MergeJob {
    inputs: Vec<(usize, Arc<FileMetadata>)>,
    output_level: usize,
    bottommost: bool,
    target_file_size: u64,
    config: TableConfig,
}

impl DbState {
    fn imm_bytes(&self) -> u64 {
        self.imm
            .iter()
            .map(|e| e.mem.approximate_memory_usage() as u64)
            .sum()
    }
}

impl DbInner {
    /// One consistent snapshot of the live options. Take exactly one
    /// snapshot per logical decision: fields read from the same `Arc`
    /// can never be torn by a concurrent [`Db::set_options`].
    fn opts(&self) -> Arc<Options> {
        Arc::clone(&self.opts.read())
    }

    /// Records the current write regime and fires
    /// `on_stall_conditions_changed` exactly once per transition.
    fn note_regime(&self, current: WriteRegime) {
        let code = regime_code(current);
        let prev = self
            .last_regime
            .swap(code, std::sync::atomic::Ordering::Relaxed);
        if prev != code {
            let info = StallConditionsChanged {
                previous: regime_from_code(prev),
                current,
            };
            for l in &self.listeners {
                l.on_stall_conditions_changed(&info);
            }
        }
    }

    fn notify_flush_completed(&self, info: &FlushJobInfo) {
        for l in &self.listeners {
            l.on_flush_completed(info);
        }
    }

    fn notify_compaction_completed(&self, info: &CompactionJobInfo) {
        for l in &self.listeners {
            l.on_compaction_completed(info);
        }
    }

    fn table_config(&self) -> TableConfig {
        let opts = self.opts();
        TableConfig {
            block_size: opts.block_size as usize,
            restart_interval: opts.block_restart_interval.max(1) as usize,
            compression: opts.compression,
            bloom_bits_per_key: if opts.whole_key_filtering {
                opts.bloom_filter_bits_per_key
            } else {
                0.0
            },
        }
    }

    fn bottom_table_config(&self) -> TableConfig {
        let opts = self.opts();
        let mut c = self.table_config();
        c.compression = opts.effective_bottommost_compression();
        if opts.optimize_filters_for_hits {
            c.bloom_bits_per_key = 0.0;
        }
        c
    }

    /// Slowdown applied to foreground CPU when background jobs occupy
    /// cores.
    fn foreground_contention(&self, now: SimTime) -> f64 {
        let cores = self.env.cpu().num_cores().max(1);
        let busy = self.env.cpu().busy_cores(now).min(cores);
        1.0 + 0.6 * busy as f64 / cores as f64
    }

    fn pressure(&self, state: &DbState) -> WritePressure {
        let mut pending = state.pending_compaction_bytes;
        if let Some(ctx) = &self.shard {
            // Publish this shard's compaction debt and charge everyone
            // else's back, so one hot shard slows all writers instead of
            // racing ahead of the shared background budget.
            let mut local = pending;
            let limit = self.opts().shard_bytes_soft_limit;
            if limit > 0 {
                local = local.saturating_add(state.version.total_bytes().saturating_sub(limit));
            }
            pending = pending.saturating_add(ctx.publish_debt_and_sum_peers(local));
        }
        WritePressure {
            l0_files: state.version.files(0).len(),
            immutable_memtables: state.imm.len(),
            total_memtables: state.imm.len() + 1,
            pending_compaction_bytes: pending,
        }
    }

    fn account_memory(&self, state: &DbState) {
        let mem_bytes = state.mem.read().approximate_memory_usage() as u64 + state.imm_bytes();
        self.env.memory().set_usage(MemoryUser::Memtables, mem_bytes);
        if let Some(c) = &self.block_cache {
            self.env.memory().set_usage(MemoryUser::BlockCache, c.used_bytes());
        }
    }

    fn alloc_file_number(&self, state: &mut DbState) -> FileNumber {
        let n = state.next_file;
        state.next_file += 1;
        FileNumber(n)
    }

    /// Appends one record to the manifest and syncs it, re-driving each
    /// step a bounded number of times on transient (retryable) errors.
    ///
    /// The append is atomic at the VFS layer (one buffered write per
    /// frame), so retrying it cannot duplicate an edit; a failed sync
    /// persisted nothing, so re-syncing is always safe.
    fn log_manifest(&self, manifest: &mut WalWriter, record: &[u8]) -> Result<()> {
        let mut attempts = 0u32;
        loop {
            match manifest.add_record(record) {
                Ok(_) => break,
                Err(e) if e.is_retryable() && attempts < MANIFEST_RETRIES => {
                    attempts += 1;
                    self.manifest_resyncs
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                Err(e) => return Err(e),
            }
        }
        let mut attempts = 0u32;
        loop {
            match manifest.sync() {
                Ok(()) => return Ok(()),
                Err(e) if e.is_retryable() && attempts < MANIFEST_RETRIES => {
                    attempts += 1;
                    self.manifest_resyncs
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Rotates to a fresh WAL file after a transient append failure.
    ///
    /// `mem_wal_number` is left untouched: it names the *oldest* log
    /// holding data for the active memtable, which still includes the
    /// pre-rotation file, so WAL GC keeps both until the next flush.
    fn rotate_wal(&self, state: &mut DbState) -> Result<()> {
        let wal_number = state.next_file;
        state.next_file += 1;
        state.wal = Some(WalWriter::new(self.vfs.create(&wal_file_name(wal_number))?));
        state.wals_on_disk.push(wal_number);
        self.wal_rotations
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    fn switch_memtable(&self, state: &mut DbState) -> Result<()> {
        let old = {
            let mut guard = state.mem.write();
            std::mem::replace(&mut *guard, MemTable::new(memtable_bloom_bytes(&self.opts())))
        };
        if old.is_empty() {
            return Ok(());
        }
        let old_wal = state.mem_wal_number;
        state.imm.push(ImmEntry {
            mem: Arc::new(old),
            wal_number: old_wal,
            flushing: false,
        });

        // New WAL file for the new memtable generation.
        if !self.opts().disable_wal {
            let wal_number = state.next_file;
            state.next_file += 1;
            state.wal = Some(WalWriter::new(self.vfs.create(&wal_file_name(wal_number))?));
            state.wals_on_disk.push(wal_number);
            state.mem_wal_number = wal_number;
        }
        self.account_memory(state);
        Ok(())
    }

    // -----------------------------------------------------------------
    // Real-concurrency mode: group commit
    // -----------------------------------------------------------------

    /// Commits a leader-drained group: one stall check, one sequence
    /// reservation, one WAL append (and at most one sync), one memtable
    /// application — all under a single state critical section.
    fn commit_group(&self, rt: &Runtime, group: &mut [(u64, PreparedWrite)]) -> Result<()> {
        let mut state = self.state.lock();
        let group_bytes: u64 = group.iter().map(|(_, p)| p.record.len() as u64).sum();
        self.real_wait_writable(rt, &mut state, group_bytes)?;

        // Reserve sequences and stamp them into the prepared batches.
        let first_seq = state.last_seq + 1;
        let mut seq = first_seq;
        let mut group_sync = false;
        for (_, prepared) in group.iter_mut() {
            prepared.patch_seq(seq);
            seq += prepared.count;
            group_sync |= prepared.sync;
        }
        let last_seq = seq - 1;
        state.last_seq = last_seq;

        // One buffered append for the whole group. The append is atomic
        // at the VFS layer, so a *transient* failure leaves the log at a
        // clean frame boundary: rotate to a fresh WAL, fail only this
        // group, and keep the database alive. Anything else is fatal —
        // later appends after a torn record would be silently dropped by
        // recovery.
        if !self.opts().disable_wal {
            let records: Vec<&[u8]> = group.iter().map(|(_, p)| p.record.as_slice()).collect();
            let wal = state.wal.as_mut().expect("wal enabled");
            match wal.add_records(&records) {
                Ok(appended) => {
                    self.stats.tickers().add(Ticker::WalBytes, appended);
                    self.stats.tickers().inc(Ticker::WalWrites);
                }
                Err(e) if e.is_retryable() => {
                    if let Err(rot) = self.rotate_wal(&mut state) {
                        rt.set_fatal(rot);
                    }
                    return Err(e);
                }
                Err(e) => {
                    rt.set_fatal(e.clone());
                    return Err(e);
                }
            }
        }

        if self.opts().enable_pipelined_write {
            // Pipelined: entries become visible before the sync returns
            // (visibility before durability, as in RocksDB).
            self.apply_group_to_memtable(&state, group);
            rt.publish_visible(last_seq);
            self.real_sync_wal(rt, &mut state, group_sync)?;
        } else {
            self.real_sync_wal(rt, &mut state, group_sync)?;
            self.apply_group_to_memtable(&state, group);
            rt.publish_visible(last_seq);
        }
        self.stats.tickers().inc(Ticker::GroupCommits);
        self.stats.tickers().add(Ticker::GroupCommitBatches, group.len() as u64);

        // Memtable switch triggers (mirrors the sim write path).
        let mem_bytes = state.mem.read().approximate_memory_usage() as u64;
        let wal_total: u64 = state.wal.as_ref().map(|w| w.bytes_written()).unwrap_or(0);
        let db_buffer_full = self.opts().db_write_buffer_size > 0
            && mem_bytes + state.imm_bytes() > self.opts().db_write_buffer_size;
        if mem_bytes >= self.opts().write_buffer_size
            || wal_total >= self.opts().effective_max_total_wal_size()
            || db_buffer_full
        {
            if let Err(e) = self.switch_memtable(&mut state) {
                rt.set_fatal(e.clone());
                return Err(e);
            }
            rt.bg.kick();
        }

        state.writes_since_account += group.len() as u64;
        if state.writes_since_account >= 1024 {
            state.writes_since_account = 0;
            self.account_memory(&state);
        }
        Ok(())
    }

    /// Blocks the leader while the write controller reports pressure,
    /// waiting on background-completion signals instead of spinning.
    fn real_wait_writable(
        &self,
        rt: &Runtime,
        state: &mut MutexGuard<'_, DbState>,
        group_bytes: u64,
    ) -> Result<()> {
        let mut stopped_for = Duration::ZERO;
        loop {
            // Rebuilt per iteration so a live change to the stall
            // thresholds or delayed_write_rate takes effect mid-stall.
            let controller = WriteController::from_options(&self.opts());
            let regime = controller.regime(&self.pressure(state));
            self.note_regime(regime);
            match regime {
                WriteRegime::Normal => return Ok(()),
                WriteRegime::Delayed => {
                    self.stats.tickers().inc(Ticker::WriteSlowdowns);
                    rt.bg.kick();
                    let delay = Duration::from_nanos(
                        controller.delay_for(group_bytes).as_nanos(),
                    )
                    .min(Duration::from_millis(100));
                    let start = std::time::Instant::now();
                    rt.done_cv.wait_for(state, delay);
                    self.stats
                        .tickers()
                        .add(Ticker::StallNanos, start.elapsed().as_nanos() as u64);
                    return Ok(());
                }
                WriteRegime::Stopped => {
                    self.stats.tickers().inc(Ticker::WriteStops);
                    if stopped_for >= REAL_STALL_TIMEOUT {
                        return Err(Error::busy("write stall did not clear"));
                    }
                    rt.bg.kick();
                    let start = std::time::Instant::now();
                    rt.done_cv.wait_for(state, Duration::from_millis(100));
                    let waited = start.elapsed();
                    stopped_for += waited;
                    self.stats.tickers().add(Ticker::StallNanos, waited.as_nanos() as u64);
                }
            }
        }
    }

    /// Syncs the WAL if the group asked for it (or `wal_bytes_per_sync`
    /// is due). A failed sync persisted nothing, so transient errors are
    /// re-driven a bounded number of times; a persistent failure is
    /// fatal: the writes were already acknowledged as appended.
    fn real_sync_wal(&self, rt: &Runtime, state: &mut DbState, group_sync: bool) -> Result<()> {
        if self.opts().disable_wal {
            return Ok(());
        }
        let per_sync = self.opts().wal_bytes_per_sync;
        let wal = state.wal.as_mut().expect("wal enabled");
        if group_sync || (per_sync > 0 && wal.bytes_since_sync() >= per_sync) {
            let mut attempts = 0u32;
            loop {
                match wal.sync() {
                    Ok(()) => break,
                    Err(e) if e.is_retryable() && attempts < WAL_SYNC_RETRIES => {
                        attempts += 1;
                        self.wal_sync_retries
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        std::thread::sleep(Duration::from_millis(1 << attempts));
                    }
                    Err(e) => {
                        rt.set_fatal(e.clone());
                        return Err(e);
                    }
                }
            }
            self.stats.tickers().inc(Ticker::WalSyncs);
        }
        Ok(())
    }

    /// Moves a group's pre-encoded entries into the active memtable.
    fn apply_group_to_memtable(&self, state: &DbState, group: &mut [(u64, PreparedWrite)]) {
        let mut keys = 0u64;
        let mut payload = 0u64;
        {
            let mut mem = state.mem.write();
            for (_, prepared) in group.iter_mut() {
                keys += prepared.count;
                payload += prepared.payload_bytes;
                for (key, value) in prepared.entries.drain(..) {
                    mem.add_encoded(key, value);
                }
            }
        }
        self.stats.tickers().add(Ticker::KeysWritten, keys);
        self.stats.tickers().add(Ticker::BytesWritten, payload);
    }

    // -----------------------------------------------------------------
    // Real-concurrency mode: background job pool
    // -----------------------------------------------------------------

    /// Claims and runs background jobs until none are claimable.
    /// Returns how many jobs ran.
    fn run_background_cycle(&self) -> usize {
        let rt = self.runtime.as_ref().expect("real mode");
        let mut jobs_run = 0;
        let mut consecutive_failures = 0u32;
        while !rt.bg.is_shutdown() {
            // Once the database is latched fatal, re-claiming work would
            // spin on the same failing job; leave everything parked.
            if rt.fatal_error().is_some() {
                break;
            }
            // Sharded databases share one global job budget: take a permit
            // before claiming so N shards respect one `max_background_jobs`
            // limit, and hand it back (kicking a peer) once the job lands.
            if let Some(ctx) = &self.shard {
                if !ctx.try_acquire_job() {
                    break;
                }
            }
            let job = {
                let mut state = self.state.lock();
                self.real_claim_job(&mut state)
            };
            let Some(job) = job else {
                // Quiet release: nothing ran, so waking peers for this
                // permit would only restart their own empty claims.
                if let Some(ctx) = &self.shard {
                    ctx.release_job(false);
                }
                break;
            };
            let result = match job {
                BgJob::Flush { file_number, mems } => self.real_run_flush(file_number, mems),
                BgJob::Merge(merge) => self.real_run_merge(rt, merge),
                BgJob::Drop { files } => self.real_run_drop(files),
            };
            if let Some(ctx) = &self.shard {
                ctx.release_job(true);
            }
            match result {
                Ok(()) => consecutive_failures = 0,
                // A retryable build-phase failure already unclaimed its
                // inputs (flushing flags / `being_compacted`), so the same
                // work is claimable again: park briefly with exponential
                // backoff and re-claim instead of latching the fatal state.
                Err(e) if e.is_retryable() && !rt.bg.is_shutdown() => {
                    consecutive_failures += 1;
                    self.bg_retries
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(
                        1u64 << consecutive_failures.min(6),
                    ));
                }
                Err(e) => rt.set_fatal(e),
            }
            jobs_run += 1;
            // Completion may unblock stalled writers and unlock further
            // claims (all waits use timeouts, so notifying without the
            // state mutex held cannot lose a wakeup permanently).
            rt.done_cv.notify_all();
            rt.bg.kick();
        }
        jobs_run
    }

    /// Whether a worker could claim a job right now (used by idle waits).
    fn has_claimable_work(&self, state: &DbState) -> bool {
        if state.running_flushes < self.opts().effective_max_flushes() {
            let min_merge = self.opts().min_write_buffer_number_to_merge.max(1) as usize;
            let waiting = state.imm.iter().filter(|e| !e.flushing).count();
            let forced = state.imm.len() + 1 > self.opts().max_write_buffer_number as usize;
            if waiting > 0 && (waiting >= min_merge || forced) {
                return true;
            }
        }
        !self.opts().disable_auto_compactions
            && state.running_compactions < self.opts().effective_max_compactions()
            && pick_compaction(&self.opts(), &state.version).is_some()
    }

    /// Claims one job under the state lock: flush first (it relieves
    /// write stalls), then an automatic compaction pick. Claimed inputs
    /// are marked (flushing flags / `being_compacted`) so concurrent
    /// workers cannot double-claim them.
    fn real_claim_job(&self, state: &mut DbState) -> Option<BgJob> {
        if state.running_flushes < self.opts().effective_max_flushes() {
            let min_merge = self.opts().min_write_buffer_number_to_merge.max(1) as usize;
            let waiting: Vec<usize> = state
                .imm
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.flushing)
                .map(|(i, _)| i)
                .collect();
            let forced = state.imm.len() + 1 > self.opts().max_write_buffer_number as usize;
            if !waiting.is_empty() && (waiting.len() >= min_merge || forced) {
                let take: Vec<usize> = waiting.into_iter().take(min_merge.max(1)).collect();
                let mems: Vec<Arc<MemTable>> =
                    take.iter().map(|i| Arc::clone(&state.imm[*i].mem)).collect();
                for i in &take {
                    state.imm[*i].flushing = true;
                }
                let file_number = self.alloc_file_number(state);
                state.running_flushes += 1;
                return Some(BgJob::Flush { file_number, mems });
            }
        }
        if !self.opts().disable_auto_compactions
            && state.running_compactions < self.opts().effective_max_compactions()
        {
            match pick_compaction(&self.opts(), &state.version)? {
                CompactionPick::Drop { files, .. } => {
                    for f in &files {
                        f.set_being_compacted(true);
                    }
                    state.running_compactions += 1;
                    return Some(BgJob::Drop { files });
                }
                CompactionPick::Merge(c) => {
                    return Some(BgJob::Merge(self.real_claim_merge(state, c)));
                }
            }
        }
        None
    }

    /// Marks a merge's inputs claimed and freezes its output parameters.
    fn real_claim_merge(
        &self,
        state: &mut DbState,
        c: crate::compaction::CompactionInputs,
    ) -> MergeJob {
        for (_, f) in &c.inputs {
            f.set_being_compacted(true);
        }
        state.running_compactions += 1;
        let output_level = c.output_level;
        let bottommost = crate::compaction::can_drop_tombstones(&state.version, &c);
        let target_file_size = self.opts().target_file_size_base.max(64 << 10)
            * (self.opts().target_file_size_multiplier.max(1) as u64)
                .pow(output_level.saturating_sub(1) as u32);
        let config = if bottommost {
            self.bottom_table_config()
        } else {
            self.table_config()
        };
        MergeJob {
            inputs: c.inputs,
            output_level,
            bottommost,
            target_file_size,
            config,
        }
    }

    /// Builds the L0 table off-lock, then installs the version edit
    /// under a short critical section.
    fn real_run_flush(&self, file_number: FileNumber, mems: Vec<Arc<MemTable>>) -> Result<()> {
        let flush_started = self.env.clock().now();
        let built = build_l0_table(self.vfs.as_ref(), file_number, &mems, self.table_config());
        let mut state = self.state.lock();
        let output = match built {
            Ok(f) => f,
            Err(e) => {
                for entry in state.imm.iter_mut() {
                    if mems.iter().any(|m| Arc::ptr_eq(m, &entry.mem)) {
                        entry.flushing = false;
                    }
                }
                state.running_flushes -= 1;
                let _ = self.vfs.delete(&sst_file_name(file_number));
                return Err(e);
            }
        };
        let finished = &output.table;
        self.stats.tickers().inc(Ticker::FlushJobs);
        self.stats.tickers().add(Ticker::FlushBytesWritten, finished.file_size);
        self.stats.add_level_io(0, 0, finished.file_size, output.entries_dropped);
        self.stats.record(
            HistogramKind::FlushTime,
            self.env.clock().now().saturating_since(flush_started),
        );
        let meta = Arc::new(FileMetadata::new(
            file_number,
            finished.file_size,
            finished.smallest.clone(),
            finished.largest.clone(),
            finished.properties.num_entries,
        ));
        // Remove exactly the memtables this job consumed (identified by
        // pointer: concurrent flushes may interleave completions).
        state
            .imm
            .retain(|e| !mems.iter().any(|m| Arc::ptr_eq(m, &e.mem)));
        let min_wal = state
            .imm
            .iter()
            .map(|e| e.wal_number)
            .chain(std::iter::once(state.mem_wal_number))
            .min()
            .unwrap_or(state.mem_wal_number);
        let mut edit = VersionEdit {
            log_number: Some(min_wal),
            next_file_number: Some(state.next_file),
            last_sequence: Some(state.last_seq),
            ..VersionEdit::default()
        };
        edit.added_files.push((0, meta));
        // Install-phase failures (after bounded in-place retries) are not
        // recoverable by re-running the job: the memtables were already
        // detached above. Escalate as non-retryable so the worker latches
        // the fatal state instead of parking.
        self.log_manifest(&mut state.manifest, &edit.encode())
            .map_err(|e| e.retryable(false))?;
        state.version = Arc::new(state.version.apply(&edit)?);
        state.wals_on_disk.retain(|n| {
            if *n < min_wal {
                let _ = self.vfs.delete(&wal_file_name(*n));
                false
            } else {
                true
            }
        });
        state.running_flushes -= 1;
        state.pending_compaction_bytes = pending_compaction_bytes(&self.opts(), &state.version);
        self.account_memory(&state);
        self.sweep_obsolete(&mut state);
        drop(state);
        self.notify_flush_completed(&FlushJobInfo {
            file_number,
            file_size: output.table.file_size,
            num_entries: output.table.properties.num_entries,
            memtables_merged: mems.len(),
        });
        Ok(())
    }

    /// Runs a claimed merge off-lock (output file numbers are allocated
    /// through short re-locks), then installs the edit.
    fn real_run_merge(&self, _rt: &Runtime, job: MergeJob) -> Result<()> {
        let merge_started = self.env.clock().now();
        let files: Vec<Arc<FileMetadata>> =
            job.inputs.iter().map(|(_, f)| Arc::clone(f)).collect();
        let output = run_compaction(
            self.vfs.as_ref(),
            &files,
            job.bottommost,
            job.target_file_size,
            &job.config,
            || {
                let mut state = self.state.lock();
                self.alloc_file_number(&mut state)
            },
        );
        let output = match output {
            Ok(o) => o,
            Err(e) => {
                let mut state = self.state.lock();
                for (_, f) in &job.inputs {
                    f.set_being_compacted(false);
                }
                state.running_compactions -= 1;
                return Err(e);
            }
        };
        let keys_dropped = output.entries_read - output.entries_written;
        self.stats.tickers().inc(Ticker::CompactionJobs);
        self.stats.tickers().add(Ticker::CompactionBytesRead, output.bytes_read);
        self.stats
            .tickers()
            .add(Ticker::CompactionBytesWritten, output.bytes_written);
        self.stats.tickers().add(Ticker::CompactionKeyDropped, keys_dropped);
        self.stats.add_level_io(
            job.output_level,
            output.bytes_read,
            output.bytes_written,
            keys_dropped,
        );
        self.stats.record(
            HistogramKind::CompactionTime,
            self.env.clock().now().saturating_since(merge_started),
        );

        let mut state = self.state.lock();
        let mut edit = VersionEdit {
            next_file_number: Some(state.next_file),
            last_sequence: Some(state.last_seq),
            ..VersionEdit::default()
        };
        for (level, f) in &job.inputs {
            edit.deleted_files.push((*level, f.number));
        }
        for (number, fin) in &output.files {
            edit.added_files.push((
                job.output_level,
                Arc::new(FileMetadata::new(
                    *number,
                    fin.file_size,
                    fin.smallest.clone(),
                    fin.largest.clone(),
                    fin.properties.num_entries,
                )),
            ));
        }
        self.log_manifest(&mut state.manifest, &edit.encode())
            .map_err(|e| e.retryable(false))?;
        state.version = Arc::new(state.version.apply(&edit)?);
        for (_, f) in &job.inputs {
            f.set_being_compacted(false);
            state.obsolete_files.push(Arc::clone(f));
        }
        state.running_compactions -= 1;
        state.pending_compaction_bytes = pending_compaction_bytes(&self.opts(), &state.version);
        self.sweep_obsolete(&mut state);
        drop(state);
        self.notify_compaction_completed(&CompactionJobInfo {
            output_level: job.output_level,
            input_files: job.inputs.len(),
            output_files: output.files.len(),
            bytes_read: output.bytes_read,
            bytes_written: output.bytes_written,
            keys_dropped,
        });
        Ok(())
    }

    /// Applies a claimed FIFO drop under the state lock.
    fn real_run_drop(&self, files: Vec<Arc<FileMetadata>>) -> Result<()> {
        let mut state = self.state.lock();
        let mut edit = VersionEdit::default();
        for f in &files {
            edit.deleted_files.push((0, f.number));
        }
        self.log_manifest(&mut state.manifest, &edit.encode())
            .map_err(|e| e.retryable(false))?;
        state.version = Arc::new(state.version.apply(&edit)?);
        for f in files {
            f.set_being_compacted(false);
            state.obsolete_files.push(f);
        }
        state.running_compactions -= 1;
        self.sweep_obsolete(&mut state);
        Ok(())
    }

    /// Physically deletes obsolete SSTs whose only remaining reference
    /// is the obsolete list itself (no version or in-flight reader can
    /// still open them).
    fn sweep_obsolete(&self, state: &mut DbState) {
        let pending = std::mem::take(&mut state.obsolete_files);
        for f in pending {
            if Arc::strong_count(&f) == 1 {
                let _ = self.vfs.delete(&sst_file_name(f.number));
                self.release_table_readers(self.table_cache.evict(f.number));
                self.stats.tickers().inc(Ticker::FilesDeleted);
            } else {
                state.obsolete_files.push(f);
            }
        }
    }

    // -----------------------------------------------------------------
    // Background scheduling
    // -----------------------------------------------------------------

    fn push_event(&self, state: &mut DbState, at: SimTime, kind: EventKind) {
        state.event_seq += 1;
        let seq = state.event_seq;
        state.events.push(Event { at, seq, kind });
    }

    fn maybe_schedule_flush(&self, state: &mut DbState, now: SimTime) -> Result<()> {
        let min_merge = self.opts().min_write_buffer_number_to_merge.max(1) as usize;
        loop {
            if state.running_flushes >= self.opts().effective_max_flushes() {
                return Ok(());
            }
            let waiting: Vec<usize> = state
                .imm
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.flushing)
                .map(|(i, _)| i)
                .collect();
            // Flush when enough memtables accumulated, or when the write
            // path is blocked on memtable count (can't wait for more).
            let forced = state.imm.len() + 1 > self.opts().max_write_buffer_number as usize;
            if waiting.is_empty() || (waiting.len() < min_merge && !forced) {
                return Ok(());
            }
            let take: Vec<usize> = waiting.into_iter().take(min_merge.max(1)).collect();
            let mems: Vec<Arc<MemTable>> =
                take.iter().map(|i| Arc::clone(&state.imm[*i].mem)).collect();
            for i in &take {
                state.imm[*i].flushing = true;
            }
            let file_number = self.alloc_file_number(state);

            // Build the table eagerly; account its cost on the hardware.
            let built = match build_l0_table(
                self.vfs.as_ref(),
                file_number,
                &mems,
                self.table_config(),
            ) {
                Ok(f) => f,
                Err(e) => {
                    for i in &take {
                        state.imm[*i].flushing = false;
                    }
                    let _ = self.vfs.delete(&sst_file_name(file_number));
                    return Err(e);
                }
            };
            let entries_dropped = built.entries_dropped;
            let finished = built.table;

            let raw = finished.properties.raw_bytes;
            let cpu_cost = SimDuration::from_secs_f64(raw as f64 / self.cost.flush_cpu_bps)
                + finished.compression_cpu;
            let slot = self.env.cpu().run(now, cpu_cost);
            let io_done = self.submit_background_write(slot.start, finished.file_size);
            let mut end = slot.end.max(io_done);
            if self.opts().rate_limiter_bytes_per_sec > 0 {
                let min_dur = SimDuration::from_secs_f64(
                    finished.file_size as f64 / self.opts().rate_limiter_bytes_per_sec as f64,
                );
                end = end.max(slot.start + min_dur);
            }
            let end = slot.start + (end - slot.start).mul_f64(self.env.memory().penalty_factor());

            self.stats.tickers().inc(Ticker::FlushJobs);
            self.stats.tickers().add(Ticker::FlushBytesWritten, finished.file_size);
            self.stats
                .add_level_io(0, 0, finished.file_size, entries_dropped);
            self.stats
                .record(HistogramKind::FlushTime, end.saturating_since(now));
            state.running_flushes += 1;
            let mems_consumed = take.len();
            self.push_event(
                state,
                end,
                EventKind::FlushDone {
                    file_number,
                    finished,
                    mems_consumed,
                },
            );
        }
    }

    /// Submits a background sequential write in `bytes_per_sync`-sized
    /// chunks (or one OS burst) and returns the last completion.
    fn submit_background_write(&self, start: SimTime, total: u64) -> SimTime {
        let chunk = if self.opts().bytes_per_sync > 0 {
            self.opts().bytes_per_sync
        } else {
            self.cost.os_writeback_burst
        }
        .max(64 << 10);
        let mut remaining = total;
        let mut done = start;
        let mut at = start;
        while remaining > 0 {
            let n = remaining.min(chunk);
            done = self.env.device().submit_write(at, n, AccessPattern::Sequential);
            at = done;
            remaining -= n;
        }
        // Durability point at file close.
        self.env.device().submit_sync(done)
    }

    fn maybe_schedule_compaction(&self, state: &mut DbState, now: SimTime) -> Result<()> {
        if self.opts().disable_auto_compactions {
            return Ok(());
        }
        while state.running_compactions < self.opts().effective_max_compactions() {
            let Some(pick) = pick_compaction(&self.opts(), &state.version) else {
                return Ok(());
            };
            match pick {
                CompactionPick::Drop { files, .. } => {
                    for f in &files {
                        f.set_being_compacted(true);
                    }
                    state.running_compactions += 1;
                    self.push_event(
                        state,
                        now + SimDuration::from_micros(500),
                        EventKind::FifoDropDone { files },
                    );
                }
                CompactionPick::Merge(c) => {
                    self.schedule_merge(state, now, c)?;
                }
            }
        }
        Ok(())
    }

    /// Executes one merging compaction and schedules its completion.
    fn schedule_merge(
        &self,
        state: &mut DbState,
        now: SimTime,
        c: crate::compaction::CompactionInputs,
    ) -> Result<()> {
        for (_, f) in &c.inputs {
            f.set_being_compacted(true);
        }
        let output_level = c.output_level;
        let bottommost = crate::compaction::can_drop_tombstones(&state.version, &c);
        let target = self.opts().target_file_size_base.max(64 << 10)
            * (self.opts().target_file_size_multiplier.max(1) as u64)
                .pow(output_level.saturating_sub(1) as u32);
        let config = if bottommost {
            self.bottom_table_config()
        } else {
            self.table_config()
        };
        let files: Vec<Arc<FileMetadata>> =
            c.inputs.iter().map(|(_, f)| Arc::clone(f)).collect();
        // Allocate output numbers through a small local pool.
        let output = {
            let state_ref: &mut DbState = state;
            let mut next = state_ref.next_file;
            let result = run_compaction(
                self.vfs.as_ref(),
                &files,
                bottommost,
                target,
                &config,
                || {
                    let n = next;
                    next += 1;
                    FileNumber(n)
                },
            );
            state_ref.next_file = next;
            result
        };
        let output = match output {
            Ok(o) => o,
            Err(e) => {
                for (_, f) in &c.inputs {
                    f.set_being_compacted(false);
                }
                return Err(e);
            }
        };

        // Cost model: chunked reads (readahead), chunked
        // writes, merge CPU split across subcompactions.
        let readahead = self.opts().compaction_readahead_size.max(64 << 10);
        let rotational = self.env.device().model().class.is_rotational();
        let read_pattern = if rotational {
            AccessPattern::Random // one seek per readahead chunk
        } else {
            AccessPattern::Sequential
        };
        let subs = (self.opts().max_subcompactions.max(1) as usize)
            .min(files.len())
            .max(1);
        let cpu_total = SimDuration::from_secs_f64(
            output.bytes_read as f64 / self.cost.compaction_cpu_bps,
        ) + SimDuration::from_nanos(
            output.entries_read
                * self.cost.compaction_entry_cpu.as_nanos(),
        ) + output.compression_cpu
            + if self.opts().compression != crate::options::CompressionType::None {
                decompress_cpu_cost(self.opts().compression, output.bytes_read as usize)
            } else {
                SimDuration::ZERO
            };
        let per_sub = cpu_total.mul_f64(1.0 / subs as f64);
        let mut cpu_end = now;
        let mut start = now;
        for _ in 0..subs {
            let slot = self.env.cpu().run(now, per_sub);
            cpu_end = cpu_end.max(slot.end);
            start = start.max(slot.start);
        }
        // Reads.
        let mut io_end = start;
        let mut at = start;
        let mut remaining = output.bytes_read;
        while remaining > 0 {
            let n = remaining.min(readahead);
            io_end = self.env.device().submit_read(at, n, read_pattern);
            at = io_end;
            remaining -= n;
        }
        // Writes.
        let write_done = self.submit_background_write(start, output.bytes_written);
        let mut end = cpu_end.max(io_end).max(write_done);
        if self.opts().rate_limiter_bytes_per_sec > 0 {
            let min_dur = SimDuration::from_secs_f64(
                (output.bytes_read + output.bytes_written) as f64
                    / self.opts().rate_limiter_bytes_per_sec as f64,
            );
            end = end.max(start + min_dur);
        }
        let end = start + (end - start).mul_f64(self.env.memory().penalty_factor());

        let keys_dropped = output.entries_read - output.entries_written;
        self.stats.tickers().inc(Ticker::CompactionJobs);
        self.stats.tickers().add(Ticker::CompactionBytesRead, output.bytes_read);
        self.stats.tickers().add(Ticker::CompactionBytesWritten, output.bytes_written);
        self.stats.tickers().add(Ticker::CompactionKeyDropped, keys_dropped);
        self.stats.add_level_io(
            output_level,
            output.bytes_read,
            output.bytes_written,
            keys_dropped,
        );
        self.stats
            .record(HistogramKind::CompactionTime, end.saturating_since(now));
        state.running_compactions += 1;
        self.push_event(
            state,
            end,
            EventKind::CompactionDone {
                inputs: c.inputs,
                outputs: output.files,
                output_level,
                bytes_read: output.bytes_read,
                keys_dropped,
            },
        );

        Ok(())
    }

    // -----------------------------------------------------------------
    // Event application
    // -----------------------------------------------------------------

    fn pump_events(&self, state: &mut DbState, now: SimTime) -> Result<()> {
        while state.events.peek().map(|e| e.at <= now).unwrap_or(false) {
            let event = state.events.pop().expect("peeked");
            match event.kind {
                EventKind::FlushDone {
                    file_number,
                    finished,
                    mems_consumed,
                } => {
                    self.apply_flush_done(state, event.at, file_number, finished, mems_consumed)?;
                }
                EventKind::CompactionDone {
                    inputs,
                    outputs,
                    output_level,
                    bytes_read,
                    keys_dropped,
                } => {
                    self.apply_compaction_done(
                        state,
                        event.at,
                        inputs,
                        outputs,
                        output_level,
                        bytes_read,
                        keys_dropped,
                    )?;
                }
                EventKind::FifoDropDone { files } => {
                    self.apply_fifo_drop(state, event.at, files)?;
                }
            }
        }
        Ok(())
    }

    fn apply_flush_done(
        &self,
        state: &mut DbState,
        at: SimTime,
        file_number: FileNumber,
        finished: FinishedTable,
        mems_consumed: usize,
    ) -> Result<()> {
        let meta = Arc::new(FileMetadata::new(
            file_number,
            finished.file_size,
            finished.smallest.clone(),
            finished.largest.clone(),
            finished.properties.num_entries,
        ));
        // Remove the consumed memtables (the oldest `mems_consumed`
        // flushing entries).
        let mut removed = 0;
        state.imm.retain(|e| {
            if e.flushing && removed < mems_consumed {
                removed += 1;
                false
            } else {
                true
            }
        });
        // WALs older than every remaining memtable can go.
        let min_wal = state
            .imm
            .iter()
            .map(|e| e.wal_number)
            .chain(std::iter::once(state.mem_wal_number))
            .min()
            .unwrap_or(state.mem_wal_number);
        let mut edit = VersionEdit {
            log_number: Some(min_wal),
            next_file_number: Some(state.next_file),
            last_sequence: Some(state.last_seq),
            ..VersionEdit::default()
        };
        edit.added_files.push((0, Arc::clone(&meta)));
        self.log_manifest(&mut state.manifest, &edit.encode())?;
        self.env.device().submit_write(at, 128, AccessPattern::Sequential);
        state.version = Arc::new(state.version.apply(&edit)?);
        state.wals_on_disk.retain(|n| {
            if *n < min_wal {
                let _ = self.vfs.delete(&wal_file_name(*n));
                false
            } else {
                true
            }
        });
        state.running_flushes -= 1;
        state.pending_compaction_bytes = pending_compaction_bytes(&self.opts(), &state.version);
        self.account_memory(state);
        self.notify_flush_completed(&FlushJobInfo {
            file_number,
            file_size: finished.file_size,
            num_entries: finished.properties.num_entries,
            memtables_merged: mems_consumed,
        });
        self.maybe_schedule_flush(state, at)?;
        self.maybe_schedule_compaction(state, at)?;
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_compaction_done(
        &self,
        state: &mut DbState,
        at: SimTime,
        inputs: Vec<(usize, Arc<FileMetadata>)>,
        outputs: Vec<(FileNumber, FinishedTable)>,
        output_level: usize,
        bytes_read: u64,
        keys_dropped: u64,
    ) -> Result<()> {
        let mut edit = VersionEdit {
            next_file_number: Some(state.next_file),
            last_sequence: Some(state.last_seq),
            ..VersionEdit::default()
        };
        for (level, f) in &inputs {
            edit.deleted_files.push((*level, f.number));
        }
        for (number, fin) in &outputs {
            edit.added_files.push((
                output_level,
                Arc::new(FileMetadata::new(
                    *number,
                    fin.file_size,
                    fin.smallest.clone(),
                    fin.largest.clone(),
                    fin.properties.num_entries,
                )),
            ));
        }
        self.log_manifest(&mut state.manifest, &edit.encode())?;
        self.env.device().submit_write(at, 256, AccessPattern::Sequential);
        state.version = Arc::new(state.version.apply(&edit)?);
        for (_, f) in &inputs {
            f.set_being_compacted(false);
            let _ = self.vfs.delete(&sst_file_name(f.number));
            self.release_table_readers(self.table_cache.evict(f.number));
            self.stats.tickers().inc(Ticker::FilesDeleted);
        }
        state.running_compactions -= 1;
        state.pending_compaction_bytes = pending_compaction_bytes(&self.opts(), &state.version);
        self.notify_compaction_completed(&CompactionJobInfo {
            output_level,
            input_files: inputs.len(),
            output_files: outputs.len(),
            bytes_read,
            bytes_written: outputs.iter().map(|(_, fin)| fin.file_size).sum(),
            keys_dropped,
        });
        self.maybe_schedule_compaction(state, at)?;
        Ok(())
    }

    fn apply_fifo_drop(
        &self,
        state: &mut DbState,
        at: SimTime,
        files: Vec<Arc<FileMetadata>>,
    ) -> Result<()> {
        let mut edit = VersionEdit::default();
        for f in &files {
            edit.deleted_files.push((0, f.number));
        }
        self.log_manifest(&mut state.manifest, &edit.encode())?;
        state.version = Arc::new(state.version.apply(&edit)?);
        for f in &files {
            f.set_being_compacted(false);
            let _ = self.vfs.delete(&sst_file_name(f.number));
            self.release_table_readers(self.table_cache.evict(f.number));
            self.stats.tickers().inc(Ticker::FilesDeleted);
        }
        state.running_compactions -= 1;
        self.maybe_schedule_compaction(state, at)?;
        Ok(())
    }

    // -----------------------------------------------------------------
    // Table access with timing
    // -----------------------------------------------------------------

    /// File id used in block-cache keys. Shards of a [`crate::ShardedDb`]
    /// share one cache but allocate file numbers independently, so each
    /// shard tags its keys in the (otherwise unreachable) high bits.
    fn cache_file_id(&self, file: FileNumber) -> FileNumber {
        match &self.shard {
            Some(ctx) => FileNumber(file.0 | ctx.cache_tag()),
            None => file,
        }
    }

    fn open_table(
        &self,
        file: &FileMetadata,
        ropts: &ReadOptions,
        cpu: &mut SimDuration,
    ) -> Result<Arc<TableReader>> {
        if let Some(r) = self.table_cache.get(file.number) {
            // With cache_index_and_filter_blocks the resident metadata
            // lives in the block cache and may have been evicted; charge
            // a re-read when it is gone. The re-read is accounted like
            // the cold open below: it is the same index+filter I/O, just
            // triggered by block-cache pressure instead of a first open.
            if self.opts().cache_index_and_filter_blocks {
                if let Some(cache) = &self.block_cache {
                    let key = BlockKey {
                        file: self.cache_file_id(file.number),
                        offset: u64::MAX,
                    };
                    if cache.get(&key).is_none() {
                        let now = self.env.clock().now();
                        let bytes = r.resident_bytes().max(4096);
                        let done =
                            self.env.device().submit_read(now, bytes, AccessPattern::Random);
                        self.env.clock().advance_to(done);
                        self.stats.tickers().inc(Ticker::TableOpens);
                        self.stats.tickers().add(Ticker::BytesRead, bytes);
                        self.stats
                            .record(HistogramKind::SstReadMicros, done.saturating_since(now));
                        if ropts.fill_cache {
                            cache
                                .insert(key, Arc::new(vec![0u8; r.resident_bytes() as usize]));
                        }
                    }
                }
            }
            return Ok(r);
        }
        let handle = self.vfs.open(&sst_file_name(file.number))?;
        let (reader, bytes_read) = TableReader::open(handle)?;
        // Footer + index + filter: three random reads.
        let now = self.env.clock().now();
        let mut done = now;
        for part in split3(bytes_read) {
            done = self.env.device().submit_read(done, part, AccessPattern::Random);
        }
        self.env.clock().advance_to(done);
        *cpu += SimDuration::from_micros(3); // parse footer/index/filter
        self.stats.tickers().inc(Ticker::TableOpens);
        self.stats.tickers().add(Ticker::BytesRead, bytes_read);
        self.stats
            .record(HistogramKind::SstReadMicros, done.saturating_since(now));
        let reader = Arc::new(reader);
        if self.opts().cache_index_and_filter_blocks {
            // `fill_cache` governs block-cache population for reads, and
            // the resident metadata lives in the block cache here — so a
            // no-fill read leaves it out (the next open re-reads it),
            // matching what fetch_block does for data blocks.
            if let Some(cache) = &self.block_cache {
                if ropts.fill_cache {
                    cache.insert(
                        BlockKey {
                            file: self.cache_file_id(file.number),
                            offset: u64::MAX,
                        },
                        Arc::new(vec![0u8; reader.resident_bytes() as usize]),
                    );
                }
            }
        } else {
            self.env
                .memory()
                .reserve(MemoryUser::TableCache, reader.resident_bytes());
        }
        let displaced = self.table_cache.insert(file.number, Arc::clone(&reader));
        self.stats
            .tickers()
            .add(Ticker::TableCacheEvictions, displaced.len() as u64);
        self.release_table_readers(displaced);
        Ok(reader)
    }

    /// Releases the `MemoryUser::TableCache` reservation held against
    /// readers leaving the table cache (capacity eviction, compaction
    /// deletion, or same-file replacement). Reservations are only taken
    /// when metadata lives outside the block cache.
    fn release_table_readers<I: IntoIterator<Item = Arc<TableReader>>>(&self, readers: I) {
        if self.opts().cache_index_and_filter_blocks {
            return;
        }
        for r in readers {
            self.env
                .memory()
                .release(MemoryUser::TableCache, r.resident_bytes());
        }
    }

    /// Fetches an uncompressed block through the cache, charging device
    /// time on miss.
    fn fetch_block(
        &self,
        reader: &TableReader,
        file: FileNumber,
        handle: crate::sstable::table::BlockHandle,
        ropts: &ReadOptions,
        cpu: &mut SimDuration,
    ) -> Result<Arc<Vec<u8>>> {
        let now = self.env.clock().now();
        let (data, done) = self.fetch_block_at(reader, file, handle, ropts, cpu, now)?;
        self.env.clock().advance_to(done);
        Ok(data)
    }

    /// [`fetch_block`](Self::fetch_block) without the clock advance: the
    /// read is submitted at `submit_at` and the completion instant is
    /// returned to the caller. The multi_get path submits a whole batch
    /// of block reads from one instant — they overlap on the device's
    /// channels (effective queue depth = batch size) — then advances the
    /// clock once to the latest completion.
    #[allow(clippy::too_many_arguments)]
    fn fetch_block_at(
        &self,
        reader: &TableReader,
        file: FileNumber,
        handle: crate::sstable::table::BlockHandle,
        ropts: &ReadOptions,
        cpu: &mut SimDuration,
        submit_at: SimTime,
    ) -> Result<(Arc<Vec<u8>>, SimTime)> {
        let key = BlockKey {
            file: self.cache_file_id(file),
            offset: handle.offset,
        };
        if let Some(cache) = &self.block_cache {
            if let Some(b) = cache.get(&key) {
                self.stats.tickers().inc(Ticker::BlockCacheHit);
                *cpu += self.cost.cache_hit_cpu;
                return Ok((b, submit_at));
            }
            self.stats.tickers().inc(Ticker::BlockCacheMiss);
        }
        let fetch = reader.read_block_with(handle, ropts.verify_checksums)?;
        let done = self
            .env
            .device()
            .submit_read(submit_at, fetch.io_bytes, AccessPattern::Random);
        self.stats.tickers().add(Ticker::BytesRead, fetch.io_bytes);
        self.stats
            .record(HistogramKind::SstReadMicros, done.saturating_since(submit_at));
        if fetch.was_compressed {
            *cpu += decompress_cpu_cost(self.opts().compression, fetch.data.len());
        }
        let data = Arc::new(fetch.data);
        if let Some(cache) = &self.block_cache {
            if ropts.fill_cache {
                cache.insert(key, Arc::clone(&data));
            }
        }
        Ok((data, done))
    }

    fn search_tables(
        &self,
        version: &Version,
        key: &[u8],
        snapshot: SequenceNumber,
        ropts: &ReadOptions,
        cpu: &mut SimDuration,
    ) -> Result<Option<Option<Vec<u8>>>> {
        let target = crate::types::lookup_key(key, snapshot);
        // L0: newest first, ranges may overlap.
        for f in version.files(0) {
            if key < f.smallest.user_key() || key > f.largest.user_key() {
                continue;
            }
            if let Some(result) = self.probe_table(f, key, &target, ropts, cpu)? {
                return Ok(Some(result));
            }
        }
        // Deeper levels: at most one file can contain the key.
        for level in 1..version.num_levels() {
            let files = version.files(level);
            if files.is_empty() {
                continue;
            }
            // Binary search by largest user key.
            let idx = files.partition_point(|f| f.largest.user_key() < key);
            if idx >= files.len() {
                continue;
            }
            let f = &files[idx];
            if key < f.smallest.user_key() {
                continue;
            }
            *cpu += SimDuration::from_nanos(60); // range binary search
            if let Some(result) = self.probe_table(f, key, &target, ropts, cpu)? {
                return Ok(Some(result));
            }
        }
        Ok(None)
    }

    fn probe_table(
        &self,
        file: &FileMetadata,
        user_key: &[u8],
        target: &InternalKey,
        ropts: &ReadOptions,
        cpu: &mut SimDuration,
    ) -> Result<Option<Option<Vec<u8>>>> {
        let reader = self.open_table(file, ropts, cpu)?;
        if reader.has_filter() {
            self.stats.tickers().inc(Ticker::BloomChecked);
            *cpu += self.cost.bloom_check_cpu;
            if !reader.may_contain(user_key) {
                self.stats.tickers().inc(Ticker::BloomUseful);
                return Ok(None);
            }
        }
        *cpu += self.cost.index_seek_cpu;
        let Some(handle) = reader.find_block(target.encoded())? else {
            return Ok(None);
        };
        let data = self.fetch_block(&reader, file.number, handle, ropts, cpu)?;
        let block = Block::parse(data.as_ref().clone())?;
        *cpu += SimDuration::from_nanos(300); // block binary search + scan
        match block.seek(target.encoded())? {
            Some((k, v)) => {
                let found_user = &k[..k.len() - 8];
                if found_user != user_key {
                    return Ok(None);
                }
                let tag = u64::from_le_bytes(k[k.len() - 8..].try_into().expect("tag"));
                if (tag & 0xff) == ValueType::Deletion as u64 {
                    Ok(Some(None))
                } else {
                    Ok(Some(Some(v)))
                }
            }
            None => Ok(None),
        }
    }

    /// Batched [`search_tables`](Self::search_tables): resolves the keys at
    /// `unresolved` (indices into `keys`, sorted by key) against the SSTs,
    /// opening each table at most once per batch. `results[i]` is written
    /// exactly where a per-key `search_tables` would have returned `Some`.
    #[allow(clippy::too_many_arguments)]
    fn search_tables_multi(
        &self,
        version: &Version,
        keys: &[Vec<u8>],
        unresolved: &mut Vec<usize>,
        snapshot: SequenceNumber,
        ropts: &ReadOptions,
        cpu: &mut SimDuration,
        results: &mut [Option<Option<Vec<u8>>>],
    ) -> Result<()> {
        // L0: newest first, ranges may overlap. A key resolved by a newer
        // file must not be probed in older ones, so resolved keys are
        // dropped between files.
        for f in version.files(0) {
            if unresolved.is_empty() {
                return Ok(());
            }
            let lo =
                unresolved.partition_point(|&i| keys[i].as_slice() < f.smallest.user_key());
            let hi =
                unresolved.partition_point(|&i| keys[i].as_slice() <= f.largest.user_key());
            if lo == hi {
                continue;
            }
            self.probe_table_multi(f, keys, &unresolved[lo..hi], snapshot, ropts, cpu, results)?;
            unresolved.retain(|&i| results[i].is_none());
        }
        // Deeper levels: at most one file per level can contain each key;
        // sorted keys walk the sorted file list in tandem.
        for level in 1..version.num_levels() {
            if unresolved.is_empty() {
                return Ok(());
            }
            let files = version.files(level);
            if files.is_empty() {
                continue;
            }
            let mut pos = 0;
            while pos < unresolved.len() {
                let key = keys[unresolved[pos]].as_slice();
                let fidx = files.partition_point(|f| f.largest.user_key() < key);
                if fidx >= files.len() {
                    break; // remaining keys sort past the last file
                }
                let f = &files[fidx];
                if key < f.smallest.user_key() {
                    pos += 1; // in the gap before this file: deeper levels only
                    continue;
                }
                let end = pos
                    + unresolved[pos..]
                        .partition_point(|&i| keys[i].as_slice() <= f.largest.user_key());
                *cpu += SimDuration::from_nanos(60 * (end - pos) as u64); // range binary search
                self.probe_table_multi(
                    f,
                    keys,
                    &unresolved[pos..end],
                    snapshot,
                    ropts,
                    cpu,
                    results,
                )?;
                pos = end;
            }
            unresolved.retain(|&i| results[i].is_none());
        }
        Ok(())
    }

    /// Probes one table for a sorted run of candidate keys. The table (and
    /// its index/filter metadata) is opened once; keys landing in the same
    /// data block share one fetch-and-parse; and all block reads the run
    /// needs are submitted to the device from the same instant, so they
    /// overlap on its channels instead of paying the access latency
    /// serially per key.
    #[allow(clippy::too_many_arguments)]
    fn probe_table_multi(
        &self,
        file: &FileMetadata,
        keys: &[Vec<u8>],
        candidates: &[usize],
        snapshot: SequenceNumber,
        ropts: &ReadOptions,
        cpu: &mut SimDuration,
        results: &mut [Option<Option<Vec<u8>>>],
    ) -> Result<()> {
        let reader = self.open_table(file, ropts, cpu)?;
        // Plan: bloom-screen and index-seek every candidate, collecting
        // (candidate, handle) pairs. Sorted keys give non-decreasing
        // block offsets, so shared blocks are consecutive in the plan.
        let mut plan: Vec<(usize, crate::sstable::table::BlockHandle)> = Vec::new();
        for &i in candidates {
            if results[i].is_some() {
                continue;
            }
            let user_key = keys[i].as_slice();
            if reader.has_filter() {
                self.stats.tickers().inc(Ticker::BloomChecked);
                *cpu += self.cost.bloom_check_cpu;
                if !reader.may_contain(user_key) {
                    self.stats.tickers().inc(Ticker::BloomUseful);
                    continue;
                }
            }
            let target = crate::types::lookup_key(user_key, snapshot);
            *cpu += self.cost.index_seek_cpu;
            if let Some(handle) = reader.find_block(target.encoded())? {
                plan.push((i, handle));
            }
        }
        if plan.is_empty() {
            return Ok(());
        }
        // Fetch: one submission batch for every distinct block in the
        // plan; advance the clock once, to the latest completion.
        let submit_at = self.env.clock().now();
        let mut latest = submit_at;
        let mut blocks: Vec<(u64, Block)> = Vec::with_capacity(plan.len());
        for &(_, handle) in &plan {
            if matches!(blocks.last(), Some((off, _)) if *off == handle.offset) {
                continue;
            }
            let (data, done) =
                self.fetch_block_at(&reader, file.number, handle, ropts, cpu, submit_at)?;
            latest = latest.max(done);
            blocks.push((handle.offset, Block::parse(data.as_ref().clone())?));
        }
        self.env.clock().advance_to(latest);
        // Resolve: seek each candidate in its (already parsed) block.
        let mut b = 0;
        for &(i, handle) in &plan {
            while blocks[b].0 != handle.offset {
                b += 1;
            }
            let block = &blocks[b].1;
            let target = crate::types::lookup_key(keys[i].as_slice(), snapshot);
            *cpu += SimDuration::from_nanos(300); // block binary search + scan
            if let Some((k, v)) = block.seek(target.encoded())? {
                let found_user = &k[..k.len() - 8];
                if found_user != keys[i].as_slice() {
                    continue;
                }
                let tag = u64::from_le_bytes(k[k.len() - 8..].try_into().expect("tag"));
                results[i] = Some(if (tag & 0xff) == ValueType::Deletion as u64 {
                    None
                } else {
                    Some(v)
                });
            }
        }
        Ok(())
    }
}

fn split3(total: u64) -> [u64; 3] {
    let third = total / 3;
    [third, third, total - 2 * third]
}

// ---------------------------------------------------------------------------
// Scan cursors
// ---------------------------------------------------------------------------

trait ScanCursor {
    fn key(&self) -> Option<&[u8]>;
    fn value(&self) -> Option<&[u8]>;
    fn advance(&mut self, inner: &DbInner) -> Result<()>;
}

struct LockedMemCursor {
    mem: Arc<RwLock<MemTable>>,
    current: Option<(Vec<u8>, Vec<u8>)>,
}

impl LockedMemCursor {
    fn new(mem: Arc<RwLock<MemTable>>, target: &[u8]) -> Self {
        let current = mem.read().next_at_or_after(target, false);
        LockedMemCursor { mem, current }
    }
}

impl ScanCursor for LockedMemCursor {
    fn key(&self) -> Option<&[u8]> {
        self.current.as_ref().map(|(k, _)| k.as_slice())
    }
    fn value(&self) -> Option<&[u8]> {
        self.current.as_ref().map(|(_, v)| v.as_slice())
    }
    fn advance(&mut self, _inner: &DbInner) -> Result<()> {
        if let Some((k, _)) = &self.current {
            self.current = self.mem.read().next_at_or_after(k, true);
        }
        Ok(())
    }
}

struct MemCursor {
    mem: Arc<MemTable>,
    current: Option<(Vec<u8>, Vec<u8>)>,
}

impl MemCursor {
    fn new(mem: Arc<MemTable>, target: &[u8]) -> Self {
        let current = mem.next_at_or_after(target, false);
        MemCursor { mem, current }
    }
}

impl ScanCursor for MemCursor {
    fn key(&self) -> Option<&[u8]> {
        self.current.as_ref().map(|(k, _)| k.as_slice())
    }
    fn value(&self) -> Option<&[u8]> {
        self.current.as_ref().map(|(_, v)| v.as_slice())
    }
    fn advance(&mut self, _inner: &DbInner) -> Result<()> {
        if let Some((k, _)) = &self.current {
            self.current = self.mem.next_at_or_after(k, true);
        }
        Ok(())
    }
}

struct FileCursor {
    file: Arc<FileMetadata>,
    reader: Arc<TableReader>,
    handles: Vec<crate::sstable::table::BlockHandle>,
    next_block: usize,
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    pos: usize,
    ropts: ReadOptions,
}

impl FileCursor {
    fn open(
        inner: &DbInner,
        file: Arc<FileMetadata>,
        target: &[u8],
        ropts: ReadOptions,
    ) -> Result<FileCursor> {
        let mut cpu = SimDuration::ZERO;
        let reader = inner.open_table(&file, &ropts, &mut cpu)?;
        let handles = reader.block_handles()?;
        inner.env.clock().advance(cpu);
        let mut c = FileCursor {
            file,
            reader,
            handles,
            next_block: 0,
            entries: Vec::new(),
            pos: 0,
            ropts,
        };
        // Skip blocks wholly before the target using the index order.
        c.load_until(inner, target)?;
        Ok(c)
    }

    fn load_until(&mut self, inner: &DbInner, target: &[u8]) -> Result<()> {
        loop {
            self.load_next_block(inner)?;
            if self.entries.is_empty() {
                return Ok(()); // exhausted
            }
            let last = &self.entries[self.entries.len() - 1].0;
            if internal_key_cmp(last, target) != std::cmp::Ordering::Less {
                // Position within this block.
                while self.pos < self.entries.len()
                    && internal_key_cmp(&self.entries[self.pos].0, target)
                        == std::cmp::Ordering::Less
                {
                    self.pos += 1;
                }
                if self.pos < self.entries.len() {
                    return Ok(());
                }
            }
        }
    }

    fn load_next_block(&mut self, inner: &DbInner) -> Result<()> {
        self.entries.clear();
        self.pos = 0;
        let mut cpu = SimDuration::ZERO;
        while self.entries.is_empty() && self.next_block < self.handles.len() {
            let data = inner.fetch_block(
                &self.reader,
                self.file.number,
                self.handles[self.next_block],
                &self.ropts,
                &mut cpu,
            )?;
            self.next_block += 1;
            let block = Block::parse(data.as_ref().clone())?;
            let mut it = block.iter();
            while it.advance()? {
                self.entries.push((it.key().to_vec(), it.value().to_vec()));
            }
        }
        inner.env.clock().advance(cpu);
        Ok(())
    }
}

impl ScanCursor for FileCursor {
    fn key(&self) -> Option<&[u8]> {
        self.entries.get(self.pos).map(|(k, _)| k.as_slice())
    }
    fn value(&self) -> Option<&[u8]> {
        self.entries.get(self.pos).map(|(_, v)| v.as_slice())
    }
    fn advance(&mut self, inner: &DbInner) -> Result<()> {
        self.pos += 1;
        if self.pos >= self.entries.len() {
            self.load_next_block(inner)?;
        }
        Ok(())
    }
}

struct LevelCursor {
    files: Vec<Arc<FileMetadata>>,
    next_file: usize,
    current: Option<FileCursor>,
    target: Vec<u8>,
    ropts: ReadOptions,
}

impl LevelCursor {
    fn open(
        inner: &DbInner,
        files: Vec<Arc<FileMetadata>>,
        target: &[u8],
        ropts: ReadOptions,
    ) -> Result<LevelCursor> {
        let mut c = LevelCursor {
            files,
            next_file: 0,
            current: None,
            target: target.to_vec(),
            ropts,
        };
        c.open_next(inner)?;
        Ok(c)
    }

    fn open_next(&mut self, inner: &DbInner) -> Result<()> {
        self.current = None;
        while self.next_file < self.files.len() {
            let file = Arc::clone(&self.files[self.next_file]);
            self.next_file += 1;
            let cursor = FileCursor::open(inner, file, &self.target, self.ropts)?;
            if cursor.key().is_some() {
                self.current = Some(cursor);
                return Ok(());
            }
        }
        Ok(())
    }
}

impl ScanCursor for LevelCursor {
    fn key(&self) -> Option<&[u8]> {
        self.current.as_ref().and_then(|c| c.key())
    }
    fn value(&self) -> Option<&[u8]> {
        self.current.as_ref().and_then(|c| c.value())
    }
    fn advance(&mut self, inner: &DbInner) -> Result<()> {
        if let Some(c) = &mut self.current {
            c.advance(inner)?;
            if c.key().is_none() {
                self.open_next(inner)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hw_sim::DeviceModel;

    fn env() -> HardwareEnv {
        HardwareEnv::builder()
            .cores(4)
            .memory_gib(8)
            .device(DeviceModel::nvme_ssd())
            .build_sim()
    }

    fn small_opts() -> Options {
        Options {
            write_buffer_size: 64 << 10, // tiny, to exercise flush/compaction
            target_file_size_base: 64 << 10,
            max_bytes_for_level_base: 256 << 10,
            ..Options::default()
        }
    }

    #[test]
    fn put_get_roundtrip() {
        let env = env();
        let db = Db::builder(Options::default()).env(&env).open().unwrap();
        db.put(b"hello", b"world").unwrap();
        assert_eq!(db.get(b"hello").unwrap(), Some(b"world".to_vec()));
        assert_eq!(db.get(b"absent").unwrap(), None);
    }

    #[test]
    fn delete_hides_value() {
        let env = env();
        let db = Db::builder(Options::default()).env(&env).open().unwrap();
        db.put(b"k", b"v").unwrap();
        db.delete(b"k").unwrap();
        assert_eq!(db.get(b"k").unwrap(), None);
    }

    #[test]
    fn overwrite_returns_newest() {
        let env = env();
        let db = Db::builder(Options::default()).env(&env).open().unwrap();
        db.put(b"k", b"v1").unwrap();
        db.put(b"k", b"v2").unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"v2".to_vec()));
    }

    #[test]
    fn reads_span_memtable_flush_and_compaction() {
        let env = env();
        let db = Db::builder(small_opts()).env(&env).open().unwrap();
        let n = 3_000;
        for i in 0..n {
            db.put(format!("key-{i:06}").as_bytes(), format!("value-{i}").as_bytes())
                .unwrap();
        }
        db.flush().unwrap();
        db.compact_all().unwrap();
        let stats = db.stats();
        assert!(stats.tickers.get(Ticker::FlushJobs) > 0, "flushes ran");
        assert!(stats.tickers.get(Ticker::CompactionJobs) > 0, "compactions ran");
        for i in (0..n).step_by(97) {
            assert_eq!(
                db.get(format!("key-{i:06}").as_bytes()).unwrap(),
                Some(format!("value-{i}").into_bytes()),
                "key-{i}"
            );
        }
    }

    #[test]
    fn scan_returns_sorted_live_entries() {
        let env = env();
        let db = Db::builder(small_opts()).env(&env).open().unwrap();
        for i in 0..500 {
            db.put(format!("key-{i:04}").as_bytes(), b"v").unwrap();
        }
        db.delete(b"key-0002").unwrap();
        db.flush().unwrap();
        // A few more into the memtable so the scan merges sources.
        db.put(b"key-0001", b"updated").unwrap();
        let result = db.scan(b"key-0000", 5).unwrap();
        let keys: Vec<_> = result.iter().map(|(k, _)| String::from_utf8(k.clone()).unwrap()).collect();
        assert_eq!(keys, vec!["key-0000", "key-0001", "key-0003", "key-0004", "key-0005"]);
        let v1 = &result[1].1;
        assert_eq!(v1, b"updated");
    }

    #[test]
    fn virtual_time_advances_with_work() {
        let env = env();
        let db = Db::builder(small_opts()).env(&env).open().unwrap();
        let t0 = env.clock().now();
        for i in 0..2_000 {
            db.put(format!("key-{i:06}").as_bytes(), &[0u8; 100]).unwrap();
        }
        let t1 = env.clock().now();
        assert!(t1 > t0, "writes consume virtual time");
        // Per-op average should be in the microseconds range.
        let per_op = (t1 - t0).as_nanos() / 2_000;
        assert!(per_op > 500 && per_op < 200_000, "per-op {per_op}ns");
    }

    #[test]
    fn bloom_filters_cut_probes() {
        let run = |bits: f64| {
            let env = env();
            let mut opts = small_opts();
            opts.bloom_filter_bits_per_key = bits;
            let db = Db::builder(opts).env(&env).open().unwrap();
            for i in 0..2_000 {
                db.put(format!("key-{i:06}").as_bytes(), b"v").unwrap();
            }
            db.flush().unwrap();
            for i in 0..500 {
                let _ = db.get(format!("key-{i:06}-absent").as_bytes()).unwrap();
            }
            db.stats()
        };
        let without = run(0.0);
        let with = run(10.0);
        assert!(with.tickers.get(Ticker::BloomChecked) > 0);
        assert!(
            with.tickers.get(Ticker::BlockCacheMiss) + with.tickers.get(Ticker::BlockCacheHit)
                < without.tickers.get(Ticker::BlockCacheMiss)
                    + without.tickers.get(Ticker::BlockCacheHit),
            "bloom avoids block fetches"
        );
    }

    #[test]
    fn recovery_preserves_data() {
        let env = env();
        let vfs = Arc::new(MemVfs::new());
        {
            let db = Db::builder(small_opts()).env(&env).vfs(vfs.clone()).open().unwrap();
            for i in 0..1_000 {
                db.put(format!("key-{i:04}").as_bytes(), format!("v-{i}").as_bytes())
                    .unwrap();
            }
            db.wait_background_idle().unwrap();
            // No clean shutdown: the Db is just dropped (simulated crash;
            // the WAL tail was never fsynced but MemVfs keeps appended
            // bytes, modeling a process crash rather than power loss).
        }
        let db = Db::builder(small_opts()).env(&env).vfs(vfs).open().unwrap();
        for i in (0..1_000).step_by(53) {
            assert_eq!(
                db.get(format!("key-{i:04}").as_bytes()).unwrap(),
                Some(format!("v-{i}").into_bytes()),
                "key-{i}"
            );
        }
    }

    #[test]
    fn recovery_drops_torn_wal_tail() {
        let env = env();
        let vfs = Arc::new(MemVfs::new());
        {
            let db = Db::builder(Options::default()).env(&env).vfs(vfs.clone()).open().unwrap();
            db.put(b"safe", b"1").unwrap();
            db.put(b"torn", b"2").unwrap();
        }
        // Tear the last few bytes off the newest WAL.
        let wals: Vec<String> = vfs
            .list("")
            .unwrap()
            .into_iter()
            .filter(|n| n.ends_with(".log"))
            .collect();
        let wal = wals.last().unwrap();
        let len = vfs.file_size(wal).unwrap();
        vfs.truncate(wal, (len - 3) as usize).unwrap();
        let db = Db::builder(Options::default()).env(&env).vfs(vfs).open().unwrap();
        assert_eq!(db.get(b"safe").unwrap(), Some(b"1".to_vec()));
        assert_eq!(db.get(b"torn").unwrap(), None, "torn record dropped");
    }

    #[test]
    fn stalls_appear_under_write_pressure() {
        let env = env();
        let mut opts = small_opts();
        opts.level0_slowdown_writes_trigger = 2;
        opts.level0_stop_writes_trigger = 4;
        opts.max_background_jobs = 1;
        let db = Db::builder(opts).env(&env).open().unwrap();
        for i in 0..20_000 {
            db.put(format!("key-{i:06}").as_bytes(), &[0u8; 100]).unwrap();
        }
        let stats = db.stats();
        assert!(
            stats.tickers.get(Ticker::WriteSlowdowns) + stats.tickers.get(Ticker::WriteStops) > 0,
            "aggressive triggers cause throttling"
        );
        assert!(stats.tickers.get(Ticker::StallNanos) > 0);
    }

    /// Collects every callback for the listener tests.
    #[derive(Default)]
    struct RecordingListener {
        flushes: Mutex<Vec<crate::listener::FlushJobInfo>>,
        compactions: Mutex<Vec<crate::listener::CompactionJobInfo>>,
        stalls: Mutex<Vec<(WriteRegime, WriteRegime)>>,
    }

    impl crate::listener::EventListener for RecordingListener {
        fn on_flush_completed(&self, info: &crate::listener::FlushJobInfo) {
            self.flushes.lock().push(info.clone());
        }
        fn on_compaction_completed(&self, info: &crate::listener::CompactionJobInfo) {
            self.compactions.lock().push(info.clone());
        }
        fn on_stall_conditions_changed(&self, info: &crate::listener::StallConditionsChanged) {
            self.stalls.lock().push((info.previous, info.current));
        }
    }

    #[test]
    fn listener_fires_once_per_stall_transition() {
        let env = env();
        let mut opts = small_opts();
        opts.level0_slowdown_writes_trigger = 2;
        opts.level0_stop_writes_trigger = 4;
        opts.max_background_jobs = 1;
        let listener = Arc::new(RecordingListener::default());
        let db = Db::builder(opts)
            .env(&env)
            .listener(listener.clone())
            .open()
            .unwrap();
        for i in 0..20_000 {
            db.put(format!("key-{i:06}").as_bytes(), &[0u8; 100]).unwrap();
        }
        let stalls = listener.stalls.lock().clone();
        assert!(!stalls.is_empty(), "aggressive triggers produce transitions");
        // Exactly once per transition: no self-transitions, and each
        // event continues where the previous one left off.
        let mut prev = WriteRegime::Normal;
        for (from, to) in &stalls {
            assert_ne!(from, to, "self-transition reported");
            assert_eq!(*from, prev, "transition chain broken");
            prev = *to;
        }
        assert!(
            stalls.iter().any(|(_, to)| *to != WriteRegime::Normal),
            "at least one transition into a throttled regime"
        );
        let flushes = listener.flushes.lock();
        assert!(!flushes.is_empty(), "flushes observed");
        for f in flushes.iter() {
            assert!(f.file_size > 0);
            assert!(f.num_entries > 0);
            assert!(f.memtables_merged > 0);
        }
        for c in listener.compactions.lock().iter() {
            assert!(c.input_files > 0);
            assert!(c.bytes_read > 0);
        }
        assert!(db.stats().tickers.get(Ticker::StallNanos) > 0);
    }

    #[test]
    fn stats_text_renders_rocksdb_shape() {
        let env = env();
        let db = Db::builder(small_opts()).env(&env).open().unwrap();
        for i in 0..5_000 {
            db.put(format!("key-{i:06}").as_bytes(), &[0u8; 100]).unwrap();
        }
        db.flush().unwrap();
        for i in 0..200 {
            let _ = db.get(format!("key-{:06}", i * 7).as_bytes()).unwrap();
        }
        let text = db.stats_text();
        assert!(text.contains("** DB Stats **"), "{text}");
        assert!(text.contains("Uptime(secs):"), "{text}");
        assert!(text.contains("Cumulative writes:"), "{text}");
        assert!(text.contains("Cumulative stall:"), "{text}");
        assert!(text.contains("** Compaction Stats [default] **"), "{text}");
        assert!(text.contains("rocksdb.db.get.micros"), "{text}");
        assert!(text.contains("P99.99"), "{text}");
        assert!(text.contains("STDDEV"), "{text}");
        // The Sum row aggregates the per-level table; with a flush done,
        // L0 write bytes make the sum write column non-zero.
        let sum_line = text
            .lines()
            .find(|l| l.trim_start().starts_with("Sum"))
            .expect("Sum row present");
        let tokens: Vec<&str> = sum_line.split_whitespace().collect();
        assert_eq!(tokens.len(), 10, "Sum row token count: {sum_line}");
        let w_amp: f64 = tokens[7].parse().unwrap();
        assert!(w_amp >= 1.0, "flushed data gives W-Amp >= 1: {sum_line}");
        // L0 row precedes Sum.
        assert!(text.contains("   L0") || text.contains("L0 "), "{text}");
    }

    #[test]
    fn hdd_is_slower_than_nvme_for_same_work() {
        let run = |model: DeviceModel| {
            let env = HardwareEnv::builder().cores(2).memory_gib(4).device(model).build_sim();
            let db = Db::builder(small_opts()).env(&env).open().unwrap();
            for i in 0..3_000 {
                db.put(format!("key-{i:06}").as_bytes(), &[0u8; 100]).unwrap();
            }
            db.flush().unwrap();
            for i in 0..300 {
                let _ = db.get(format!("key-{:06}", i * 7).as_bytes()).unwrap();
            }
            env.clock().now().as_nanos()
        };
        let nvme = run(DeviceModel::nvme_ssd());
        let hdd = run(DeviceModel::sata_hdd());
        assert!(hdd > nvme, "hdd {hdd} should exceed nvme {nvme}");
    }

    #[test]
    fn disable_auto_compactions_holds_l0() {
        let env = env();
        let mut opts = small_opts();
        opts.disable_auto_compactions = true;
        let db = Db::builder(opts).env(&env).open().unwrap();
        for i in 0..5_000 {
            db.put(format!("key-{i:06}").as_bytes(), &[0u8; 50]).unwrap();
        }
        db.flush().unwrap();
        let stats = db.stats();
        assert_eq!(stats.tickers.get(Ticker::CompactionJobs), 0);
        assert!(stats.levels[0].0 > 0);
    }

    #[test]
    fn write_batch_is_atomic_in_order() {
        let env = env();
        let db = Db::builder(Options::default()).env(&env).open().unwrap();
        let mut b = WriteBatch::new();
        b.put(b"a", b"1");
        b.delete(b"a");
        b.put(b"b", b"2");
        db.write(b).unwrap();
        assert_eq!(db.get(b"a").unwrap(), None);
        assert_eq!(db.get(b"b").unwrap(), Some(b"2".to_vec()));
    }

    #[test]
    fn stats_shape_is_reported() {
        let env = env();
        let db = Db::builder(small_opts()).env(&env).open().unwrap();
        for i in 0..2_000 {
            db.put(format!("key-{i:06}").as_bytes(), &[0u8; 100]).unwrap();
        }
        db.flush().unwrap();
        let stats = db.stats();
        assert_eq!(stats.levels.len(), 7);
        assert!(stats.levels.iter().map(|(n, _)| n).sum::<usize>() > 0);
        assert!(stats.write_amplification() > 0.0);
        assert!(stats.last_sequence >= 2_000);
    }

    #[test]
    fn builder_defaults_and_explicit_vfs() {
        // Defaults: sim env + fresh MemVfs.
        let db = Db::builder(Options::default()).open().unwrap();
        db.put(b"k", b"v").unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"v".to_vec()));
        drop(db);

        // Explicit VFS: state survives reopen through the same store.
        let vfs = Arc::new(crate::vfs::MemVfs::new());
        let env = env();
        let db = Db::builder(Options::default())
            .env(&env)
            .vfs(vfs.clone())
            .open()
            .unwrap();
        db.put(b"persist", b"1").unwrap();
        drop(db);
        let db = Db::builder(Options::default()).env(&env).vfs(vfs).open().unwrap();
        assert_eq!(db.get(b"persist").unwrap(), Some(b"1".to_vec()));
    }

    #[test]
    fn read_options_snapshot_seq_pins_the_past() {
        let env = env();
        let db = Db::builder(Options::default()).env(&env).open().unwrap();
        db.put(b"k", b"old").unwrap();
        let pinned = db.stats().last_sequence;
        db.put(b"k", b"new").unwrap();
        db.put(b"k2", b"later").unwrap();

        let ropts = ReadOptions {
            snapshot_seq: Some(pinned),
            ..ReadOptions::default()
        };
        assert_eq!(db.get_opt(&ropts, b"k").unwrap(), Some(b"old".to_vec()));
        assert_eq!(db.get_opt(&ropts, b"k2").unwrap(), None);
        assert_eq!(db.get(b"k").unwrap(), Some(b"new".to_vec()));

        let snap_scan = db.scan_opt(&ropts, b"k", 10).unwrap();
        assert_eq!(snap_scan, vec![(b"k".to_vec(), b"old".to_vec())]);
        // A snapshot past the visible watermark clamps instead of leaking.
        let future = ReadOptions {
            snapshot_seq: Some(u64::MAX - 1),
            ..ReadOptions::default()
        };
        assert_eq!(db.get_opt(&future, b"k").unwrap(), Some(b"new".to_vec()));
    }

    #[test]
    fn read_options_fill_cache_and_checksum_skip() {
        let env = env();
        let db = Db::builder(small_opts()).env(&env).open().unwrap();
        for i in 0..2_000 {
            db.put(format!("key-{i:05}").as_bytes(), b"v").unwrap();
        }
        db.flush().unwrap();

        // A no-fill read on a cold cache must not populate it: repeating
        // the same read misses again.
        let no_fill = ReadOptions {
            fill_cache: false,
            ..ReadOptions::default()
        };
        let miss0 = db.stats().tickers.get(Ticker::BlockCacheMiss);
        assert_eq!(db.get_opt(&no_fill, b"key-00042").unwrap(), Some(b"v".to_vec()));
        let miss1 = db.stats().tickers.get(Ticker::BlockCacheMiss);
        assert!(miss1 > miss0, "cold read misses");
        assert_eq!(db.get_opt(&no_fill, b"key-00042").unwrap(), Some(b"v".to_vec()));
        let miss2 = db.stats().tickers.get(Ticker::BlockCacheMiss);
        assert!(miss2 > miss1, "no-fill read did not populate the cache");

        // Checksum-skipping reads return the same data.
        let no_verify = ReadOptions {
            verify_checksums: false,
            ..ReadOptions::default()
        };
        assert_eq!(db.get_opt(&no_verify, b"key-01234").unwrap(), Some(b"v".to_vec()));
        assert_eq!(db.scan_opt(&no_verify, b"key-00000", 3).unwrap().len(), 3);
    }

}

#[cfg(test)]
mod compact_range_tests {
    use super::*;
    use hw_sim::DeviceModel;

    #[test]
    fn compact_range_pushes_data_down() {
        let env = HardwareEnv::builder()
            .cores(4)
            .memory_gib(8)
            .device(DeviceModel::nvme_ssd())
            .build_sim();
        let opts = Options {
            write_buffer_size: 32 << 10,
            target_file_size_base: 32 << 10,
            max_bytes_for_level_base: 128 << 10,
            disable_auto_compactions: true, // everything stays in L0
            ..Options::default()
        };
        let db = Db::builder(opts).env(&env).open().unwrap();
        for i in 0..3_000 {
            db.put(format!("key-{i:05}").as_bytes(), &[1u8; 50]).unwrap();
        }
        db.flush().unwrap();
        let before = db.stats();
        assert!(before.levels[0].0 > 1, "L0 has files: {:?}", before.levels);

        db.compact_range(b"", b"key-99999").unwrap();
        let after = db.stats();
        assert_eq!(after.levels[0].0, 0, "L0 drained: {:?}", after.levels);
        let deeper: usize = after.levels.iter().skip(1).map(|(n, _)| n).sum();
        assert!(deeper > 0, "data moved down: {:?}", after.levels);
        for i in (0..3_000).step_by(101) {
            assert_eq!(
                db.get(format!("key-{i:05}").as_bytes()).unwrap(),
                Some(vec![1u8; 50])
            );
        }
    }

    #[test]
    fn compact_range_with_no_overlap_is_noop() {
        let env = HardwareEnv::builder().build_sim();
        let db = Db::builder(Options::default()).env(&env).open().unwrap();
        db.put(b"a", b"1").unwrap();
        db.compact_range(b"x", b"z").unwrap();
        assert_eq!(db.get(b"a").unwrap(), Some(b"1".to_vec()));
    }

    /// Tombstones already at the bottom of the compacted range must still
    /// be dropped, even when unrelated data elsewhere in the keyspace
    /// sits deeper. The push-down loop alone leaves them stranded: once
    /// the range's files are at its last populated level, nothing merges
    /// them again, and the global "deeper levels empty" rule is defeated
    /// by the unrelated deep data.
    #[test]
    fn compact_range_drops_bottommost_tombstones_despite_unrelated_deep_data() {
        const N: u64 = 200;
        let env = HardwareEnv::builder()
            .cores(4)
            .memory_gib(8)
            .device(DeviceModel::nvme_ssd())
            .build_sim();
        let opts = Options {
            disable_auto_compactions: true,
            ..Options::default()
        };
        let db = Db::builder(opts).env(&env).open().unwrap();

        // Park unrelated data at the deepest level: with a file in L0,
        // the range picker keeps pushing, so one compact_range call walks
        // the z-file level by level down to the bottom.
        for i in 0..10u64 {
            db.put(format!("z-{i}").as_bytes(), b"deep").unwrap();
        }
        db.flush().unwrap();
        db.put(b"m", b"pin").unwrap();
        db.flush().unwrap();
        db.compact_range(b"z", b"z~").unwrap();
        let levels = db.stats().levels;
        let last = levels.len() - 1;
        assert!(levels[last].0 > 0, "z-data at the bottom: {levels:?}");
        db.compact_range(b"m", b"n").unwrap(); // clear the L0 pin

        // Value phase: a-keys come to rest in the upper levels.
        for i in 0..N {
            db.put(format!("a-{i:03}").as_bytes(), b"v").unwrap();
        }
        db.flush().unwrap();
        db.compact_range(b"a", b"b").unwrap();

        // Tombstone phase.
        for i in 0..N {
            db.delete(format!("a-{i:03}").as_bytes()).unwrap();
        }
        db.flush().unwrap();

        let dropped0 = db.stats().tickers.get(Ticker::CompactionKeyDropped);
        db.compact_range(b"a", b"b").unwrap();
        let delta = db.stats().tickers.get(Ticker::CompactionKeyDropped) - dropped0;

        // The merge drops the N shadowed values; the bottommost rewrite
        // must also drop the N tombstones themselves.
        assert_eq!(
            delta,
            2 * N,
            "tombstones stranded at the range's bottom level were not dropped"
        );
        for i in (0..N).step_by(37) {
            assert_eq!(db.get(format!("a-{i:03}").as_bytes()).unwrap(), None);
        }
        assert_eq!(db.get(b"z-3").unwrap(), Some(b"deep".to_vec()));
        assert_eq!(db.get(b"m").unwrap(), Some(b"pin".to_vec()));
    }
}
