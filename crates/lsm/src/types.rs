//! Core value types: sequence numbers, internal keys, file numbers.

use std::fmt;

/// Monotonically increasing sequence number assigned to every write.
pub type SequenceNumber = u64;

/// Identifier of an on-disk file (SST, WAL, or manifest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FileNumber(pub u64);

impl fmt::Display for FileNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:06}", self.0)
    }
}

/// The kind of entry a key carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ValueType {
    /// A tombstone marking the key deleted.
    Deletion = 0,
    /// A regular value.
    Value = 1,
}

impl ValueType {
    /// Decodes from the low byte of a packed tag.
    pub fn from_u8(b: u8) -> Option<ValueType> {
        match b {
            0 => Some(ValueType::Deletion),
            1 => Some(ValueType::Value),
            _ => None,
        }
    }
}

/// An internal key: user key + (sequence, type) tag, ordered so that for
/// equal user keys, *newer* entries sort first.
///
/// The encoding matches LevelDB/RocksDB: `user_key ++ fixed64(seq << 8 | ty)`,
/// compared by user key ascending then tag descending.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InternalKey(Vec<u8>);

impl InternalKey {
    /// Builds an internal key from parts.
    pub fn new(user_key: &[u8], seq: SequenceNumber, ty: ValueType) -> Self {
        let mut buf = Vec::with_capacity(user_key.len() + 8);
        buf.extend_from_slice(user_key);
        let tag = (seq << 8) | ty as u64;
        buf.extend_from_slice(&tag.to_le_bytes());
        InternalKey(buf)
    }

    /// Reconstructs an internal key from its encoded form.
    ///
    /// # Errors
    ///
    /// Returns `None` if the encoding is shorter than a tag.
    pub fn decode(encoded: &[u8]) -> Option<InternalKey> {
        if encoded.len() < 8 {
            return None;
        }
        Some(InternalKey(encoded.to_vec()))
    }

    /// The encoded bytes.
    pub fn encoded(&self) -> &[u8] {
        &self.0
    }

    /// The user-visible key portion.
    pub fn user_key(&self) -> &[u8] {
        &self.0[..self.0.len() - 8]
    }

    /// The sequence number.
    pub fn sequence(&self) -> SequenceNumber {
        self.tag() >> 8
    }

    /// The value type.
    ///
    /// # Panics
    ///
    /// Panics if the tag byte is not a valid [`ValueType`] (possible only
    /// on corrupted input that bypassed [`InternalKey::decode`]).
    pub fn value_type(&self) -> ValueType {
        ValueType::from_u8((self.tag() & 0xff) as u8).expect("valid value type tag")
    }

    fn tag(&self) -> u64 {
        let n = self.0.len();
        u64::from_le_bytes(self.0[n - 8..].try_into().expect("8-byte tag"))
    }
}

/// Compares two *encoded* internal keys: user key ascending, then sequence
/// descending (newer first), then type descending.
pub fn internal_key_cmp(a: &[u8], b: &[u8]) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    let (ua, ta) = split_tag(a);
    let (ub, tb) = split_tag(b);
    match ua.cmp(ub) {
        Ordering::Equal => tb.cmp(&ta), // larger tag (newer) sorts first
        other => other,
    }
}

fn split_tag(encoded: &[u8]) -> (&[u8], u64) {
    let n = encoded.len();
    debug_assert!(n >= 8, "internal key must carry an 8-byte tag");
    let tag = u64::from_le_bytes(encoded[n - 8..].try_into().expect("8-byte tag"));
    (&encoded[..n - 8], tag)
}

/// The maximum sequence number, used for lookup keys ("find the newest
/// entry at or below this sequence").
pub const MAX_SEQUENCE: SequenceNumber = (1 << 56) - 1;

/// A lookup key for point reads: the newest possible internal key for a
/// user key at a snapshot sequence.
pub fn lookup_key(user_key: &[u8], snapshot: SequenceNumber) -> InternalKey {
    InternalKey::new(user_key, snapshot.min(MAX_SEQUENCE), ValueType::Value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn roundtrip_parts() {
        let ik = InternalKey::new(b"hello", 42, ValueType::Value);
        assert_eq!(ik.user_key(), b"hello");
        assert_eq!(ik.sequence(), 42);
        assert_eq!(ik.value_type(), ValueType::Value);
        let decoded = InternalKey::decode(ik.encoded()).unwrap();
        assert_eq!(decoded, ik);
    }

    #[test]
    fn decode_rejects_short_input() {
        assert!(InternalKey::decode(b"short").is_none());
    }

    #[test]
    fn ordering_user_key_ascending() {
        let a = InternalKey::new(b"a", 5, ValueType::Value);
        let b = InternalKey::new(b"b", 5, ValueType::Value);
        assert_eq!(internal_key_cmp(a.encoded(), b.encoded()), Ordering::Less);
    }

    #[test]
    fn ordering_newer_sequence_first() {
        let old = InternalKey::new(b"k", 5, ValueType::Value);
        let new = InternalKey::new(b"k", 9, ValueType::Value);
        assert_eq!(internal_key_cmp(new.encoded(), old.encoded()), Ordering::Less);
    }

    #[test]
    fn deletion_sorts_before_value_at_same_seq() {
        // Tag for Value (1) is larger than Deletion (0), so Value sorts first.
        let del = InternalKey::new(b"k", 5, ValueType::Deletion);
        let val = InternalKey::new(b"k", 5, ValueType::Value);
        assert_eq!(internal_key_cmp(val.encoded(), del.encoded()), Ordering::Less);
    }

    #[test]
    fn lookup_key_sorts_before_all_entries_of_key() {
        let lk = lookup_key(b"k", MAX_SEQUENCE);
        let entry = InternalKey::new(b"k", 1_000_000, ValueType::Value);
        assert_eq!(internal_key_cmp(lk.encoded(), entry.encoded()), Ordering::Less);
    }

    #[test]
    fn file_number_formats_padded() {
        assert_eq!(FileNumber(7).to_string(), "000007");
    }
}
