//! Sharded LRU block cache and the table-reader cache.
//!
//! The block cache stores uncompressed data blocks keyed by
//! `(file, offset)`; it is the main lever behind the paper's read-heavy
//! tuning wins. The table cache bounds how many SST readers stay open
//! (`max_open_files`), charging reopen I/O on miss.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::types::FileNumber;
use crate::util::fnv1a;

/// Cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the block.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Insertions.
    pub inserts: u64,
    /// Evictions due to capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; zero when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A mutually consistent view of the whole cache.
///
/// Every shard contributes its counters *and* its byte usage from a
/// single lock acquisition, so derived invariants (e.g. bytes implied by
/// `inserts - evictions`) hold even while other threads are hitting the
/// cache. Summing [`BlockCache::stats`] and [`BlockCache::used_bytes`]
/// separately does not give that guarantee.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Aggregated hit/miss/insert/eviction counters.
    pub stats: CacheStats,
    /// Total bytes currently cached (including bookkeeping overhead).
    pub used_bytes: u64,
    /// Total configured capacity in bytes.
    pub capacity: u64,
}

/// Key identifying a cached block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockKey {
    /// SST file number.
    pub file: FileNumber,
    /// Block offset within the file.
    pub offset: u64,
}

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct LruEntry {
    key: BlockKey,
    value: Arc<Vec<u8>>,
    prev: usize,
    next: usize,
}

/// One cache shard: a hash map into a slab of entries threaded on an
/// intrusive doubly-linked recency list (O(1) get/insert/evict).
#[derive(Debug)]
struct LruShard {
    map: HashMap<BlockKey, usize>,
    entries: Vec<LruEntry>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    used_bytes: u64,
    stats: CacheStats,
}

impl LruShard {
    fn new() -> Self {
        LruShard {
            map: HashMap::new(),
            entries: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            used_bytes: 0,
            stats: CacheStats::default(),
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.entries[idx].prev, self.entries[idx].next);
        if prev != NIL {
            self.entries[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.entries[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.entries[idx].prev = NIL;
        self.entries[idx].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn get(&mut self, key: &BlockKey) -> Option<Arc<Vec<u8>>> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.unlink(idx);
                self.push_front(idx);
                self.stats.hits += 1;
                Some(Arc::clone(&self.entries[idx].value))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    fn remove_index(&mut self, idx: usize) {
        self.unlink(idx);
        let entry = &self.entries[idx];
        self.used_bytes = self
            .used_bytes
            .saturating_sub(entry.value.len() as u64 + 64);
        self.map.remove(&entry.key);
        self.free.push(idx);
    }

    fn insert(&mut self, key: BlockKey, value: Arc<Vec<u8>>, capacity: u64) {
        let len = value.len() as u64 + 64; // block + bookkeeping overhead
        if len > capacity {
            return; // oversized blocks bypass the cache
        }
        if let Some(idx) = self.map.get(&key).copied() {
            self.remove_index(idx);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.entries[i] = LruEntry {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.entries.push(LruEntry {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.entries.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        self.used_bytes += len;
        self.stats.inserts += 1;
        while self.used_bytes > capacity && self.tail != NIL && self.tail != idx {
            let victim = self.tail;
            self.remove_index(victim);
            self.stats.evictions += 1;
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.entries.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.used_bytes = 0;
    }
}

/// A sharded LRU cache of uncompressed blocks with a byte capacity.
///
/// # Examples
///
/// ```
/// use lsm_kvs::{BlockCache, FileNumber};
/// use std::sync::Arc;
///
/// let cache = BlockCache::new(1 << 20, 4);
/// let key = lsm_kvs::cache_key(FileNumber(1), 0);
/// assert!(cache.get(&key).is_none());
/// cache.insert(key, Arc::new(vec![0u8; 4096]));
/// assert!(cache.get(&key).is_some());
/// ```
#[derive(Debug)]
pub struct BlockCache {
    shards: Vec<Mutex<LruShard>>,
    capacity_per_shard: u64,
}

/// Builds a [`BlockKey`] (convenience for examples and tests).
pub fn cache_key(file: FileNumber, offset: u64) -> BlockKey {
    BlockKey { file, offset }
}

impl BlockCache {
    /// Creates a cache with `capacity` bytes across `2^shard_bits` shards.
    pub fn new(capacity: u64, shard_bits: u32) -> Self {
        let num_shards = 1usize << shard_bits.min(8);
        BlockCache {
            shards: (0..num_shards).map(|_| Mutex::new(LruShard::new())).collect(),
            capacity_per_shard: (capacity / num_shards as u64).max(1),
        }
    }

    fn shard(&self, key: &BlockKey) -> &Mutex<LruShard> {
        let h = fnv1a(&key.file.0.to_le_bytes()) ^ key.offset.wrapping_mul(0x9e3779b97f4a7c15);
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Looks up a block, refreshing its recency on hit.
    pub fn get(&self, key: &BlockKey) -> Option<Arc<Vec<u8>>> {
        self.shard(key).lock().get(key)
    }

    /// Inserts a block, evicting LRU entries past capacity.
    pub fn insert(&self, key: BlockKey, value: Arc<Vec<u8>>) {
        self.shard(&key).lock().insert(key, value, self.capacity_per_shard);
    }

    /// Total bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.snapshot().used_bytes
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity_per_shard * self.shards.len() as u64
    }

    /// Aggregated hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.snapshot().stats
    }

    /// Captures counters and byte usage together, reading each shard
    /// under one lock acquisition so the two stay mutually consistent.
    pub fn snapshot(&self) -> CacheSnapshot {
        let mut snap = CacheSnapshot {
            capacity: self.capacity(),
            ..CacheSnapshot::default()
        };
        for s in &self.shards {
            let shard = s.lock();
            snap.stats.hits += shard.stats.hits;
            snap.stats.misses += shard.stats.misses;
            snap.stats.inserts += shard.stats.inserts;
            snap.stats.evictions += shard.stats.evictions;
            snap.used_bytes += shard.used_bytes;
        }
        snap
    }

    /// Drops every cached block (used when options change between runs).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().clear();
        }
    }
}

// ---------------------------------------------------------------------------
// Table cache
// ---------------------------------------------------------------------------

/// An LRU cache of open table readers bounded by `max_open_files`.
///
/// `T` is the reader type (kept generic to avoid a dependency cycle with
/// the table module).
#[derive(Debug)]
pub struct TableCache<T> {
    inner: Mutex<TableCacheInner<T>>,
    capacity: usize,
}

#[derive(Debug)]
struct TableCacheInner<T> {
    map: HashMap<FileNumber, (Arc<T>, u64)>,
    tick: u64,
    evictions: u64,
}

impl<T> TableCache<T> {
    /// Creates a cache holding up to `max_open_files` readers
    /// (`-1`/very large = effectively unbounded).
    pub fn new(max_open_files: i64) -> Self {
        let capacity = if max_open_files < 0 {
            usize::MAX
        } else {
            (max_open_files as usize).max(16)
        };
        TableCache {
            inner: Mutex::new(TableCacheInner {
                map: HashMap::new(),
                tick: 0,
                evictions: 0,
            }),
            capacity,
        }
    }

    /// Returns the cached reader for `file`, if open.
    pub fn get(&self, file: FileNumber) -> Option<Arc<T>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.get_mut(&file).map(|(r, t)| {
            *t = tick;
            Arc::clone(r)
        })
    }

    /// Inserts a freshly opened reader, evicting the LRU one if full.
    ///
    /// Returns every reader displaced by this insert — a same-key
    /// replacement and any capacity-driven LRU victims — so the caller
    /// can release whatever accounting (memory reservations) it holds
    /// against them.
    pub fn insert(&self, file: FileNumber, reader: Arc<T>) -> Vec<Arc<T>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let mut displaced = Vec::new();
        if let Some((old, _)) = inner.map.insert(file, (reader, tick)) {
            displaced.push(old);
        }
        while inner.map.len() > self.capacity {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| *k)
                .expect("non-empty when over capacity");
            if let Some((old, _)) = inner.map.remove(&victim) {
                displaced.push(old);
            }
            inner.evictions += 1;
        }
        displaced
    }

    /// Removes a reader (when its file is deleted), returning it so the
    /// caller can release accounting held against it.
    pub fn evict(&self, file: FileNumber) -> Option<Arc<T>> {
        self.inner.lock().map.remove(&file).map(|(r, _)| r)
    }

    /// Number of open readers.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether no readers are open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Capacity-driven evictions so far.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().evictions
    }

    /// Drops all open readers, returning them for accounting release.
    pub fn clear(&self) -> Vec<Arc<T>> {
        self.inner
            .lock()
            .map
            .drain()
            .map(|(_, (r, _))| r)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(f: u64, off: u64) -> BlockKey {
        cache_key(FileNumber(f), off)
    }

    fn block(n: usize) -> Arc<Vec<u8>> {
        Arc::new(vec![0u8; n])
    }

    #[test]
    fn get_after_insert_hits() {
        let c = BlockCache::new(1 << 20, 2);
        c.insert(key(1, 0), block(100));
        assert!(c.get(&key(1, 0)).is_some());
        assert!(c.get(&key(1, 4096)).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn capacity_evicts_lru() {
        // Single shard for deterministic eviction order.
        let c = BlockCache::new(4096, 0);
        c.insert(key(1, 0), block(1500));
        c.insert(key(1, 1), block(1500));
        // Touch the first entry so the second becomes LRU.
        assert!(c.get(&key(1, 0)).is_some());
        c.insert(key(1, 2), block(1500));
        assert!(c.get(&key(1, 0)).is_some(), "recently used survives");
        assert!(c.get(&key(1, 1)).is_none(), "LRU evicted");
        assert!(c.stats().evictions >= 1);
    }

    #[test]
    fn oversized_blocks_bypass() {
        let c = BlockCache::new(1024, 0);
        c.insert(key(1, 0), block(10_000));
        assert!(c.get(&key(1, 0)).is_none());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn used_bytes_tracks_contents() {
        let c = BlockCache::new(1 << 20, 2);
        c.insert(key(1, 0), block(1000));
        c.insert(key(2, 0), block(2000));
        assert!(c.used_bytes() >= 3000);
        c.clear();
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn reinsert_same_key_replaces() {
        let c = BlockCache::new(1 << 20, 0);
        c.insert(key(1, 0), block(1000));
        c.insert(key(1, 0), block(500));
        assert_eq!(c.get(&key(1, 0)).unwrap().len(), 500);
        assert!(c.used_bytes() < 1000);
    }

    #[test]
    fn hit_ratio_computes() {
        let c = BlockCache::new(1 << 20, 0);
        c.insert(key(1, 0), block(10));
        c.get(&key(1, 0));
        c.get(&key(9, 9));
        assert!((c.stats().hit_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn snapshot_is_internally_consistent() {
        let c = BlockCache::new(8192, 2);
        for i in 0..50 {
            c.insert(key(i, 0), block(936)); // 936 + 64 = 1000 charged bytes
            c.get(&key(i, 0));
        }
        let snap = c.snapshot();
        // Distinct fixed-size keys: bytes in cache are exactly the net
        // insert count times the per-entry charge.
        assert_eq!(
            snap.used_bytes,
            (snap.stats.inserts - snap.stats.evictions) * 1000
        );
        assert_eq!(snap.capacity, c.capacity());
        assert_eq!(snap.stats, c.stats());
    }

    #[test]
    fn table_cache_bounds_open_files() {
        let tc: TableCache<String> = TableCache::new(16);
        let mut displaced = 0usize;
        for i in 0..40 {
            displaced += tc.insert(FileNumber(i), Arc::new(format!("reader-{i}"))).len();
        }
        assert_eq!(tc.len(), 16);
        assert!(tc.evictions() >= 24);
        // Every insert past capacity hands its victim back to the caller.
        assert_eq!(displaced as u64, tc.evictions());
        // Most recent files survive.
        assert!(tc.get(FileNumber(39)).is_some());
        assert!(tc.get(FileNumber(0)).is_none());
    }

    #[test]
    fn table_cache_insert_returns_replaced_reader() {
        let tc: TableCache<u32> = TableCache::new(-1);
        assert!(tc.insert(FileNumber(1), Arc::new(7)).is_empty());
        let displaced = tc.insert(FileNumber(1), Arc::new(8));
        assert_eq!(displaced.len(), 1);
        assert_eq!(*displaced[0], 7);
        assert_eq!(tc.evictions(), 0, "replacement is not a capacity eviction");
    }

    #[test]
    fn table_cache_unbounded_with_minus_one() {
        let tc: TableCache<u32> = TableCache::new(-1);
        for i in 0..1000 {
            tc.insert(FileNumber(i), Arc::new(i as u32));
        }
        assert_eq!(tc.len(), 1000);
        assert_eq!(tc.evictions(), 0);
    }

    #[test]
    fn table_cache_evict_removes() {
        let tc: TableCache<u32> = TableCache::new(-1);
        tc.insert(FileNumber(1), Arc::new(1));
        assert_eq!(tc.evict(FileNumber(1)).map(|r| *r), Some(1));
        assert!(tc.evict(FileNumber(1)).is_none());
        assert!(tc.get(FileNumber(1)).is_none());
        assert!(tc.is_empty());
        let tc2: TableCache<u32> = TableCache::new(-1);
        tc2.insert(FileNumber(2), Arc::new(2));
        tc2.insert(FileNumber(3), Arc::new(3));
        assert_eq!(tc2.clear().len(), 2);
        assert!(tc2.is_empty());
    }
}
