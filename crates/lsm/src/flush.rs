//! Flush: merging immutable memtables into one L0 table file.

use std::cmp::Ordering;
use std::sync::Arc;

use crate::error::Result;
use crate::memtable::MemTable;
use crate::sstable::table::{FinishedTable, TableBuilder, TableConfig};
use crate::types::{internal_key_cmp, FileNumber};
use crate::vfs::Vfs;

/// Name of an SST file on the VFS.
pub fn sst_file_name(number: FileNumber) -> String {
    format!("{number}.sst")
}

/// A built L0 table plus merge accounting for the statistics registry.
#[derive(Debug)]
pub struct FlushOutput {
    /// The finished table.
    pub table: FinishedTable,
    /// Shadowed versions dropped during the merge.
    pub entries_dropped: u64,
}

/// Merges `mems` (newest last) into a single L0 table.
///
/// Shadowed versions of a user key are dropped (the engine does not
/// expose snapshots); tombstones are always kept because older versions
/// may exist in deeper levels.
///
/// # Errors
///
/// Returns [`ErrorKind::Io`](crate::ErrorKind) on write failure; the caller deletes the
/// partial file.
pub fn build_l0_table(
    vfs: &dyn Vfs,
    number: FileNumber,
    mems: &[Arc<MemTable>],
    config: TableConfig,
) -> Result<FlushOutput> {
    let file = vfs.create(&sst_file_name(number))?;
    let mut builder = TableBuilder::new(file, config);

    // K-way merge over the memtables' sorted iterators. Ties on user key
    // are impossible at the internal-key level (sequence numbers are
    // unique), and internal-key order puts the newest version first.
    let mut iters: Vec<_> = mems.iter().map(|m| m.iter().peekable()).collect();
    let mut last_user_key: Option<Vec<u8>> = None;
    let mut entries_dropped = 0u64;
    loop {
        let mut best: Option<(usize, &[u8])> = None;
        for (i, it) in iters.iter_mut().enumerate() {
            if let Some((k, _)) = it.peek() {
                match best {
                    None => best = Some((i, k)),
                    Some((_, bk)) if internal_key_cmp(k, bk) == Ordering::Less => {
                        best = Some((i, k))
                    }
                    _ => {}
                }
            }
        }
        let Some((idx, _)) = best else { break };
        let (key, value) = iters[idx].next().expect("peeked entry exists");
        let user_key = &key[..key.len() - 8];
        let shadowed = last_user_key.as_deref() == Some(user_key);
        if !shadowed {
            builder.add(key, value)?;
            last_user_key = Some(user_key.to_vec());
        } else {
            entries_dropped += 1;
        }
    }
    Ok(FlushOutput {
        table: builder.finish()?,
        entries_dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sstable::block::Block;
    use crate::sstable::table::TableReader;
    use crate::types::{InternalKey, ValueType};
    use crate::vfs::MemVfs;

    fn read_all_entries(vfs: &MemVfs, number: FileNumber) -> Vec<(Vec<u8>, u64, ValueType, Vec<u8>)> {
        let (reader, _) = TableReader::open(vfs.open(&sst_file_name(number)).unwrap()).unwrap();
        let mut out = Vec::new();
        for h in reader.block_handles().unwrap() {
            let fetch = reader.read_block(h).unwrap();
            let block = Block::parse(fetch.data).unwrap();
            let mut it = block.iter();
            while it.advance().unwrap() {
                let ik = InternalKey::decode(it.key()).unwrap();
                out.push((
                    ik.user_key().to_vec(),
                    ik.sequence(),
                    ik.value_type(),
                    it.value().to_vec(),
                ));
            }
        }
        out
    }

    #[test]
    fn single_memtable_flush() {
        let vfs = MemVfs::new();
        let mut mt = MemTable::new(0);
        for i in 0..100 {
            mt.add(i + 1, ValueType::Value, format!("k{i:03}").as_bytes(), b"v");
        }
        let out = build_l0_table(&vfs, FileNumber(1), &[Arc::new(mt)], TableConfig::default()).unwrap();
        assert_eq!(out.table.properties.num_entries, 100);
        assert_eq!(out.entries_dropped, 0);
        let entries = read_all_entries(&vfs, FileNumber(1));
        assert_eq!(entries.len(), 100);
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn merge_multiple_memtables_newest_wins() {
        let vfs = MemVfs::new();
        let mut old = MemTable::new(0);
        old.add(1, ValueType::Value, b"dup", b"old");
        old.add(2, ValueType::Value, b"only-old", b"x");
        let mut new = MemTable::new(0);
        new.add(10, ValueType::Value, b"dup", b"new");
        new.add(11, ValueType::Value, b"only-new", b"y");
        let out = build_l0_table(
            &vfs,
            FileNumber(2),
            &[Arc::new(old), Arc::new(new)],
            TableConfig::default(),
        )
        .unwrap();
        assert_eq!(out.table.properties.num_entries, 3, "shadowed dup dropped");
        assert_eq!(out.entries_dropped, 1);
        let entries = read_all_entries(&vfs, FileNumber(2));
        let dup = entries.iter().find(|e| e.0 == b"dup").unwrap();
        assert_eq!(dup.3, b"new");
        assert_eq!(dup.1, 10);
    }

    #[test]
    fn tombstones_survive_flush() {
        let vfs = MemVfs::new();
        let mut mt = MemTable::new(0);
        mt.add(1, ValueType::Value, b"k", b"v");
        mt.add(2, ValueType::Deletion, b"k", b"");
        let _ = build_l0_table(&vfs, FileNumber(3), &[Arc::new(mt)], TableConfig::default()).unwrap();
        let entries = read_all_entries(&vfs, FileNumber(3));
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].2, ValueType::Deletion);
    }

    #[test]
    fn smallest_largest_span_all_inputs() {
        let vfs = MemVfs::new();
        let mut a = MemTable::new(0);
        a.add(1, ValueType::Value, b"mmm", b"");
        let mut b = MemTable::new(0);
        b.add(2, ValueType::Value, b"aaa", b"");
        b.add(3, ValueType::Value, b"zzz", b"");
        let fin = build_l0_table(
            &vfs,
            FileNumber(4),
            &[Arc::new(a), Arc::new(b)],
            TableConfig::default(),
        )
        .unwrap()
        .table;
        assert_eq!(fin.smallest.user_key(), b"aaa");
        assert_eq!(fin.largest.user_key(), b"zzz");
    }
}
