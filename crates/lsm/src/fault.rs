//! Fault-injection VFS layer, modeled on RocksDB's `FaultInjectionTestFS`.
//!
//! [`FaultInjectionVfs`] wraps any [`Vfs`] and tracks, per file, which bytes
//! have been durably synced to the base VFS (the *persisted prefix*) versus
//! which are still sitting in a volatile tail (the simulated page cache).
//! On top of that bookkeeping it can:
//!
//! - **simulate a power cut** ([`FaultInjectionVfs::power_off`] +
//!   [`FaultInjectionVfs::reboot`]): every un-synced tail is dropped, or —
//!   with [`TearStyle::TearTail`] — a random prefix of the tail is kept, as
//!   when a crash tears the last in-flight write;
//! - **inject I/O errors** per operation class, either by probability or by
//!   a call-count trigger ([`FaultInjectionVfs::fail_after_ops`]); injected
//!   errors fail *before* mutating any state, so a retried operation sees a
//!   consistent file;
//! - **answer durability queries** ([`FaultInjectionVfs::persisted_len`],
//!   [`FaultInjectionVfs::unsynced_bytes`]) so a crash harness knows exactly
//!   which bytes must survive.
//!
//! The wrapper preserves the engine-visible semantics of the base VFS while
//! the power is on: un-synced bytes are readable (they live in the page
//! cache), files appear in [`Vfs::list`], and handle drop does *not* lose
//! data. Only a power cut destroys un-synced state.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{Error, Result};
use crate::vfs::{RandomAccessFile, Vfs, WritableFile};

/// Probability/trigger knobs for [`FaultInjectionVfs`].
///
/// All probabilities are per-operation in `[0.0, 1.0]`. The default config
/// injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that an `append` fails (before any bytes are buffered).
    pub write_error_prob: f64,
    /// Probability that a `sync` fails (before any bytes are persisted).
    pub sync_error_prob: f64,
    /// Probability that a positional read or `read_all` fails.
    pub read_error_prob: f64,
    /// Probability that a metadata op (`create`/`delete`/`rename`) fails.
    pub metadata_error_prob: f64,
    /// Whether injected errors report [`Error::is_retryable`]` == true`
    /// (transient faults) or `false` (hard faults).
    pub errors_are_retryable: bool,
    /// Seed for the deterministic internal RNG.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            write_error_prob: 0.0,
            sync_error_prob: 0.0,
            read_error_prob: 0.0,
            metadata_error_prob: 0.0,
            errors_are_retryable: true,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// How a simulated power cut treats the un-synced tail of each file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TearStyle {
    /// Drop every un-synced byte cleanly (classic power cut).
    DropUnsynced,
    /// Keep a random prefix of each un-synced tail, simulating a torn
    /// last write. The kept bytes become part of the durable file image.
    TearTail {
        /// Seed for the per-file prefix choice.
        seed: u64,
    },
}

/// Per-file wrapper state.
#[derive(Default)]
struct FileEntry {
    /// Open base writer; receives bytes only at `sync` time.
    writer: Option<Box<dyn WritableFile>>,
    /// Bytes forwarded to the base VFS (durable).
    persisted: u64,
    /// Torn-write residue: bytes that landed on media during a crash but
    /// were never acknowledged by a sync. Durable across reboots.
    residue: Vec<u8>,
    /// Un-synced tail (simulated page cache). Lost on power cut.
    tail: Vec<u8>,
    /// Whether the handle called `finish`.
    finished: bool,
}

impl FileEntry {
    fn volatile_overlay(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.residue.len() + self.tail.len());
        v.extend_from_slice(&self.residue);
        v.extend_from_slice(&self.tail);
        v
    }
}

struct Inner {
    base: Arc<dyn Vfs>,
    files: HashMap<String, FileEntry>,
    cfg: FaultConfig,
    rng: u64,
    powered_off: bool,
    /// Count-down trigger: inject exactly one error after this many more
    /// faultable operations.
    fail_after: Option<u64>,
    injected: u64,
}

/// Operation classes for error injection.
#[derive(Clone, Copy)]
enum OpClass {
    Write,
    Sync,
    Read,
    Metadata,
}

impl OpClass {
    fn name(self) -> &'static str {
        match self {
            OpClass::Write => "write",
            OpClass::Sync => "sync",
            OpClass::Read => "read",
            OpClass::Metadata => "metadata",
        }
    }
}

impl Inner {
    fn next_f64(&mut self) -> f64 {
        // xorshift64* — deterministic, cheap, good enough for fault dice.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
        bits as f64 / (1u64 << 53) as f64
    }

    /// Runs the power/injection checks for one faultable operation.
    /// Fails *before* the caller mutates anything.
    fn check(&mut self, op: OpClass) -> Result<()> {
        if self.powered_off {
            return Err(Error::io("simulated power loss").retryable(false));
        }
        if let Some(n) = self.fail_after {
            if n == 0 {
                self.fail_after = None;
                return Err(self.inject(op));
            }
            self.fail_after = Some(n - 1);
        }
        let prob = match op {
            OpClass::Write => self.cfg.write_error_prob,
            OpClass::Sync => self.cfg.sync_error_prob,
            OpClass::Read => self.cfg.read_error_prob,
            OpClass::Metadata => self.cfg.metadata_error_prob,
        };
        if prob > 0.0 && self.next_f64() < prob {
            return Err(self.inject(op));
        }
        Ok(())
    }

    fn inject(&mut self, op: OpClass) -> Error {
        self.injected += 1;
        Error::io(format!("injected {} error", op.name()))
            .retryable(self.cfg.errors_are_retryable)
    }
}

/// A [`Vfs`] wrapper that injects faults and simulates power cuts.
///
/// Cloning is cheap and shares state: keep a clone outside the engine to
/// drive faults while the engine owns the `Arc<dyn Vfs>` view.
///
/// ```
/// use std::sync::Arc;
/// use lsm_kvs::{FaultConfig, FaultInjectionVfs, MemVfs, TearStyle, Vfs};
///
/// let fvfs = FaultInjectionVfs::wrap(Arc::new(MemVfs::new()));
/// let mut f = fvfs.create("000001.log").unwrap();
/// f.append(b"acked").unwrap();
/// f.sync().unwrap();            // durable
/// f.append(b"in flight").unwrap(); // page cache only
/// drop(f);
/// fvfs.power_off();
/// fvfs.reboot(TearStyle::DropUnsynced);
/// assert_eq!(fvfs.read_all("000001.log").unwrap(), b"acked");
/// ```
#[derive(Clone)]
pub struct FaultInjectionVfs {
    inner: Arc<Mutex<Inner>>,
}

impl FaultInjectionVfs {
    /// Wraps a base VFS with default (inactive) fault configuration.
    pub fn wrap(base: Arc<dyn Vfs>) -> Self {
        Self::with_config(base, FaultConfig::default())
    }

    /// Wraps a base VFS with the given fault configuration.
    pub fn with_config(base: Arc<dyn Vfs>, cfg: FaultConfig) -> Self {
        FaultInjectionVfs {
            inner: Arc::new(Mutex::new(Inner {
                base,
                files: HashMap::new(),
                rng: cfg.seed | 1,
                cfg,
                powered_off: false,
                fail_after: None,
                injected: 0,
            })),
        }
    }

    /// Replaces the fault configuration (probabilities, retryability, seed
    /// is *not* re-applied to the running RNG).
    pub fn set_config(&self, cfg: FaultConfig) {
        self.inner.lock().cfg = cfg;
    }

    /// Current fault configuration.
    pub fn config(&self) -> FaultConfig {
        self.inner.lock().cfg
    }

    /// Arms a one-shot trigger: the `n`-th next faultable operation
    /// (0-based) fails with an injected error, then the trigger disarms.
    pub fn fail_after_ops(&self, n: u64) {
        self.inner.lock().fail_after = Some(n);
    }

    /// Disables probability and one-shot injection. Power state and file
    /// contents are untouched.
    pub fn clear_faults(&self) {
        let mut inner = self.inner.lock();
        let seed = inner.cfg.seed;
        inner.cfg = FaultConfig {
            seed,
            ..FaultConfig::default()
        };
        inner.fail_after = None;
    }

    /// Cuts power: every subsequent operation fails with a non-retryable
    /// I/O error until [`reboot`](Self::reboot).
    pub fn power_off(&self) {
        self.inner.lock().powered_off = true;
    }

    /// Whether power is currently cut.
    pub fn is_powered_off(&self) -> bool {
        self.inner.lock().powered_off
    }

    /// Restores power after a cut, destroying un-synced state.
    ///
    /// All open handles are invalidated (drop them first — the engine
    /// instance using this VFS must be gone). Each file keeps only its
    /// persisted prefix, plus — with [`TearStyle::TearTail`] — a random
    /// prefix of its un-synced tail to simulate a torn final write.
    pub fn reboot(&self, tear: TearStyle) {
        let mut inner = self.inner.lock();
        inner.powered_off = false;
        let mut tear_rng = match tear {
            TearStyle::DropUnsynced => 0,
            TearStyle::TearTail { seed } => seed | 1,
        };
        for entry in inner.files.values_mut() {
            // Dropping the base writer publishes the synced prefix in the
            // base VFS without the un-synced tail ever reaching it.
            entry.writer = None;
            if let TearStyle::TearTail { .. } = tear {
                if !entry.tail.is_empty() {
                    // xorshift64 for the per-file torn length.
                    tear_rng ^= tear_rng >> 12;
                    tear_rng ^= tear_rng << 25;
                    tear_rng ^= tear_rng >> 27;
                    let keep = (tear_rng % (entry.tail.len() as u64 + 1)) as usize;
                    let kept: Vec<u8> = entry.tail[..keep].to_vec();
                    entry.residue.extend_from_slice(&kept);
                }
            }
            entry.tail.clear();
        }
    }

    /// Durable length of `path`: the bytes guaranteed to survive a power
    /// cut right now. `None` if the file is unknown to both layers.
    pub fn persisted_len(&self, path: &str) -> Option<u64> {
        let inner = self.inner.lock();
        let base_len = inner.base.file_size(path).ok();
        match inner.files.get(path) {
            Some(e) => {
                let base = base_len.unwrap_or(e.persisted);
                Some(base + e.residue.len() as u64)
            }
            None => base_len,
        }
    }

    /// Total bytes currently sitting in volatile tails across all files.
    pub fn unsynced_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        inner.files.values().map(|e| e.tail.len() as u64).sum()
    }

    /// Number of errors injected so far (probability + one-shot).
    pub fn injected_errors(&self) -> u64 {
        self.inner.lock().injected
    }
}

impl fmt::Debug for FaultInjectionVfs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("FaultInjectionVfs")
            .field("files", &inner.files.len())
            .field("powered_off", &inner.powered_off)
            .field("injected_errors", &inner.injected)
            .finish()
    }
}

impl Vfs for FaultInjectionVfs {
    fn create(&self, path: &str) -> Result<Box<dyn WritableFile>> {
        let mut inner = self.inner.lock();
        inner.check(OpClass::Metadata)?;
        let writer = inner.base.create(path)?;
        inner.files.insert(
            path.to_string(),
            FileEntry {
                writer: Some(writer),
                ..FileEntry::default()
            },
        );
        Ok(Box::new(FaultFile {
            inner: Arc::clone(&self.inner),
            path: path.to_string(),
            len: 0,
        }))
    }

    fn open(&self, path: &str) -> Result<Arc<dyn RandomAccessFile>> {
        let mut inner = self.inner.lock();
        inner.check(OpClass::Read)?;
        let base = inner.base.open(path).ok();
        let overlay: Vec<u8> = inner
            .files
            .get(path)
            .map(|e| e.volatile_overlay())
            .unwrap_or_default();
        if base.is_none() && overlay.is_empty() && !inner.files.contains_key(path) {
            // Neither layer knows the file: surface the base error.
            return inner.base.open(path);
        }
        let base_len = base.as_ref().map(|b| b.len()).unwrap_or(0);
        Ok(Arc::new(FaultReader {
            inner: Arc::clone(&self.inner),
            base,
            base_len,
            overlay,
        }))
    }

    fn read_all(&self, path: &str) -> Result<Vec<u8>> {
        let mut inner = self.inner.lock();
        inner.check(OpClass::Read)?;
        let overlay = inner.files.get(path).map(|e| e.volatile_overlay());
        match (inner.base.read_all(path), overlay) {
            (Ok(mut data), Some(extra)) => {
                data.extend_from_slice(&extra);
                Ok(data)
            }
            (Ok(data), None) => Ok(data),
            (Err(_), Some(extra)) => Ok(extra),
            (Err(e), None) => Err(e),
        }
    }

    fn delete(&self, path: &str) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.check(OpClass::Metadata)?;
        let had_entry = inner.files.remove(path).is_some();
        match inner.base.delete(path) {
            Ok(()) => Ok(()),
            Err(_) if had_entry => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.check(OpClass::Metadata)?;
        let entry = inner.files.remove(from);
        let had_entry = entry.is_some();
        if let Some(e) = entry {
            inner.files.insert(to.to_string(), e);
        }
        match inner.base.rename(from, to) {
            Ok(()) => Ok(()),
            Err(_) if had_entry => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn exists(&self, path: &str) -> bool {
        let inner = self.inner.lock();
        inner.base.exists(path) || inner.files.contains_key(path)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let inner = self.inner.lock();
        let mut names = inner.base.list(prefix)?;
        for name in inner.files.keys() {
            if name.starts_with(prefix) {
                names.push(name.clone());
            }
        }
        names.sort();
        names.dedup();
        Ok(names)
    }

    fn file_size(&self, path: &str) -> Result<u64> {
        let inner = self.inner.lock();
        let base_len = inner.base.file_size(path);
        match inner.files.get(path) {
            Some(e) => {
                let base = base_len.unwrap_or(e.persisted);
                Ok(base + e.residue.len() as u64 + e.tail.len() as u64)
            }
            None => base_len,
        }
    }
}

/// Writable handle: buffers appends in the volatile tail; forwards to the
/// base writer only on `sync`.
struct FaultFile {
    inner: Arc<Mutex<Inner>>,
    path: String,
    len: u64,
}

impl WritableFile for FaultFile {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.check(OpClass::Write)?;
        match inner.files.get_mut(&self.path) {
            Some(entry) => {
                entry.tail.extend_from_slice(data);
                self.len += data.len() as u64;
                Ok(())
            }
            None => Err(Error::io(format!("{}: file was deleted", self.path))),
        }
    }

    fn sync(&mut self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.check(OpClass::Sync)?;
        let entry = inner
            .files
            .get_mut(&self.path)
            .ok_or_else(|| Error::io(format!("{}: file was deleted", self.path)))?;
        if entry.tail.is_empty() {
            return Ok(());
        }
        let tail = std::mem::take(&mut entry.tail);
        // Forward under the lock so the durable prefix and the tail stay
        // consistent even if the base fails mid-way.
        let forwarded = match entry.writer.as_mut() {
            Some(w) => w.append(&tail).and_then(|_| w.sync()),
            None => Err(Error::io(format!("{}: sync after finish", self.path))),
        };
        let entry = inner.files.get_mut(&self.path).expect("entry exists");
        match forwarded {
            Ok(()) => {
                entry.persisted += tail.len() as u64;
                Ok(())
            }
            Err(e) => {
                // Nothing was acknowledged durable; restore the tail so the
                // bytes remain readable (they are still in the page cache).
                let mut restored = tail;
                restored.append(&mut entry.tail);
                entry.tail = restored;
                Err(e)
            }
        }
    }

    fn finish(&mut self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.check(OpClass::Write)?;
        let entry = inner
            .files
            .get_mut(&self.path)
            .ok_or_else(|| Error::io(format!("{}: file was deleted", self.path)))?;
        // `finish` makes the synced prefix visible in the base VFS but does
        // NOT persist the tail: only `sync` buys durability.
        if let Some(mut w) = entry.writer.take() {
            w.finish()?;
        }
        entry.finished = true;
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len
    }
}

/// Read handle stitching the durable base image with the volatile overlay
/// captured at open time.
struct FaultReader {
    inner: Arc<Mutex<Inner>>,
    base: Option<Arc<dyn RandomAccessFile>>,
    base_len: u64,
    overlay: Vec<u8>,
}

impl RandomAccessFile for FaultReader {
    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.inner.lock().check(OpClass::Read)?;
        let total = self.base_len + self.overlay.len() as u64;
        if offset > total {
            return Err(Error::io(format!(
                "read at {offset} past eof {total}"
            )));
        }
        let mut out = Vec::with_capacity(len);
        let mut pos = offset;
        let mut remaining = len;
        if pos < self.base_len && remaining > 0 {
            let take = remaining.min((self.base_len - pos) as usize);
            let base = self.base.as_ref().expect("base_len > 0 implies reader");
            out.extend_from_slice(&base.read_at(pos, take)?);
            pos += take as u64;
            remaining -= take;
        }
        if remaining > 0 && pos >= self.base_len {
            let start = (pos - self.base_len) as usize;
            let end = (start + remaining).min(self.overlay.len());
            if start < end {
                out.extend_from_slice(&self.overlay[start..end]);
            }
        }
        Ok(out)
    }

    fn len(&self) -> u64 {
        self.base_len + self.overlay.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    fn fvfs() -> FaultInjectionVfs {
        FaultInjectionVfs::wrap(Arc::new(MemVfs::new()))
    }

    #[test]
    fn unsynced_tail_is_readable_until_power_cut() {
        let v = fvfs();
        let mut f = v.create("a.log").unwrap();
        f.append(b"one").unwrap();
        f.sync().unwrap();
        f.append(b"two").unwrap();
        assert_eq!(v.read_all("a.log").unwrap(), b"onetwo");
        assert_eq!(v.persisted_len("a.log"), Some(3));
        assert_eq!(v.unsynced_bytes(), 3);
        drop(f);
        // Handle drop keeps the page cache intact.
        assert_eq!(v.read_all("a.log").unwrap(), b"onetwo");
        v.power_off();
        assert!(v.read_all("a.log").is_err());
        v.reboot(TearStyle::DropUnsynced);
        assert_eq!(v.read_all("a.log").unwrap(), b"one");
        assert_eq!(v.file_size("a.log").unwrap(), 3);
    }

    #[test]
    fn torn_tail_keeps_a_prefix_of_unsynced_bytes() {
        for seed in 1..40u64 {
            let v = fvfs();
            let mut f = v.create("a.log").unwrap();
            f.append(b"durable|").unwrap();
            f.sync().unwrap();
            f.append(b"torn-tail-bytes").unwrap();
            drop(f);
            v.power_off();
            v.reboot(TearStyle::TearTail { seed });
            let data = v.read_all("a.log").unwrap();
            assert!(data.starts_with(b"durable|"));
            let tail = &data[8..];
            assert!(tail.len() <= b"torn-tail-bytes".len());
            assert_eq!(tail, &b"torn-tail-bytes"[..tail.len()]);
        }
    }

    #[test]
    fn power_off_fails_every_operation_non_retryably() {
        let v = fvfs();
        let mut f = v.create("a.log").unwrap();
        f.append(b"x").unwrap();
        v.power_off();
        let err = f.append(b"y").unwrap_err();
        assert!(err.is_io());
        assert!(!err.is_retryable());
        assert!(f.sync().is_err());
        assert!(v.create("b.log").is_err());
        assert!(v.read_all("a.log").is_err());
        assert!(v.delete("a.log").is_err());
    }

    #[test]
    fn probability_injection_is_deterministic_and_counted() {
        let mk = || {
            let v = fvfs();
            v.set_config(FaultConfig {
                write_error_prob: 0.5,
                seed: 42,
                ..FaultConfig::default()
            });
            let mut f = v.create("a.log").unwrap();
            let mut outcomes = Vec::new();
            for _ in 0..32 {
                outcomes.push(f.append(b"x").is_ok());
            }
            (outcomes, v.injected_errors())
        };
        let (a, count_a) = mk();
        let (b, count_b) = mk();
        assert_eq!(a, b, "same seed must give the same fault schedule");
        assert_eq!(count_a, count_b);
        assert!(count_a > 0, "prob 0.5 over 32 ops must inject something");
        assert!(a.iter().any(|ok| *ok), "and must let something through");
    }

    #[test]
    fn one_shot_trigger_fires_exactly_once() {
        let v = fvfs();
        let mut f = v.create("a.log").unwrap();
        v.fail_after_ops(2);
        assert!(f.append(b"0").is_ok());
        assert!(f.append(b"1").is_ok());
        let err = f.append(b"2").unwrap_err();
        assert!(err.is_retryable(), "injected faults default to retryable");
        assert!(f.append(b"3").is_ok(), "trigger disarms after firing");
        assert_eq!(v.injected_errors(), 1);
        // Failed append buffered nothing: content is exactly 0,1,3.
        f.sync().unwrap();
        assert_eq!(v.read_all("a.log").unwrap(), b"013");
    }

    #[test]
    fn failed_sync_persists_nothing_and_retry_succeeds() {
        let v = fvfs();
        let mut f = v.create("a.log").unwrap();
        f.append(b"payload").unwrap();
        v.fail_after_ops(0);
        assert!(f.sync().is_err());
        assert_eq!(v.persisted_len("a.log"), Some(0));
        assert_eq!(v.read_all("a.log").unwrap(), b"payload");
        // Transient fault cleared: re-sync persists everything.
        f.sync().unwrap();
        assert_eq!(v.persisted_len("a.log"), Some(7));
        assert_eq!(v.unsynced_bytes(), 0);
    }

    #[test]
    fn open_reader_stitches_base_and_overlay() {
        let v = fvfs();
        let mut f = v.create("t.sst").unwrap();
        f.append(b"0123456789").unwrap();
        f.sync().unwrap();
        f.append(b"abcdef").unwrap();
        f.finish().unwrap();
        let r = v.open("t.sst").unwrap();
        assert_eq!(r.len(), 16);
        assert_eq!(r.read_at(0, 16).unwrap(), b"0123456789abcdef");
        assert_eq!(r.read_at(8, 4).unwrap(), b"89ab");
        assert_eq!(r.read_at(12, 10).unwrap(), b"cdef");
    }

    #[test]
    fn rename_and_delete_carry_overlay_state() {
        let v = fvfs();
        let mut f = v.create("CURRENT.tmp").unwrap();
        f.append(b"MANIFEST-000007").unwrap();
        f.sync().unwrap();
        f.finish().unwrap();
        drop(f);
        v.rename("CURRENT.tmp", "CURRENT").unwrap();
        assert!(!v.exists("CURRENT.tmp"));
        assert_eq!(v.read_all("CURRENT").unwrap(), b"MANIFEST-000007");
        v.delete("CURRENT").unwrap();
        assert!(!v.exists("CURRENT"));
        assert!(v.read_all("CURRENT").is_err());
    }

    #[test]
    fn list_merges_base_and_wrapper_views() {
        let v = fvfs();
        let mut a = v.create("000001.log").unwrap();
        a.append(b"unsynced").unwrap(); // exists only in the wrapper
        let mut b = v.create("000002.sst").unwrap();
        b.append(b"x").unwrap();
        b.sync().unwrap();
        b.finish().unwrap();
        let names = v.list("0000").unwrap();
        assert_eq!(names, vec!["000001.log".to_string(), "000002.sst".to_string()]);
    }

    #[test]
    fn clear_faults_disarms_injection() {
        let v = fvfs();
        v.set_config(FaultConfig {
            write_error_prob: 1.0,
            ..FaultConfig::default()
        });
        let mut f = v.create("a.log").unwrap();
        assert!(f.append(b"x").is_err());
        v.clear_faults();
        assert!(f.append(b"x").is_ok());
    }
}
