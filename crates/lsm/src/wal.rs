//! Write-ahead log: CRC-framed records with torn-tail-tolerant recovery.
//!
//! Frame layout: `fixed32 crc32c(payload) | fixed32 len | payload`.
//! Recovery stops cleanly at the first incomplete or corrupt frame,
//! treating it as the crash point (like RocksDB's default WAL recovery
//! mode).

use crate::error::{Error, Result};
use crate::util::{crc32c, get_fixed32, put_fixed32};
use crate::vfs::WritableFile;

const FRAME_HEADER: usize = 8;

/// Appends framed records to a WAL file.
pub struct WalWriter {
    file: Box<dyn WritableFile>,
    bytes_written: u64,
    bytes_since_sync: u64,
    appends: u64,
    syncs: u64,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("bytes_written", &self.bytes_written)
            .finish_non_exhaustive()
    }
}

impl WalWriter {
    /// Wraps a fresh file.
    pub fn new(file: Box<dyn WritableFile>) -> Self {
        WalWriter {
            file,
            bytes_written: 0,
            bytes_since_sync: 0,
            appends: 0,
            syncs: 0,
        }
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Io`](crate::ErrorKind) if the append fails.
    pub fn add_record(&mut self, payload: &[u8]) -> Result<u64> {
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        put_fixed32(&mut frame, crc32c(payload));
        put_fixed32(&mut frame, payload.len() as u32);
        frame.extend_from_slice(payload);
        self.file.append(&frame)?;
        let len = frame.len() as u64;
        self.bytes_written += len;
        self.bytes_since_sync += len;
        self.appends += 1;
        Ok(len)
    }

    /// Appends several records with a single buffered file write.
    ///
    /// Group commit uses this to land a whole leader-drained batch group
    /// in one append call; framing is identical to repeated
    /// [`add_record`](Self::add_record) calls.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Io`](crate::ErrorKind) if the append fails.
    pub fn add_records(&mut self, payloads: &[&[u8]]) -> Result<u64> {
        let total: usize = payloads.iter().map(|p| FRAME_HEADER + p.len()).sum();
        let mut frames = Vec::with_capacity(total);
        for payload in payloads {
            put_fixed32(&mut frames, crc32c(payload));
            put_fixed32(&mut frames, payload.len() as u32);
            frames.extend_from_slice(payload);
        }
        self.file.append(&frames)?;
        let len = frames.len() as u64;
        self.bytes_written += len;
        self.bytes_since_sync += len;
        self.appends += 1;
        Ok(len)
    }

    /// Durably syncs the log.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Io`](crate::ErrorKind) if the sync fails.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync()?;
        self.bytes_since_sync = 0;
        self.syncs += 1;
        Ok(())
    }

    /// Total bytes appended.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Bytes appended since the last [`sync`](Self::sync).
    pub fn bytes_since_sync(&self) -> u64 {
        self.bytes_since_sync
    }

    /// Append operations performed on this log file (a group-committed
    /// multi-record append counts once).
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Successful syncs of this log file.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }
}

/// The outcome of replaying a WAL file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalReplay {
    /// Intact record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes consumed before the first torn/corrupt frame (or EOF).
    pub valid_bytes: u64,
    /// Whether a torn or corrupt tail was detected (and discarded).
    pub torn_tail: bool,
}

/// Replays all intact records in `data`.
///
/// A truncated final frame is treated as a crash artifact and silently
/// dropped. A *checksum mismatch* on a complete frame is reported as
/// corruption only when `strict` is set; otherwise replay stops there.
///
/// # Errors
///
/// With `strict`, returns [`ErrorKind::Corruption`](crate::ErrorKind) on a checksum mismatch.
pub fn replay_wal(data: &[u8], strict: bool) -> Result<WalReplay> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut torn = false;
    while pos + FRAME_HEADER <= data.len() {
        let crc = get_fixed32(data, pos).expect("bounds checked");
        let len = get_fixed32(data, pos + 4).expect("bounds checked") as usize;
        let payload_start = pos + FRAME_HEADER;
        if payload_start + len > data.len() {
            torn = true;
            break;
        }
        let payload = &data[payload_start..payload_start + len];
        if crc32c(payload) != crc {
            if strict {
                return Err(Error::corruption(format!(
                    "wal checksum mismatch at offset {pos}"
                )));
            }
            torn = true;
            break;
        }
        records.push(payload.to_vec());
        pos = payload_start + len;
    }
    if pos < data.len() && !torn {
        torn = true; // trailing garbage shorter than a header
    }
    Ok(WalReplay {
        records,
        valid_bytes: pos as u64,
        torn_tail: torn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{MemVfs, Vfs};

    fn write_records(vfs: &MemVfs, name: &str, records: &[&[u8]]) {
        let mut w = WalWriter::new(vfs.create(name).unwrap());
        for r in records {
            w.add_record(r).unwrap();
        }
        w.sync().unwrap();
    }

    #[test]
    fn roundtrip_records() {
        let vfs = MemVfs::new();
        write_records(&vfs, "wal", &[b"first", b"second", b""]);
        let replay = replay_wal(&vfs.read_all("wal").unwrap(), true).unwrap();
        assert_eq!(replay.records, vec![b"first".to_vec(), b"second".to_vec(), vec![]]);
        assert!(!replay.torn_tail);
    }

    #[test]
    fn torn_tail_is_dropped() {
        let vfs = MemVfs::new();
        write_records(&vfs, "wal", &[b"keep-me", b"torn-record"]);
        let full = vfs.read_all("wal").unwrap();
        // Cut into the middle of the second frame.
        let cut = full.len() - 5;
        let replay = replay_wal(&full[..cut], false).unwrap();
        assert_eq!(replay.records, vec![b"keep-me".to_vec()]);
        assert!(replay.torn_tail);
    }

    #[test]
    fn corrupt_frame_strict_vs_lenient() {
        let vfs = MemVfs::new();
        write_records(&vfs, "wal", &[b"aaaa", b"bbbb"]);
        let mut data = vfs.read_all("wal").unwrap();
        let second_frame = FRAME_HEADER + 4;
        data[second_frame + FRAME_HEADER] ^= 0xff; // corrupt second payload
        assert!(replay_wal(&data, true).is_err());
        let replay = replay_wal(&data, false).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(replay.torn_tail);
    }

    #[test]
    fn byte_accounting() {
        let vfs = MemVfs::new();
        let mut w = WalWriter::new(vfs.create("wal").unwrap());
        w.add_record(b"12345").unwrap();
        assert_eq!(w.bytes_written(), 13);
        assert_eq!(w.bytes_since_sync(), 13);
        assert_eq!((w.appends(), w.syncs()), (1, 0));
        w.sync().unwrap();
        assert_eq!(w.bytes_since_sync(), 0);
        assert_eq!(w.bytes_written(), 13);
        w.add_records(&[b"a", b"b"]).unwrap();
        assert_eq!((w.appends(), w.syncs()), (2, 1));
    }

    #[test]
    fn empty_log_replays_empty() {
        let replay = replay_wal(&[], true).unwrap();
        assert!(replay.records.is_empty());
        assert!(!replay.torn_tail);
    }

    #[test]
    fn header_only_tail_is_torn() {
        let vfs = MemVfs::new();
        write_records(&vfs, "wal", &[b"x"]);
        let mut data = vfs.read_all("wal").unwrap();
        data.extend_from_slice(&[1, 2, 3]); // garbage shorter than a header
        let replay = replay_wal(&data, false).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(replay.torn_tail);
    }
}
