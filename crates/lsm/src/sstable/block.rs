//! Data/index block format: prefix-compressed entries with restart points.
//!
//! The layout follows LevelDB/RocksDB:
//!
//! ```text
//! entry*: varint32 shared | varint32 non_shared | varint32 value_len
//!         | key_delta[non_shared] | value[value_len]
//! trailer: fixed32 restart_offset* | fixed32 num_restarts
//! ```
//!
//! Keys are *encoded internal keys*; ordering uses the internal-key
//! comparator.

use crate::error::{Error, Result};
use crate::types::internal_key_cmp;
use crate::util::{get_fixed32, get_varint32, put_fixed32, put_varint32};

/// Builds one block of sorted key/value entries.
#[derive(Debug)]
pub struct BlockBuilder {
    buf: Vec<u8>,
    restarts: Vec<u32>,
    restart_interval: usize,
    count_since_restart: usize,
    last_key: Vec<u8>,
    num_entries: usize,
}

impl BlockBuilder {
    /// Creates a builder with a restart point every `restart_interval`
    /// entries (values below 1 are clamped to 1).
    pub fn new(restart_interval: usize) -> Self {
        BlockBuilder {
            buf: Vec::new(),
            restarts: vec![0],
            restart_interval: restart_interval.max(1),
            count_since_restart: 0,
            last_key: Vec::new(),
            num_entries: 0,
        }
    }

    /// Appends an entry. Keys must arrive in strictly increasing
    /// internal-key order.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when keys are out of order.
    pub fn add(&mut self, key: &[u8], value: &[u8]) {
        debug_assert!(
            self.num_entries == 0
                || internal_key_cmp(&self.last_key, key) == std::cmp::Ordering::Less,
            "keys must be added in sorted order"
        );
        let shared = if self.count_since_restart < self.restart_interval {
            common_prefix_len(&self.last_key, key)
        } else {
            self.restarts.push(self.buf.len() as u32);
            self.count_since_restart = 0;
            0
        };
        let non_shared = key.len() - shared;
        put_varint32(&mut self.buf, shared as u32);
        put_varint32(&mut self.buf, non_shared as u32);
        put_varint32(&mut self.buf, value.len() as u32);
        self.buf.extend_from_slice(&key[shared..]);
        self.buf.extend_from_slice(value);
        self.last_key = key.to_vec();
        self.count_since_restart += 1;
        self.num_entries += 1;
    }

    /// Current serialized size estimate, including the trailer.
    pub fn size_estimate(&self) -> usize {
        self.buf.len() + self.restarts.len() * 4 + 4
    }

    /// Number of entries added.
    pub fn num_entries(&self) -> usize {
        self.num_entries
    }

    /// Whether the block holds no entries.
    pub fn is_empty(&self) -> bool {
        self.num_entries == 0
    }

    /// Serializes the block and resets the builder.
    pub fn finish(&mut self) -> Vec<u8> {
        let mut out = std::mem::take(&mut self.buf);
        for r in &self.restarts {
            put_fixed32(&mut out, *r);
        }
        put_fixed32(&mut out, self.restarts.len() as u32);
        self.restarts = vec![0];
        self.count_since_restart = 0;
        self.last_key.clear();
        self.num_entries = 0;
        out
    }
}

fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// A parsed, immutable block supporting seek and scan.
#[derive(Debug, Clone)]
pub struct Block {
    data: Vec<u8>,
    restarts_offset: usize,
    restarts: Vec<u32>,
}

impl Block {
    /// Parses a serialized block.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Corruption`](crate::ErrorKind) if the trailer is malformed.
    pub fn parse(data: Vec<u8>) -> Result<Block> {
        if data.len() < 4 {
            return Err(Error::corruption("block too small for trailer"));
        }
        let num_restarts = get_fixed32(&data, data.len() - 4)
            .ok_or_else(|| Error::corruption("block trailer unreadable"))? as usize;
        let trailer = num_restarts
            .checked_mul(4)
            .and_then(|n| n.checked_add(4))
            .ok_or_else(|| Error::corruption("restart count overflow"))?;
        if trailer > data.len() {
            return Err(Error::corruption("restart array past block end"));
        }
        let restarts_offset = data.len() - trailer;
        let mut restarts = Vec::with_capacity(num_restarts);
        for i in 0..num_restarts {
            let off = get_fixed32(&data, restarts_offset + i * 4)
                .ok_or_else(|| Error::corruption("restart entry unreadable"))?;
            if off as usize > restarts_offset {
                return Err(Error::corruption("restart offset out of range"));
            }
            restarts.push(off);
        }
        Ok(Block {
            data,
            restarts_offset,
            restarts,
        })
    }

    /// Returns an iterator positioned before the first entry.
    pub fn iter(&self) -> BlockIter<'_> {
        BlockIter {
            block: self,
            offset: 0,
            key: Vec::new(),
            value_range: (0, 0),
            valid: false,
        }
    }

    /// Finds the first entry with internal key >= `target`; returns its
    /// key and value, or `None` when every entry is smaller.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Corruption`](crate::ErrorKind) if entry decoding fails.
    pub fn seek(&self, target: &[u8]) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        // Binary search the restart points for the last restart whose key
        // is < target, then scan linearly.
        let mut lo = 0usize;
        let mut hi = self.restarts.len();
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let key = self.key_at_restart(mid)?;
            if internal_key_cmp(&key, target) == std::cmp::Ordering::Less {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let mut it = self.iter();
        it.offset = self.restarts[lo] as usize;
        it.key.clear();
        while it.advance()? {
            if internal_key_cmp(it.key(), target) != std::cmp::Ordering::Less {
                return Ok(Some((it.key().to_vec(), it.value().to_vec())));
            }
        }
        Ok(None)
    }

    fn key_at_restart(&self, idx: usize) -> Result<Vec<u8>> {
        let mut it = self.iter();
        it.offset = self.restarts[idx] as usize;
        it.key.clear();
        if !it.advance()? {
            return Err(Error::corruption("restart points at empty region"));
        }
        Ok(it.key().to_vec())
    }
}

/// Forward iterator over a [`Block`].
#[derive(Debug)]
pub struct BlockIter<'a> {
    block: &'a Block,
    offset: usize,
    key: Vec<u8>,
    value_range: (usize, usize),
    valid: bool,
}

impl<'a> BlockIter<'a> {
    /// Advances to the next entry; returns `false` at the end.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Corruption`](crate::ErrorKind) on malformed entries.
    pub fn advance(&mut self) -> Result<bool> {
        if self.offset >= self.block.restarts_offset {
            self.valid = false;
            return Ok(false);
        }
        let data = &self.block.data;
        let (shared, n1) = get_varint32(&data[self.offset..])
            .ok_or_else(|| Error::corruption("entry: bad shared len"))?;
        let (non_shared, n2) = get_varint32(&data[self.offset + n1..])
            .ok_or_else(|| Error::corruption("entry: bad non-shared len"))?;
        let (value_len, n3) = get_varint32(&data[self.offset + n1 + n2..])
            .ok_or_else(|| Error::corruption("entry: bad value len"))?;
        let key_start = self.offset + n1 + n2 + n3;
        let value_start = key_start + non_shared as usize;
        let value_end = value_start + value_len as usize;
        if value_end > self.block.restarts_offset {
            return Err(Error::corruption("entry extends past block data"));
        }
        if shared as usize > self.key.len() {
            return Err(Error::corruption("entry shares more than previous key"));
        }
        self.key.truncate(shared as usize);
        self.key.extend_from_slice(&data[key_start..value_start]);
        self.value_range = (value_start, value_end);
        self.offset = value_end;
        self.valid = true;
        Ok(true)
    }

    /// The current entry's encoded internal key.
    ///
    /// Only meaningful after [`advance`](Self::advance) returned `true`.
    pub fn key(&self) -> &[u8] {
        &self.key
    }

    /// The current entry's value.
    pub fn value(&self) -> &[u8] {
        &self.block.data[self.value_range.0..self.value_range.1]
    }

    /// Whether the iterator is positioned at an entry.
    pub fn valid(&self) -> bool {
        self.valid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{InternalKey, ValueType};

    fn ikey(user: &str, seq: u64) -> Vec<u8> {
        InternalKey::new(user.as_bytes(), seq, ValueType::Value)
            .encoded()
            .to_vec()
    }

    fn build(entries: &[(&str, &str)], restart_interval: usize) -> Block {
        let mut b = BlockBuilder::new(restart_interval);
        for (i, (k, v)) in entries.iter().enumerate() {
            b.add(&ikey(k, (entries.len() - i) as u64), v.as_bytes());
        }
        Block::parse(b.finish()).unwrap()
    }

    #[test]
    fn iterate_all_entries() {
        let entries = [("apple", "1"), ("banana", "2"), ("cherry", "3")];
        let block = build(&entries, 16);
        let mut it = block.iter();
        let mut seen = Vec::new();
        while it.advance().unwrap() {
            let ik = InternalKey::decode(it.key()).unwrap();
            seen.push((
                String::from_utf8(ik.user_key().to_vec()).unwrap(),
                String::from_utf8(it.value().to_vec()).unwrap(),
            ));
        }
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0].0, "apple");
        assert_eq!(seen[2], ("cherry".to_string(), "3".to_string()));
    }

    #[test]
    fn seek_finds_exact_and_following() {
        let entries = [("aa", "1"), ("bb", "2"), ("dd", "3")];
        let block = build(&entries, 2);
        let target = crate::types::lookup_key(b"bb", u64::MAX);
        let (k, v) = block.seek(target.encoded()).unwrap().unwrap();
        assert_eq!(InternalKey::decode(&k).unwrap().user_key(), b"bb");
        assert_eq!(v, b"2");
        // "cc" is absent; seek lands on "dd".
        let target = crate::types::lookup_key(b"cc", u64::MAX);
        let (k, _) = block.seek(target.encoded()).unwrap().unwrap();
        assert_eq!(InternalKey::decode(&k).unwrap().user_key(), b"dd");
        // Past the end.
        let target = crate::types::lookup_key(b"zz", u64::MAX);
        assert!(block.seek(target.encoded()).unwrap().is_none());
    }

    #[test]
    fn prefix_compression_shrinks_blocks() {
        let keys: Vec<String> = (0..100).map(|i| format!("common-prefix-key-{i:04}")).collect();
        let mut with = BlockBuilder::new(16);
        let mut without = BlockBuilder::new(1);
        for (i, k) in keys.iter().enumerate() {
            let ik = ikey(k, (keys.len() - i) as u64);
            with.add(&ik, b"v");
            without.add(&ik, b"v");
        }
        assert!(with.finish().len() < without.finish().len());
    }

    #[test]
    fn restart_interval_one_still_seeks() {
        let entries = [("a", "1"), ("b", "2"), ("c", "3"), ("d", "4")];
        let block = build(&entries, 1);
        for (k, v) in entries {
            let target = crate::types::lookup_key(k.as_bytes(), u64::MAX);
            let (_, got) = block.seek(target.encoded()).unwrap().unwrap();
            assert_eq!(got, v.as_bytes());
        }
    }

    #[test]
    fn large_block_roundtrips() {
        let mut b = BlockBuilder::new(16);
        let n = 5_000;
        for i in 0..n {
            b.add(&ikey(&format!("key-{i:08}"), (n - i) as u64), format!("value-{i}").as_bytes());
        }
        assert_eq!(b.num_entries(), n);
        let block = Block::parse(b.finish()).unwrap();
        let mut it = block.iter();
        let mut count = 0;
        while it.advance().unwrap() {
            count += 1;
        }
        assert_eq!(count, n);
    }

    #[test]
    fn parse_rejects_corrupt_trailers() {
        assert!(Block::parse(vec![]).is_err());
        assert!(Block::parse(vec![0xff, 0xff, 0xff, 0xff]).is_err());
        // Valid trailer count but offsets point past the data.
        let mut bad = vec![0u8; 4];
        put_fixed32(&mut bad, 9999);
        put_fixed32(&mut bad, 1);
        assert!(Block::parse(bad).is_err());
    }

    #[test]
    fn builder_resets_after_finish() {
        let mut b = BlockBuilder::new(16);
        b.add(&ikey("a", 1), b"1");
        let first = b.finish();
        assert!(b.is_empty());
        b.add(&ikey("a", 1), b"1");
        let second = b.finish();
        assert_eq!(first, second);
    }
}
