//! Sorted string table (SST) building blocks: blocks, bloom filters,
//! compression, and the table file format.

pub mod block;
pub mod bloom;
pub mod compress;
pub mod table;
