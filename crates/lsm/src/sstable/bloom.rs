//! Bloom filter for SST files.
//!
//! Standard Kirsch–Mitzenmacher double hashing over a bit array sized by
//! `bits_per_key`. At 10 bits/key the false-positive rate is ~1%, which
//! is the knob the paper's read-heavy tuning leans on.

use crate::util::{fnv1a, get_fixed32, put_fixed32};

/// An immutable bloom filter over a set of keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u8>,
    num_probes: u32,
}

impl BloomFilter {
    /// Builds a filter over `keys` with `bits_per_key` bits per key.
    ///
    /// `bits_per_key` below 1 is clamped to 1; the probe count is chosen
    /// as `bits_per_key * ln 2`, clamped to `[1, 30]`.
    pub fn build<'a>(keys: impl IntoIterator<Item = &'a [u8]>, bits_per_key: f64) -> Self {
        let keys: Vec<&[u8]> = keys.into_iter().collect();
        let bpk = bits_per_key.max(1.0);
        let nbits = ((keys.len() as f64 * bpk).ceil() as usize).max(64);
        let nbytes = nbits.div_ceil(8);
        let nbits = nbytes * 8;
        let num_probes = ((bpk * std::f64::consts::LN_2).round() as u32).clamp(1, 30);
        let mut bits = vec![0u8; nbytes];
        for key in keys {
            let (mut h, delta) = Self::hashes(key);
            for _ in 0..num_probes {
                let bit = (h as usize) % nbits;
                bits[bit / 8] |= 1 << (bit % 8);
                h = h.wrapping_add(delta);
            }
        }
        BloomFilter { bits, num_probes }
    }

    /// Whether `key` may be in the set (no false negatives).
    pub fn may_contain(&self, key: &[u8]) -> bool {
        if self.bits.is_empty() {
            return true;
        }
        let nbits = self.bits.len() * 8;
        let (mut h, delta) = Self::hashes(key);
        for _ in 0..self.num_probes {
            let bit = (h as usize) % nbits;
            if self.bits[bit / 8] & (1 << (bit % 8)) == 0 {
                return false;
            }
            h = h.wrapping_add(delta);
        }
        true
    }

    /// Size of the filter in bytes (bit array only).
    pub fn size_bytes(&self) -> usize {
        self.bits.len()
    }

    /// Serializes to `bits ++ fixed32(num_probes)`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = self.bits.clone();
        put_fixed32(&mut out, self.num_probes);
        out
    }

    /// Deserializes a filter produced by [`BloomFilter::encode`].
    pub fn decode(data: &[u8]) -> Option<BloomFilter> {
        if data.len() < 4 {
            return None;
        }
        let num_probes = get_fixed32(data, data.len() - 4)?;
        if num_probes == 0 || num_probes > 30 {
            return None;
        }
        Some(BloomFilter {
            bits: data[..data.len() - 4].to_vec(),
            num_probes,
        })
    }

    fn hashes(key: &[u8]) -> (u64, u64) {
        let h = fnv1a(key);
        (h, h.rotate_right(17) | 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("user-key-{i:08}").into_bytes()).collect()
    }

    #[test]
    fn no_false_negatives() {
        let ks = keys(10_000);
        let filter = BloomFilter::build(ks.iter().map(|k| k.as_slice()), 10.0);
        for k in &ks {
            assert!(filter.may_contain(k));
        }
    }

    #[test]
    fn false_positive_rate_near_one_percent_at_10_bits() {
        let ks = keys(10_000);
        let filter = BloomFilter::build(ks.iter().map(|k| k.as_slice()), 10.0);
        let mut fp = 0;
        let probes = 20_000;
        for i in 0..probes {
            if filter.may_contain(format!("absent-{i}").as_bytes()) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        assert!(rate < 0.03, "false positive rate too high: {rate}");
    }

    #[test]
    fn fewer_bits_mean_more_false_positives() {
        let ks = keys(5_000);
        let tight = BloomFilter::build(ks.iter().map(|k| k.as_slice()), 12.0);
        let loose = BloomFilter::build(ks.iter().map(|k| k.as_slice()), 2.0);
        let count = |f: &BloomFilter| {
            (0..10_000)
                .filter(|i| f.may_contain(format!("absent-{i}").as_bytes()))
                .count()
        };
        assert!(count(&loose) > count(&tight));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ks = keys(100);
        let filter = BloomFilter::build(ks.iter().map(|k| k.as_slice()), 10.0);
        let decoded = BloomFilter::decode(&filter.encode()).unwrap();
        assert_eq!(decoded, filter);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(BloomFilter::decode(b"ab").is_none());
        assert!(BloomFilter::decode(&[0xff; 12]).is_none(), "probe count 0xffffffff");
    }

    #[test]
    fn empty_key_set_still_works() {
        let filter = BloomFilter::build(std::iter::empty(), 10.0);
        // An empty filter has all bits zero: everything reports absent.
        assert!(!filter.may_contain(b"anything"));
    }
}
