//! SST file format: building and reading sorted table files.
//!
//! Layout:
//!
//! ```text
//! [data block]*      each: payload | u8 compression flag | fixed32 crc32c
//! [filter block]     optional bloom filter (raw, crc-protected)
//! [index block]      block format; value = BlockHandle of the data block
//! [properties]       fixed-size counters
//! footer             handles to filter/index/properties + magic
//! ```

use std::sync::Arc;

use crate::error::{Error, Result};
use crate::options::CompressionType;
use crate::sstable::block::{Block, BlockBuilder};
use crate::sstable::bloom::BloomFilter;
use crate::sstable::compress;
use crate::types::InternalKey;
use crate::util::{crc32c, get_fixed32, get_fixed64, put_fixed32, put_fixed64};
use crate::vfs::{RandomAccessFile, WritableFile};

const FOOTER_MAGIC: u64 = 0x4c53_4d5f_5349_4d31; // "LSM_SIM1"
const FOOTER_SIZE: usize = 6 * 8 + 8 + 8; // 3 handles + magic

const COMPRESSION_FLAG_NONE: u8 = 0;
const COMPRESSION_FLAG_SIMZIP: u8 = 1;

/// Location of a block inside an SST file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockHandle {
    /// Byte offset of the block payload.
    pub offset: u64,
    /// Payload length *excluding* the flag+crc trailer.
    pub size: u64,
}

impl BlockHandle {
    fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(16);
        put_fixed64(&mut v, self.offset);
        put_fixed64(&mut v, self.size);
        v
    }

    fn decode(data: &[u8]) -> Option<BlockHandle> {
        Some(BlockHandle {
            offset: get_fixed64(data, 0)?,
            size: get_fixed64(data, 8)?,
        })
    }

    /// Total on-disk footprint including the 5-byte trailer.
    pub fn stored_len(&self) -> u64 {
        self.size + 5
    }
}

/// Counters describing a finished table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableProperties {
    /// Logical entries stored (values + tombstones).
    pub num_entries: u64,
    /// Data blocks written.
    pub num_data_blocks: u64,
    /// Uncompressed key+value bytes.
    pub raw_bytes: u64,
    /// Bytes of data blocks after compression.
    pub compressed_data_bytes: u64,
    /// Bloom filter size in bytes (0 = no filter).
    pub filter_bytes: u64,
    /// Index block size in bytes.
    pub index_bytes: u64,
}

impl TableProperties {
    fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(48);
        for x in [
            self.num_entries,
            self.num_data_blocks,
            self.raw_bytes,
            self.compressed_data_bytes,
            self.filter_bytes,
            self.index_bytes,
        ] {
            put_fixed64(&mut v, x);
        }
        v
    }

    fn decode(data: &[u8]) -> Option<TableProperties> {
        Some(TableProperties {
            num_entries: get_fixed64(data, 0)?,
            num_data_blocks: get_fixed64(data, 8)?,
            raw_bytes: get_fixed64(data, 16)?,
            compressed_data_bytes: get_fixed64(data, 24)?,
            filter_bytes: get_fixed64(data, 32)?,
            index_bytes: get_fixed64(data, 40)?,
        })
    }
}

/// Result of finishing a [`TableBuilder`].
#[derive(Debug, Clone)]
pub struct FinishedTable {
    /// Total file size in bytes.
    pub file_size: u64,
    /// Smallest internal key in the table.
    pub smallest: InternalKey,
    /// Largest internal key in the table.
    pub largest: InternalKey,
    /// Table counters.
    pub properties: TableProperties,
    /// Extra CPU time spent compressing, to charge to the producing job.
    pub compression_cpu: hw_sim::SimDuration,
}

/// Configuration for building one table.
#[derive(Debug, Clone)]
pub struct TableConfig {
    /// Uncompressed data block size target.
    pub block_size: usize,
    /// Restart interval inside blocks.
    pub restart_interval: usize,
    /// Compression algorithm.
    pub compression: CompressionType,
    /// Bloom bits per key (0 disables the filter).
    pub bloom_bits_per_key: f64,
}

impl Default for TableConfig {
    fn default() -> Self {
        TableConfig {
            block_size: 4096,
            restart_interval: 16,
            compression: CompressionType::None,
            bloom_bits_per_key: 0.0,
        }
    }
}

/// Streams sorted entries into an SST file.
pub struct TableBuilder {
    file: Box<dyn WritableFile>,
    config: TableConfig,
    data_block: BlockBuilder,
    index_block: BlockBuilder,
    offset: u64,
    smallest: Option<InternalKey>,
    last_key: Vec<u8>,
    user_keys: Vec<Vec<u8>>,
    props: TableProperties,
    compression_cpu: hw_sim::SimDuration,
    pending_index: Option<(Vec<u8>, BlockHandle)>,
}

impl std::fmt::Debug for TableBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableBuilder")
            .field("offset", &self.offset)
            .field("entries", &self.props.num_entries)
            .finish_non_exhaustive()
    }
}

impl TableBuilder {
    /// Starts building into `file`.
    pub fn new(file: Box<dyn WritableFile>, config: TableConfig) -> Self {
        let restart = config.restart_interval;
        TableBuilder {
            file,
            config,
            data_block: BlockBuilder::new(restart),
            index_block: BlockBuilder::new(1),
            offset: 0,
            smallest: None,
            last_key: Vec::new(),
            user_keys: Vec::new(),
            props: TableProperties::default(),
            compression_cpu: hw_sim::SimDuration::ZERO,
            pending_index: None,
        }
    }

    /// Appends an entry; keys must arrive in increasing internal-key order.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Io`](crate::ErrorKind) if a block write fails.
    pub fn add(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        if self.smallest.is_none() {
            self.smallest = InternalKey::decode(key);
        }
        let ik = InternalKey::decode(key)
            .ok_or_else(|| Error::invalid_argument("key too short for internal key"))?;
        if self
            .user_keys
            .last()
            .map(|l| l.as_slice() != ik.user_key())
            .unwrap_or(true)
        {
            self.user_keys.push(ik.user_key().to_vec());
        }
        self.flush_pending_index();
        self.data_block.add(key, value);
        self.last_key = key.to_vec();
        self.props.num_entries += 1;
        self.props.raw_bytes += (key.len() + value.len()) as u64;
        if self.data_block.size_estimate() >= self.config.block_size {
            self.finish_data_block()?;
        }
        Ok(())
    }

    /// Uncompressed bytes accepted so far (used to size-split compaction
    /// outputs).
    pub fn raw_bytes(&self) -> u64 {
        self.props.raw_bytes
    }

    /// Entries accepted so far.
    pub fn num_entries(&self) -> u64 {
        self.props.num_entries
    }

    /// Finishes the table and returns its metadata.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Io`](crate::ErrorKind) on write failure or
    /// [`ErrorKind::InvalidArgument`](crate::ErrorKind) when no entries were added.
    pub fn finish(mut self) -> Result<FinishedTable> {
        if self.props.num_entries == 0 {
            return Err(Error::invalid_argument("cannot finish an empty table"));
        }
        if !self.data_block.is_empty() {
            self.finish_data_block()?;
        }
        self.flush_pending_index();

        // Filter block.
        let mut filter_handle = BlockHandle::default();
        if self.config.bloom_bits_per_key > 0.0 {
            let filter = BloomFilter::build(
                self.user_keys.iter().map(|k| k.as_slice()),
                self.config.bloom_bits_per_key,
            );
            let encoded = filter.encode();
            self.props.filter_bytes = encoded.len() as u64;
            filter_handle = self.write_raw_block(&encoded)?;
        }

        // Index block.
        let index_data = self.index_block.finish();
        self.props.index_bytes = index_data.len() as u64;
        let index_handle = self.write_raw_block(&index_data)?;

        // Properties.
        let props_handle = self.write_raw_block(&self.props.encode())?;

        // Footer.
        let mut footer = Vec::with_capacity(FOOTER_SIZE);
        footer.extend_from_slice(&filter_handle.encode());
        footer.extend_from_slice(&index_handle.encode());
        footer.extend_from_slice(&props_handle.encode());
        put_fixed64(&mut footer, FOOTER_MAGIC);
        put_fixed64(&mut footer, 0); // reserved
        self.file.append(&footer)?;
        self.offset += footer.len() as u64;
        // Durability barrier: the table must be on stable media *before*
        // any manifest edit references it, or a power cut between install
        // and writeback would leave the version pointing at a torn file.
        self.file.sync()?;
        self.file.finish()?;

        Ok(FinishedTable {
            file_size: self.offset,
            smallest: self.smallest.clone().expect("non-empty table"),
            largest: InternalKey::decode(&self.last_key).expect("valid last key"),
            properties: self.props,
            compression_cpu: self.compression_cpu,
        })
    }

    fn finish_data_block(&mut self) -> Result<()> {
        let raw = self.data_block.finish();
        let raw_len = raw.len();
        let (payload, flag) = match compress::compress(self.config.compression, &raw) {
            Some(c) => {
                self.compression_cpu += compress::compress_cpu_cost(self.config.compression, raw_len);
                (c, COMPRESSION_FLAG_SIMZIP)
            }
            None => (raw, COMPRESSION_FLAG_NONE),
        };
        let handle = self.write_block_payload(&payload, flag)?;
        self.props.num_data_blocks += 1;
        self.props.compressed_data_bytes += payload.len() as u64;
        // Defer the index entry until we know the next block's first key
        // (we use the last key of this block, which is simpler and valid).
        self.pending_index = Some((self.last_key.clone(), handle));
        Ok(())
    }

    fn flush_pending_index(&mut self) {
        if let Some((key, handle)) = self.pending_index.take() {
            self.index_block.add(&key, &handle.encode());
        }
    }

    fn write_block_payload(&mut self, payload: &[u8], flag: u8) -> Result<BlockHandle> {
        let handle = BlockHandle {
            offset: self.offset,
            size: payload.len() as u64,
        };
        let mut crc_input = Vec::with_capacity(payload.len() + 1);
        crc_input.extend_from_slice(payload);
        crc_input.push(flag);
        let crc = crc32c(&crc_input);
        self.file.append(payload)?;
        self.file.append(&[flag])?;
        let mut tail = Vec::with_capacity(4);
        put_fixed32(&mut tail, crc);
        self.file.append(&tail)?;
        self.offset += handle.stored_len(); // payload + flag + crc
        Ok(handle)
    }

    fn write_raw_block(&mut self, data: &[u8]) -> Result<BlockHandle> {
        self.write_block_payload(data, COMPRESSION_FLAG_NONE)
    }
}

/// An open SST file: footer, index, and filter are resident; data blocks
/// are fetched on demand (typically through the block cache).
pub struct TableReader {
    file: Arc<dyn RandomAccessFile>,
    index: Block,
    filter: Option<BloomFilter>,
    properties: TableProperties,
}

impl std::fmt::Debug for TableReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableReader")
            .field("properties", &self.properties)
            .finish_non_exhaustive()
    }
}

impl TableReader {
    /// Opens a table, reading footer + index + filter.
    ///
    /// Returns the reader and the number of bytes read while opening (so
    /// the caller can charge I/O time for them).
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Corruption`](crate::ErrorKind) on format violations.
    pub fn open(file: Arc<dyn RandomAccessFile>) -> Result<(TableReader, u64)> {
        let len = file.len();
        if (len as usize) < FOOTER_SIZE {
            return Err(Error::corruption("file too small for footer"));
        }
        let footer = file.read_at(len - FOOTER_SIZE as u64, FOOTER_SIZE)?;
        let magic = get_fixed64(&footer, 48).ok_or_else(|| Error::corruption("short footer"))?;
        if magic != FOOTER_MAGIC {
            return Err(Error::corruption("bad table magic"));
        }
        let filter_handle =
            BlockHandle::decode(&footer[0..16]).ok_or_else(|| Error::corruption("bad handle"))?;
        let index_handle =
            BlockHandle::decode(&footer[16..32]).ok_or_else(|| Error::corruption("bad handle"))?;
        let props_handle =
            BlockHandle::decode(&footer[32..48]).ok_or_else(|| Error::corruption("bad handle"))?;

        let mut bytes_read = FOOTER_SIZE as u64;
        let index_raw = read_verified_block(file.as_ref(), index_handle)?;
        bytes_read += index_handle.stored_len();
        let index = Block::parse(index_raw)?;

        let props_raw = read_verified_block(file.as_ref(), props_handle)?;
        bytes_read += props_handle.stored_len();
        let properties = TableProperties::decode(&props_raw)
            .ok_or_else(|| Error::corruption("bad properties block"))?;

        let filter = if filter_handle.size > 0 {
            let raw = read_verified_block(file.as_ref(), filter_handle)?;
            bytes_read += filter_handle.stored_len();
            Some(BloomFilter::decode(&raw).ok_or_else(|| Error::corruption("bad filter block"))?)
        } else {
            None
        };

        Ok((
            TableReader {
                file,
                index,
                filter,
                properties,
            },
            bytes_read,
        ))
    }

    /// Table counters.
    pub fn properties(&self) -> &TableProperties {
        &self.properties
    }

    /// Whether the table may contain `user_key` (always `true` without a
    /// filter).
    pub fn may_contain(&self, user_key: &[u8]) -> bool {
        self.filter.as_ref().is_none_or(|f| f.may_contain(user_key))
    }

    /// Whether the table carries a bloom filter.
    pub fn has_filter(&self) -> bool {
        self.filter.is_some()
    }

    /// Resident memory used by index + filter (charged to the table cache).
    pub fn resident_bytes(&self) -> u64 {
        self.properties.index_bytes + self.properties.filter_bytes
    }

    /// Finds the handle of the data block that could contain `target`
    /// (first block whose largest key is >= target).
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Corruption`](crate::ErrorKind) if the index block is malformed.
    pub fn find_block(&self, target: &[u8]) -> Result<Option<BlockHandle>> {
        match self.index.seek(target)? {
            Some((_, value)) => Ok(Some(
                BlockHandle::decode(&value).ok_or_else(|| Error::corruption("bad index value"))?,
            )),
            None => Ok(None),
        }
    }

    /// All data block handles in key order.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Corruption`](crate::ErrorKind) if the index block is malformed.
    pub fn block_handles(&self) -> Result<Vec<BlockHandle>> {
        let mut out = Vec::new();
        let mut it = self.index.iter();
        while it.advance()? {
            out.push(
                BlockHandle::decode(it.value())
                    .ok_or_else(|| Error::corruption("bad index value"))?,
            );
        }
        Ok(out)
    }

    /// Reads, verifies, and decompresses a data block.
    ///
    /// Returns the uncompressed payload plus the number of bytes that hit
    /// storage (for I/O accounting) and whether decompression ran (for
    /// CPU accounting).
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Corruption`](crate::ErrorKind) on checksum or decode failures.
    pub fn read_block(&self, handle: BlockHandle) -> Result<BlockFetch> {
        self.read_block_with(handle, true)
    }

    /// Like [`read_block`](Self::read_block), but checksum verification
    /// can be skipped (`ReadOptions::verify_checksums = false`). Structural
    /// validation (length, compression flag, decode) still runs.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Corruption`](crate::ErrorKind) on checksum (when
    /// verifying) or decode failures.
    pub fn read_block_with(&self, handle: BlockHandle, verify_checksums: bool) -> Result<BlockFetch> {
        let stored = self.file.read_at(handle.offset, handle.size as usize + 5)?;
        if stored.len() != handle.size as usize + 5 {
            return Err(Error::corruption("short block read"));
        }
        let (payload, trailer) = stored.split_at(handle.size as usize);
        let flag = trailer[0];
        let crc_stored = get_fixed32(trailer, 1).ok_or_else(|| Error::corruption("short crc"))?;
        if verify_checksums {
            let mut crc_input = Vec::with_capacity(payload.len() + 1);
            crc_input.extend_from_slice(payload);
            crc_input.push(flag);
            if crc32c(&crc_input) != crc_stored {
                return Err(Error::corruption("block checksum mismatch"));
            }
        }
        let (data, was_compressed) = match flag {
            COMPRESSION_FLAG_NONE => (payload.to_vec(), false),
            COMPRESSION_FLAG_SIMZIP => (compress::decompress(payload)?, true),
            other => return Err(Error::corruption(format!("unknown compression flag {other}"))),
        };
        Ok(BlockFetch {
            data,
            io_bytes: handle.stored_len(),
            was_compressed,
        })
    }
}

/// A data block fetched from storage.
#[derive(Debug)]
pub struct BlockFetch {
    /// Uncompressed block contents.
    pub data: Vec<u8>,
    /// Bytes read from the device.
    pub io_bytes: u64,
    /// Whether decompression ran (for CPU cost accounting).
    pub was_compressed: bool,
}

fn read_verified_block(file: &dyn RandomAccessFile, handle: BlockHandle) -> Result<Vec<u8>> {
    let stored = file.read_at(handle.offset, handle.size as usize + 5)?;
    if stored.len() != handle.size as usize + 5 {
        return Err(Error::corruption("short block read"));
    }
    let (payload, trailer) = stored.split_at(handle.size as usize);
    let flag = trailer[0];
    let crc_stored = get_fixed32(trailer, 1).ok_or_else(|| Error::corruption("short crc"))?;
    let mut crc_input = Vec::with_capacity(payload.len() + 1);
    crc_input.extend_from_slice(payload);
    crc_input.push(flag);
    if crc32c(&crc_input) != crc_stored {
        return Err(Error::corruption("block checksum mismatch"));
    }
    match flag {
        COMPRESSION_FLAG_NONE => Ok(payload.to_vec()),
        COMPRESSION_FLAG_SIMZIP => compress::decompress(payload),
        other => Err(Error::corruption(format!("unknown compression flag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{lookup_key, ValueType};
    use crate::vfs::{MemVfs, Vfs};

    fn build_table(
        vfs: &MemVfs,
        name: &str,
        entries: &[(String, String)],
        config: TableConfig,
    ) -> FinishedTable {
        let file = vfs.create(name).unwrap();
        let mut b = TableBuilder::new(file, config);
        for (i, (k, v)) in entries.iter().enumerate() {
            let ik = InternalKey::new(k.as_bytes(), (i + 1) as u64, ValueType::Value);
            b.add(ik.encoded(), v.as_bytes()).unwrap();
        }
        b.finish().unwrap()
    }

    fn entries(n: usize) -> Vec<(String, String)> {
        (0..n)
            .map(|i| (format!("key-{i:08}"), format!("value-{i}-{}", "x".repeat(50))))
            .collect()
    }

    fn get(reader: &TableReader, user_key: &[u8]) -> Option<Vec<u8>> {
        let target = lookup_key(user_key, u64::MAX);
        let handle = reader.find_block(target.encoded()).unwrap()?;
        let fetch = reader.read_block(handle).unwrap();
        let block = Block::parse(fetch.data).unwrap();
        let (k, v) = block.seek(target.encoded()).unwrap()?;
        let ik = InternalKey::decode(&k).unwrap();
        (ik.user_key() == user_key).then_some(v)
    }

    #[test]
    fn build_and_read_back_every_key() {
        let vfs = MemVfs::new();
        let es = entries(2_000);
        let fin = build_table(&vfs, "t.sst", &es, TableConfig::default());
        assert_eq!(fin.properties.num_entries, 2_000);
        assert!(fin.properties.num_data_blocks > 10);
        let (reader, _) = TableReader::open(vfs.open("t.sst").unwrap()).unwrap();
        for (k, v) in &es {
            assert_eq!(get(&reader, k.as_bytes()).unwrap(), v.as_bytes());
        }
        assert!(get(&reader, b"absent-key").is_none());
    }

    #[test]
    fn bloom_filter_skips_absent_keys() {
        let vfs = MemVfs::new();
        let es = entries(1_000);
        let config = TableConfig {
            bloom_bits_per_key: 10.0,
            ..TableConfig::default()
        };
        build_table(&vfs, "t.sst", &es, config);
        let (reader, _) = TableReader::open(vfs.open("t.sst").unwrap()).unwrap();
        assert!(reader.has_filter());
        for (k, _) in &es {
            assert!(reader.may_contain(k.as_bytes()));
        }
        let misses = (0..1000)
            .filter(|i| reader.may_contain(format!("absent-{i}").as_bytes()))
            .count();
        assert!(misses < 50, "bloom let through {misses} of 1000 absent keys");
    }

    #[test]
    fn compression_shrinks_file() {
        let vfs = MemVfs::new();
        // Highly compressible values.
        let es: Vec<_> = (0..1_000)
            .map(|i| (format!("key-{i:08}"), "z".repeat(100)))
            .collect();
        let plain = build_table(&vfs, "plain.sst", &es, TableConfig::default());
        let compressed = build_table(
            &vfs,
            "comp.sst",
            &es,
            TableConfig {
                compression: CompressionType::Snappy,
                ..TableConfig::default()
            },
        );
        assert!(compressed.file_size < plain.file_size / 2);
        assert!(compressed.compression_cpu > hw_sim::SimDuration::ZERO);
        // Both read back fine.
        let (reader, _) = TableReader::open(vfs.open("comp.sst").unwrap()).unwrap();
        assert_eq!(get(&reader, b"key-00000007").unwrap(), "z".repeat(100).as_bytes());
    }

    #[test]
    fn smallest_largest_tracked() {
        let vfs = MemVfs::new();
        let es = entries(100);
        let fin = build_table(&vfs, "t.sst", &es, TableConfig::default());
        assert_eq!(fin.smallest.user_key(), b"key-00000000");
        assert_eq!(fin.largest.user_key(), b"key-00000099");
    }

    #[test]
    fn empty_table_is_an_error() {
        let vfs = MemVfs::new();
        let file = vfs.create("t.sst").unwrap();
        let b = TableBuilder::new(file, TableConfig::default());
        assert!(b.finish().is_err());
    }

    #[test]
    fn corrupted_block_detected() {
        let vfs = MemVfs::new();
        let es = entries(100);
        build_table(&vfs, "t.sst", &es, TableConfig::default());
        // Flip a byte in the middle of the file (a data block).
        let mut contents = vfs.read_all("t.sst").unwrap();
        contents[100] ^= 0xff;
        let mut f = vfs.create("t.sst").unwrap();
        f.append(&contents).unwrap();
        f.finish().unwrap();
        let (reader, _) = TableReader::open(vfs.open("t.sst").unwrap()).unwrap();
        let handles = reader.block_handles().unwrap();
        let err = reader.read_block(handles[0]).unwrap_err();
        assert!(err.is_corruption());
    }

    #[test]
    fn open_rejects_non_table_files() {
        let vfs = MemVfs::new();
        let mut f = vfs.create("junk").unwrap();
        f.append(&[0u8; 128]).unwrap();
        f.finish().unwrap();
        assert!(TableReader::open(vfs.open("junk").unwrap()).is_err());
    }

    #[test]
    fn block_handles_cover_all_entries() {
        let vfs = MemVfs::new();
        let es = entries(500);
        build_table(&vfs, "t.sst", &es, TableConfig::default());
        let (reader, _) = TableReader::open(vfs.open("t.sst").unwrap()).unwrap();
        let mut total = 0;
        for h in reader.block_handles().unwrap() {
            let fetch = reader.read_block(h).unwrap();
            let block = Block::parse(fetch.data).unwrap();
            let mut it = block.iter();
            while it.advance().unwrap() {
                total += 1;
            }
        }
        assert_eq!(total, 500);
    }
}
