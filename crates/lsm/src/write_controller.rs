//! Write controller: slowdown and stall decisions.
//!
//! Mirrors RocksDB's write controller: L0 file count and pending
//! compaction debt move the write path between three regimes — normal,
//! *delayed* (writes trickle at `delayed_write_rate`), and *stopped*
//! (writes block until background work catches up). These are the
//! mechanics behind the paper's p99-latency improvements: tuning that
//! avoids stalls directly removes the latency tail.

use hw_sim::SimDuration;

use crate::options::Options;

/// The write-path regime chosen for one write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteRegime {
    /// No throttling.
    Normal,
    /// Throttled to `delayed_write_rate` bytes/sec.
    Delayed,
    /// Blocked until background work clears the trigger.
    Stopped,
}

/// Inputs to the controller decision.
#[derive(Debug, Clone, Copy, Default)]
pub struct WritePressure {
    /// Current L0 file count.
    pub l0_files: usize,
    /// Immutable memtables waiting to flush.
    pub immutable_memtables: usize,
    /// Active + immutable memtables.
    pub total_memtables: usize,
    /// Estimated bytes of pending compaction debt.
    pub pending_compaction_bytes: u64,
}

/// Stateless policy evaluating [`WritePressure`] against [`Options`].
#[derive(Debug, Clone)]
pub struct WriteController {
    l0_slowdown: usize,
    l0_stop: usize,
    max_memtables: usize,
    soft_pending: u64,
    hard_pending: u64,
    delayed_write_rate: u64,
}

/// Maps a trigger option to its threshold, honoring the RocksDB
/// convention that a value ≤ 0 disables the trigger (the threshold
/// becomes unreachable rather than clamping to 1).
fn trigger_threshold(value: i64) -> usize {
    if value <= 0 {
        usize::MAX
    } else {
        value as usize
    }
}

impl WriteController {
    /// Builds a controller from the option set.
    pub fn from_options(opts: &Options) -> Self {
        WriteController {
            l0_slowdown: trigger_threshold(opts.level0_slowdown_writes_trigger),
            l0_stop: trigger_threshold(opts.level0_stop_writes_trigger),
            max_memtables: trigger_threshold(opts.max_write_buffer_number),
            soft_pending: opts.soft_pending_compaction_bytes_limit,
            hard_pending: opts.hard_pending_compaction_bytes_limit,
            delayed_write_rate: opts.delayed_write_rate.max(1024),
        }
    }

    /// Chooses the regime for the next write.
    pub fn regime(&self, p: &WritePressure) -> WriteRegime {
        if p.l0_files >= self.l0_stop
            || p.total_memtables > self.max_memtables
            || (self.hard_pending > 0 && p.pending_compaction_bytes >= self.hard_pending)
        {
            return WriteRegime::Stopped;
        }
        if p.l0_files >= self.l0_slowdown
            || (p.total_memtables == self.max_memtables && p.immutable_memtables > 0)
            || (self.soft_pending > 0 && p.pending_compaction_bytes >= self.soft_pending)
        {
            return WriteRegime::Delayed;
        }
        WriteRegime::Normal
    }

    /// The artificial delay added to a write of `bytes` in the delayed
    /// regime.
    pub fn delay_for(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.delayed_write_rate as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> WriteController {
        WriteController::from_options(&Options::default())
    }

    #[test]
    fn default_pressure_is_normal() {
        let c = controller();
        assert_eq!(c.regime(&WritePressure::default()), WriteRegime::Normal);
    }

    #[test]
    fn l0_triggers_escalate() {
        let c = controller();
        let mut p = WritePressure {
            l0_files: 19,
            total_memtables: 1,
            ..WritePressure::default()
        };
        assert_eq!(c.regime(&p), WriteRegime::Normal);
        p.l0_files = 20; // default slowdown trigger
        assert_eq!(c.regime(&p), WriteRegime::Delayed);
        p.l0_files = 36; // default stop trigger
        assert_eq!(c.regime(&p), WriteRegime::Stopped);
    }

    #[test]
    fn memtable_backlog_stalls() {
        let c = controller();
        // Default max_write_buffer_number = 2: a full set with one
        // immutable delays; exceeding the cap stops.
        let p = WritePressure {
            total_memtables: 2,
            immutable_memtables: 1,
            ..WritePressure::default()
        };
        assert_eq!(c.regime(&p), WriteRegime::Delayed);
        let p = WritePressure {
            total_memtables: 3,
            immutable_memtables: 2,
            ..WritePressure::default()
        };
        assert_eq!(c.regime(&p), WriteRegime::Stopped);
    }

    #[test]
    fn pending_compaction_debt_throttles() {
        let c = controller();
        let p = WritePressure {
            total_memtables: 1,
            pending_compaction_bytes: 64 << 30, // default soft limit
            ..WritePressure::default()
        };
        assert_eq!(c.regime(&p), WriteRegime::Delayed);
        let p = WritePressure {
            total_memtables: 1,
            pending_compaction_bytes: 256 << 30, // default hard limit
            ..WritePressure::default()
        };
        assert_eq!(c.regime(&p), WriteRegime::Stopped);
    }

    #[test]
    fn delay_scales_with_rate() {
        let mut opts = Options {
            delayed_write_rate: 1 << 20, // 1 MiB/s
            ..Options::default()
        };
        let c = WriteController::from_options(&opts);
        let d = c.delay_for(1 << 20);
        assert!((d.as_secs_f64() - 1.0).abs() < 1e-9);
        // A higher configured rate shortens the delay.
        opts.delayed_write_rate = 16 << 20;
        let c = WriteController::from_options(&opts);
        assert!(c.delay_for(1 << 20) < d);
    }

    #[test]
    fn nonpositive_triggers_are_disabled() {
        // RocksDB convention: a trigger ≤ 0 is disabled, not "trigger at
        // 1". Before the fix these clamped to 1 and every write stalled.
        let opts = Options {
            level0_slowdown_writes_trigger: 0,
            level0_stop_writes_trigger: -1,
            max_write_buffer_number: 0,
            ..Options::default()
        };
        let c = WriteController::from_options(&opts);
        let p = WritePressure {
            l0_files: 10_000,
            immutable_memtables: 50,
            total_memtables: 51,
            ..WritePressure::default()
        };
        assert_eq!(c.regime(&p), WriteRegime::Normal);

        // Positive triggers still behave as before.
        let opts = Options {
            level0_slowdown_writes_trigger: 1,
            ..Options::default()
        };
        let c = WriteController::from_options(&opts);
        let p = WritePressure {
            l0_files: 1,
            total_memtables: 1,
            ..WritePressure::default()
        };
        assert_eq!(c.regime(&p), WriteRegime::Delayed);
    }

    #[test]
    fn raised_triggers_remove_throttling() {
        let opts = Options {
            level0_slowdown_writes_trigger: 40,
            level0_stop_writes_trigger: 60,
            ..Options::default()
        };
        let c = WriteController::from_options(&opts);
        let p = WritePressure {
            l0_files: 25,
            total_memtables: 1,
            ..WritePressure::default()
        };
        assert_eq!(c.regime(&p), WriteRegime::Normal);
    }
}
