//! LSM level metadata: versions, version edits, and the manifest format.
//!
//! A [`Version`] is an immutable snapshot of which SST files live on
//! which level. State changes (flushes, compactions) are expressed as
//! [`VersionEdit`]s, applied copy-on-write and logged to the manifest so
//! the tree can be recovered after a crash.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::types::{FileNumber, InternalKey, SequenceNumber};
use crate::util::{get_fixed64, get_varint32, put_fixed64, put_varint32};

/// Metadata for one SST file.
#[derive(Debug)]
pub struct FileMetadata {
    /// File number (names the file on disk).
    pub number: FileNumber,
    /// File size in bytes.
    pub size: u64,
    /// Smallest internal key.
    pub smallest: InternalKey,
    /// Largest internal key.
    pub largest: InternalKey,
    /// Entries stored.
    pub num_entries: u64,
    /// Set while a compaction has claimed this file.
    being_compacted: AtomicBool,
}

impl FileMetadata {
    /// Creates file metadata.
    pub fn new(
        number: FileNumber,
        size: u64,
        smallest: InternalKey,
        largest: InternalKey,
        num_entries: u64,
    ) -> Self {
        FileMetadata {
            number,
            size,
            smallest,
            largest,
            num_entries,
            being_compacted: AtomicBool::new(false),
        }
    }

    /// Whether a compaction currently claims this file.
    pub fn is_being_compacted(&self) -> bool {
        self.being_compacted.load(Ordering::Acquire)
    }

    /// Claims or releases the file for compaction.
    pub fn set_being_compacted(&self, v: bool) {
        self.being_compacted.store(v, Ordering::Release);
    }

    /// Whether the file's user-key range overlaps `[lo, hi]`.
    pub fn overlaps_user_range(&self, lo: &[u8], hi: &[u8]) -> bool {
        self.largest.user_key() >= lo && self.smallest.user_key() <= hi
    }
}

/// An immutable snapshot of the level structure.
#[derive(Debug, Clone)]
pub struct Version {
    levels: Vec<Vec<Arc<FileMetadata>>>,
}

impl Version {
    /// Creates an empty version with `num_levels` levels.
    pub fn empty(num_levels: usize) -> Self {
        Version {
            levels: vec![Vec::new(); num_levels.max(2)],
        }
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Files at `level`. L0 is ordered newest-first; deeper levels are
    /// ordered by smallest key and non-overlapping.
    pub fn files(&self, level: usize) -> &[Arc<FileMetadata>] {
        &self.levels[level]
    }

    /// Total bytes at `level`.
    pub fn level_bytes(&self, level: usize) -> u64 {
        self.levels[level].iter().map(|f| f.size).sum()
    }

    /// Total bytes across all levels.
    pub fn total_bytes(&self) -> u64 {
        (0..self.levels.len()).map(|l| self.level_bytes(l)).sum()
    }

    /// Total file count.
    pub fn total_files(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// Files at `level` overlapping the user-key range `[lo, hi]`.
    pub fn overlapping_files(&self, level: usize, lo: &[u8], hi: &[u8]) -> Vec<Arc<FileMetadata>> {
        self.levels[level]
            .iter()
            .filter(|f| f.overlaps_user_range(lo, hi))
            .cloned()
            .collect()
    }

    /// Applies an edit copy-on-write, producing the next version.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Corruption`](crate::ErrorKind) if the edit references an unknown
    /// level.
    pub fn apply(&self, edit: &VersionEdit) -> Result<Version> {
        let mut levels = self.levels.clone();
        for (level, number) in &edit.deleted_files {
            let lvl = levels
                .get_mut(*level)
                .ok_or_else(|| Error::corruption(format!("edit deletes from level {level}")))?;
            lvl.retain(|f| f.number != *number);
        }
        for (level, file) in &edit.added_files {
            let lvl = levels
                .get_mut(*level)
                .ok_or_else(|| Error::corruption(format!("edit adds to level {level}")))?;
            lvl.push(Arc::clone(file));
        }
        // Restore ordering invariants.
        for (level, lvl) in levels.iter_mut().enumerate() {
            if level == 0 {
                lvl.sort_by_key(|f| std::cmp::Reverse(f.number)); // newest first
            } else {
                lvl.sort_by(|a, b| {
                    crate::types::internal_key_cmp(a.smallest.encoded(), b.smallest.encoded())
                });
            }
        }
        Ok(Version { levels })
    }

    /// Aggregates one row of the `Compaction Stats` table per level.
    ///
    /// `io` is the per-level job accounting from
    /// [`Statistics::level_io`](crate::stats::Statistics::level_io),
    /// `targets` the byte targets from
    /// [`level_targets`](crate::level_targets), and `l0_trigger` the L0
    /// file-count compaction trigger (scores L0 the way RocksDB does:
    /// files over trigger rather than bytes over target).
    pub fn compaction_stats(
        &self,
        io: &[crate::stats::LevelIo],
        targets: &[u64],
        l0_trigger: usize,
    ) -> Vec<CompactionLevelStats> {
        (0..self.num_levels())
            .map(|level| {
                let files = self.levels[level].len();
                let bytes = self.level_bytes(level);
                let score = if level == 0 {
                    files as f64 / l0_trigger.max(1) as f64
                } else {
                    match targets.get(level) {
                        Some(&t) if t > 0 && t != u64::MAX => bytes as f64 / t as f64,
                        _ => 0.0,
                    }
                };
                let lio = io.get(level).copied().unwrap_or_default();
                // Per-level write amplification: output bytes per input
                // byte. Flushes (L0) read nothing, so their amp is 1.
                let write_amp = if lio.bytes_read > 0 {
                    lio.bytes_written as f64 / lio.bytes_read as f64
                } else if lio.bytes_written > 0 {
                    1.0
                } else {
                    0.0
                };
                CompactionLevelStats {
                    level,
                    files,
                    bytes,
                    score,
                    bytes_read: lio.bytes_read,
                    bytes_written: lio.bytes_written,
                    jobs: lio.jobs,
                    keys_dropped: lio.keys_dropped,
                    write_amp,
                }
            })
            .collect()
    }

    /// All live file numbers (for garbage collection).
    pub fn live_files(&self) -> Vec<FileNumber> {
        let mut out: Vec<FileNumber> = self
            .levels
            .iter()
            .flat_map(|l| l.iter().map(|f| f.number))
            .collect();
        out.sort();
        out
    }
}

/// One level's row of the `Compaction Stats [default]` table.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompactionLevelStats {
    /// Level index.
    pub level: usize,
    /// Files currently at this level.
    pub files: usize,
    /// Bytes currently at this level.
    pub bytes: u64,
    /// Compaction pressure score (≥ 1.0 means compaction is due).
    pub score: f64,
    /// Cumulative bytes read by jobs writing into this level.
    pub bytes_read: u64,
    /// Cumulative bytes written into this level.
    pub bytes_written: u64,
    /// Jobs completed with this level as their output.
    pub jobs: u64,
    /// Keys dropped by those jobs.
    pub keys_dropped: u64,
    /// Output bytes per input byte for those jobs.
    pub write_amp: f64,
}

/// A logged state transition: files added/removed plus counter updates.
#[derive(Debug, Clone, Default)]
pub struct VersionEdit {
    /// New WAL number after this edit (memtable switch).
    pub log_number: Option<u64>,
    /// Next file number counter.
    pub next_file_number: Option<u64>,
    /// Last sequence number persisted.
    pub last_sequence: Option<SequenceNumber>,
    /// Files added, as `(level, metadata)`.
    pub added_files: Vec<(usize, Arc<FileMetadata>)>,
    /// Files removed, as `(level, number)`.
    pub deleted_files: Vec<(usize, FileNumber)>,
}

const TAG_LOG_NUMBER: u8 = 1;
const TAG_NEXT_FILE: u8 = 2;
const TAG_LAST_SEQ: u8 = 3;
const TAG_ADD_FILE: u8 = 4;
const TAG_DELETE_FILE: u8 = 5;

impl VersionEdit {
    /// Serializes for the manifest log.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        if let Some(v) = self.log_number {
            out.push(TAG_LOG_NUMBER);
            put_fixed64(&mut out, v);
        }
        if let Some(v) = self.next_file_number {
            out.push(TAG_NEXT_FILE);
            put_fixed64(&mut out, v);
        }
        if let Some(v) = self.last_sequence {
            out.push(TAG_LAST_SEQ);
            put_fixed64(&mut out, v);
        }
        for (level, file) in &self.added_files {
            out.push(TAG_ADD_FILE);
            put_varint32(&mut out, *level as u32);
            put_fixed64(&mut out, file.number.0);
            put_fixed64(&mut out, file.size);
            put_fixed64(&mut out, file.num_entries);
            put_varint32(&mut out, file.smallest.encoded().len() as u32);
            out.extend_from_slice(file.smallest.encoded());
            put_varint32(&mut out, file.largest.encoded().len() as u32);
            out.extend_from_slice(file.largest.encoded());
        }
        for (level, number) in &self.deleted_files {
            out.push(TAG_DELETE_FILE);
            put_varint32(&mut out, *level as u32);
            put_fixed64(&mut out, number.0);
        }
        out
    }

    /// Parses a manifest record.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Corruption`](crate::ErrorKind) on malformed input.
    pub fn decode(data: &[u8]) -> Result<VersionEdit> {
        let mut edit = VersionEdit::default();
        let mut pos = 0usize;
        while pos < data.len() {
            let tag = data[pos];
            pos += 1;
            match tag {
                TAG_LOG_NUMBER | TAG_NEXT_FILE | TAG_LAST_SEQ => {
                    let v = get_fixed64(data, pos)
                        .ok_or_else(|| Error::corruption("edit: short fixed64"))?;
                    pos += 8;
                    match tag {
                        TAG_LOG_NUMBER => edit.log_number = Some(v),
                        TAG_NEXT_FILE => edit.next_file_number = Some(v),
                        _ => edit.last_sequence = Some(v),
                    }
                }
                TAG_ADD_FILE => {
                    let (level, n) = get_varint32(&data[pos..])
                        .ok_or_else(|| Error::corruption("edit: bad level"))?;
                    pos += n;
                    let number = get_fixed64(data, pos)
                        .ok_or_else(|| Error::corruption("edit: short file number"))?;
                    pos += 8;
                    let size = get_fixed64(data, pos)
                        .ok_or_else(|| Error::corruption("edit: short size"))?;
                    pos += 8;
                    let entries = get_fixed64(data, pos)
                        .ok_or_else(|| Error::corruption("edit: short entries"))?;
                    pos += 8;
                    let (klen, n) = get_varint32(&data[pos..])
                        .ok_or_else(|| Error::corruption("edit: bad smallest len"))?;
                    pos += n;
                    let smallest = InternalKey::decode(
                        data.get(pos..pos + klen as usize)
                            .ok_or_else(|| Error::corruption("edit: smallest past end"))?,
                    )
                    .ok_or_else(|| Error::corruption("edit: bad smallest key"))?;
                    pos += klen as usize;
                    let (klen, n) = get_varint32(&data[pos..])
                        .ok_or_else(|| Error::corruption("edit: bad largest len"))?;
                    pos += n;
                    let largest = InternalKey::decode(
                        data.get(pos..pos + klen as usize)
                            .ok_or_else(|| Error::corruption("edit: largest past end"))?,
                    )
                    .ok_or_else(|| Error::corruption("edit: bad largest key"))?;
                    pos += klen as usize;
                    edit.added_files.push((
                        level as usize,
                        Arc::new(FileMetadata::new(
                            FileNumber(number),
                            size,
                            smallest,
                            largest,
                            entries,
                        )),
                    ));
                }
                TAG_DELETE_FILE => {
                    let (level, n) = get_varint32(&data[pos..])
                        .ok_or_else(|| Error::corruption("edit: bad level"))?;
                    pos += n;
                    let number = get_fixed64(data, pos)
                        .ok_or_else(|| Error::corruption("edit: short file number"))?;
                    pos += 8;
                    edit.deleted_files.push((level as usize, FileNumber(number)));
                }
                other => {
                    return Err(Error::corruption(format!("edit: unknown tag {other}")));
                }
            }
        }
        Ok(edit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ValueType;

    fn meta(number: u64, lo: &str, hi: &str) -> Arc<FileMetadata> {
        Arc::new(FileMetadata::new(
            FileNumber(number),
            1000,
            InternalKey::new(lo.as_bytes(), 1, ValueType::Value),
            InternalKey::new(hi.as_bytes(), 1, ValueType::Value),
            10,
        ))
    }

    #[test]
    fn apply_adds_and_deletes() {
        let v0 = Version::empty(7);
        let mut edit = VersionEdit::default();
        edit.added_files.push((0, meta(1, "a", "m")));
        edit.added_files.push((0, meta(2, "n", "z")));
        let v1 = v0.apply(&edit).unwrap();
        assert_eq!(v1.files(0).len(), 2);
        assert_eq!(v1.files(0)[0].number, FileNumber(2), "L0 newest first");

        let mut edit2 = VersionEdit::default();
        edit2.deleted_files.push((0, FileNumber(1)));
        edit2.added_files.push((1, meta(3, "a", "m")));
        let v2 = v1.apply(&edit2).unwrap();
        assert_eq!(v2.files(0).len(), 1);
        assert_eq!(v2.files(1).len(), 1);
        // v1 untouched (copy-on-write).
        assert_eq!(v1.files(0).len(), 2);
    }

    #[test]
    fn deeper_levels_sorted_by_smallest() {
        let v0 = Version::empty(7);
        let mut edit = VersionEdit::default();
        edit.added_files.push((1, meta(5, "m", "r")));
        edit.added_files.push((1, meta(6, "a", "c")));
        let v1 = v0.apply(&edit).unwrap();
        assert_eq!(v1.files(1)[0].number, FileNumber(6));
    }

    #[test]
    fn overlap_queries() {
        let v0 = Version::empty(7);
        let mut edit = VersionEdit::default();
        edit.added_files.push((1, meta(1, "b", "d")));
        edit.added_files.push((1, meta(2, "f", "h")));
        let v = v0.apply(&edit).unwrap();
        assert_eq!(v.overlapping_files(1, b"c", b"g").len(), 2);
        assert_eq!(v.overlapping_files(1, b"e", b"e").len(), 0);
        assert_eq!(v.overlapping_files(1, b"a", b"b").len(), 1);
    }

    #[test]
    fn edit_roundtrip() {
        let mut edit = VersionEdit {
            log_number: Some(9),
            next_file_number: Some(42),
            last_sequence: Some(1_000_000),
            ..VersionEdit::default()
        };
        edit.added_files.push((2, meta(7, "alpha", "omega")));
        edit.deleted_files.push((1, FileNumber(3)));
        let decoded = VersionEdit::decode(&edit.encode()).unwrap();
        assert_eq!(decoded.log_number, Some(9));
        assert_eq!(decoded.next_file_number, Some(42));
        assert_eq!(decoded.last_sequence, Some(1_000_000));
        assert_eq!(decoded.added_files.len(), 1);
        let (level, f) = &decoded.added_files[0];
        assert_eq!((*level, f.number), (2, FileNumber(7)));
        assert_eq!(f.smallest.user_key(), b"alpha");
        assert_eq!(decoded.deleted_files, vec![(1, FileNumber(3))]);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(VersionEdit::decode(&[99]).is_err());
        assert!(VersionEdit::decode(&[TAG_LOG_NUMBER, 1, 2]).is_err());
    }

    #[test]
    fn live_files_and_sizes() {
        let v0 = Version::empty(7);
        let mut edit = VersionEdit::default();
        edit.added_files.push((0, meta(2, "a", "b")));
        edit.added_files.push((3, meta(1, "c", "d")));
        let v = v0.apply(&edit).unwrap();
        assert_eq!(v.live_files(), vec![FileNumber(1), FileNumber(2)]);
        assert_eq!(v.total_bytes(), 2000);
        assert_eq!(v.total_files(), 2);
        assert_eq!(v.level_bytes(3), 1000);
    }

    #[test]
    fn being_compacted_flag() {
        let f = meta(1, "a", "b");
        assert!(!f.is_being_compacted());
        f.set_being_compacted(true);
        assert!(f.is_being_compacted());
    }
}
