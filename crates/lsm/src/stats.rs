//! Engine statistics: tickers and latency histograms.
//!
//! The benchmark report (and therefore the tuning prompt) is built from
//! these counters, so they mirror the RocksDB statistics the paper's
//! framework extracts from `db_bench` output.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hw_sim::SimDuration;

/// Monotonic event counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are self-describing counters
pub enum Ticker {
    BlockCacheHit,
    BlockCacheMiss,
    BloomChecked,
    BloomUseful,
    MemtableHit,
    MemtableMiss,
    GetHit,
    GetMiss,
    KeysWritten,
    KeysRead,
    BytesWritten,
    BytesRead,
    WalBytes,
    WalSyncs,
    FlushJobs,
    FlushBytesWritten,
    CompactionJobs,
    CompactionBytesRead,
    CompactionBytesWritten,
    WriteSlowdowns,
    WriteStops,
    StallNanos,
    TableOpens,
    TableCacheEvictions,
    FilesDeleted,
    GroupCommits,
    GroupCommitBatches,
    WalWrites,
    CompactionKeyDropped,
    MultiGetKeys,
    MultiGetBatches,
    OptionsChanged,
}

const NUM_TICKERS: usize = 32;

fn ticker_index(t: Ticker) -> usize {
    t as usize
}

/// All ticker names, index-aligned with [`TickerSnapshot::values`].
pub const TICKER_NAMES: [&str; NUM_TICKERS] = [
    "block_cache_hit",
    "block_cache_miss",
    "bloom_checked",
    "bloom_useful",
    "memtable_hit",
    "memtable_miss",
    "get_hit",
    "get_miss",
    "keys_written",
    "keys_read",
    "bytes_written",
    "bytes_read",
    "wal_bytes",
    "wal_syncs",
    "flush_jobs",
    "flush_bytes_written",
    "compaction_jobs",
    "compaction_bytes_read",
    "compaction_bytes_written",
    "write_slowdowns",
    "write_stops",
    "stall_nanos",
    "table_opens",
    "table_cache_evictions",
    "files_deleted",
    "group_commits",
    "group_commit_batches",
    "wal_writes",
    "compaction_key_dropped",
    "multiget_keys",
    "multiget_batches",
    "options_changed",
];

/// Thread-safe ticker array.
#[derive(Debug, Default)]
pub struct Tickers {
    values: [AtomicU64; NUM_TICKERS],
}

impl Tickers {
    /// Creates zeroed tickers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to a ticker.
    pub fn add(&self, t: Ticker, delta: u64) {
        self.values[ticker_index(t)].fetch_add(delta, Ordering::Relaxed);
    }

    /// Increments a ticker by one.
    pub fn inc(&self, t: Ticker) {
        self.add(t, 1);
    }

    /// Reads one ticker.
    pub fn get(&self, t: Ticker) -> u64 {
        self.values[ticker_index(t)].load(Ordering::Relaxed)
    }

    /// Captures all tickers.
    pub fn snapshot(&self) -> TickerSnapshot {
        let mut values = [0u64; NUM_TICKERS];
        for (i, v) in self.values.iter().enumerate() {
            values[i] = v.load(Ordering::Relaxed);
        }
        TickerSnapshot { values }
    }
}

/// A point-in-time copy of every ticker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickerSnapshot {
    /// Values aligned with [`TICKER_NAMES`].
    pub values: [u64; NUM_TICKERS],
}

impl TickerSnapshot {
    /// Reads one ticker from the snapshot.
    pub fn get(&self, t: Ticker) -> u64 {
        self.values[ticker_index(t)]
    }

    /// Difference against an earlier snapshot (saturating).
    pub fn delta_since(&self, earlier: &TickerSnapshot) -> TickerSnapshot {
        let mut values = [0u64; NUM_TICKERS];
        for (v, (now, then)) in values.iter_mut().zip(self.values.iter().zip(&earlier.values)) {
            *v = now.saturating_sub(*then);
        }
        TickerSnapshot { values }
    }

    /// Adds another snapshot's counts into this one (saturating) —
    /// sharded databases aggregate per-shard tickers this way.
    pub fn merge(&mut self, other: &TickerSnapshot) {
        for (v, o) in self.values.iter_mut().zip(&other.values) {
            *v = v.saturating_add(*o);
        }
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

const SUB_BUCKET_BITS: u32 = 5; // 32 sub-buckets per power of two
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
const GROUPS: usize = 64 - SUB_BUCKET_BITS as usize;
const NUM_BUCKETS: usize = SUB_BUCKETS * GROUPS;

/// A log-linear histogram of nanosecond latencies.
///
/// Relative error is bounded by ~3% (32 sub-buckets per octave), which is
/// plenty for p50/p99/p99.9 reporting.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    sum_sq: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        value as usize
    } else {
        let group = 63 - value.leading_zeros() as usize; // >= SUB_BUCKET_BITS
        let shift = group - SUB_BUCKET_BITS as usize;
        let sub = ((value >> shift) as usize) & (SUB_BUCKETS - 1);
        let g = group - SUB_BUCKET_BITS as usize + 1;
        (g * SUB_BUCKETS + sub).min(NUM_BUCKETS - 1)
    }
}

fn bucket_upper_bound(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        index as u64
    } else {
        let g = index / SUB_BUCKETS;
        let sub = index % SUB_BUCKETS;
        let shift = g - 1;
        (((sub + 1) as u64) << shift) + ((SUB_BUCKETS as u64) << shift) - (1 << shift)
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            sum_sq: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, value: SimDuration) {
        let v = value.as_nanos();
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.sum_sq += u128::from(v) * u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The value at percentile `p` (0..=100), approximated by bucket
    /// upper bounds. Returns zero for an empty histogram.
    pub fn percentile(&self, p: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return SimDuration::from_nanos(bucket_upper_bound(i).min(self.max));
            }
        }
        SimDuration::from_nanos(self.max)
    }

    /// Mean sample value.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos((self.sum / u128::from(self.count)) as u64)
        }
    }

    /// Smallest sample, or zero when empty.
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min)
        }
    }

    /// Largest sample.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max)
    }

    /// Population standard deviation of the samples, or zero when empty.
    pub fn stddev(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let n = self.count as f64;
        let mean = self.sum as f64 / n;
        let variance = (self.sum_sq as f64 / n - mean * mean).max(0.0);
        SimDuration::from_nanos(variance.sqrt() as u64)
    }

    /// Captures the quantiles commonly reported by `db_bench`.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            mean: self.mean(),
            min: self.min(),
            p50: self.percentile(50.0),
            p75: self.percentile(75.0),
            p99: self.percentile(99.0),
            p999: self.percentile(99.9),
            p9999: self.percentile(99.99),
            stddev: self.stddev(),
            max: self.max(),
        }
    }
}

/// Quantile summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Mean latency.
    pub mean: SimDuration,
    /// Minimum latency.
    pub min: SimDuration,
    /// Median.
    pub p50: SimDuration,
    /// 75th percentile.
    pub p75: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
    /// 99.9th percentile.
    pub p999: SimDuration,
    /// 99.99th percentile.
    pub p9999: SimDuration,
    /// Population standard deviation (nanosecond precision).
    pub stddev: SimDuration,
    /// Maximum latency.
    pub max: SimDuration,
}

// ---------------------------------------------------------------------------
// Statistics registry
// ---------------------------------------------------------------------------

/// Latency-histogram families the engine maintains internally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are self-describing families
pub enum HistogramKind {
    DbGet,
    DbWrite,
    FlushTime,
    CompactionTime,
    SstReadMicros,
    MultiGetMicros,
}

/// Number of engine histogram families.
pub const NUM_HISTOGRAMS: usize = 6;

/// Histogram names, index-aligned with [`HistogramKind`] discriminants,
/// following the `rocksdb.*` statistics naming convention.
pub const HISTOGRAM_NAMES: [&str; NUM_HISTOGRAMS] = [
    "db.get.micros",
    "db.write.micros",
    "flush.time.micros",
    "compaction.time.micros",
    "sst.read.micros",
    "db.multiget.micros",
];

/// Per-level I/O accumulated by flush and compaction jobs.
///
/// Flushes account as writes into level 0; a compaction's bytes are
/// charged to its *output* level (RocksDB convention for the
/// `Compaction Stats` table).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelIo {
    /// Bytes read from input files.
    pub bytes_read: u64,
    /// Bytes written to output files.
    pub bytes_written: u64,
    /// Jobs (flushes for L0, compactions elsewhere) completed.
    pub jobs: u64,
    /// Keys dropped (shadowed versions and bottommost tombstones).
    pub keys_dropped: u64,
}

/// The engine-wide statistics registry: tickers, latency histograms,
/// and per-level compaction I/O.
///
/// One instance lives in the database for its whole lifetime; all
/// members are independently thread-safe.
#[derive(Debug, Default)]
pub struct Statistics {
    tickers: Tickers,
    histograms: [Mutex<Histogram>; NUM_HISTOGRAMS],
    level_io: Mutex<Vec<LevelIo>>,
}

impl Statistics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The ticker array.
    pub fn tickers(&self) -> &Tickers {
        &self.tickers
    }

    /// Records one latency sample into a histogram family.
    pub fn record(&self, kind: HistogramKind, value: SimDuration) {
        self.histograms[kind as usize].lock().expect("histogram lock").record(value);
    }

    /// Snapshot of one histogram family.
    pub fn histogram(&self, kind: HistogramKind) -> HistogramSnapshot {
        self.histograms[kind as usize].lock().expect("histogram lock").snapshot()
    }

    /// Adds job I/O to a level's accumulator.
    pub fn add_level_io(&self, level: usize, read: u64, written: u64, keys_dropped: u64) {
        let mut io = self.level_io.lock().expect("level io lock");
        if io.len() <= level {
            io.resize(level + 1, LevelIo::default());
        }
        let slot = &mut io[level];
        slot.bytes_read += read;
        slot.bytes_written += written;
        slot.jobs += 1;
        slot.keys_dropped += keys_dropped;
    }

    /// Snapshot of the per-level I/O accumulators (index = level).
    pub fn level_io(&self) -> Vec<LevelIo> {
        self.level_io.lock().expect("level io lock").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tickers_accumulate_and_snapshot() {
        let t = Tickers::new();
        t.inc(Ticker::GetHit);
        t.add(Ticker::BytesWritten, 100);
        t.add(Ticker::BytesWritten, 50);
        assert_eq!(t.get(Ticker::GetHit), 1);
        assert_eq!(t.get(Ticker::BytesWritten), 150);
        let snap1 = t.snapshot();
        t.add(Ticker::BytesWritten, 10);
        let snap2 = t.snapshot();
        assert_eq!(snap2.delta_since(&snap1).get(Ticker::BytesWritten), 10);
    }

    #[test]
    fn ticker_names_align() {
        assert_eq!(TICKER_NAMES.len(), NUM_TICKERS);
        assert_eq!(TICKER_NAMES[ticker_index(Ticker::FilesDeleted)], "files_deleted");
        assert_eq!(
            TICKER_NAMES[ticker_index(Ticker::GroupCommitBatches)],
            "group_commit_batches"
        );
        assert_eq!(TICKER_NAMES[ticker_index(Ticker::BlockCacheHit)], "block_cache_hit");
    }

    #[test]
    fn histogram_percentiles_are_ordered() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(SimDuration::from_nanos(i * 100));
        }
        let s = h.snapshot();
        assert!(s.min <= s.p50 && s.p50 <= s.p75 && s.p75 <= s.p99);
        assert!(s.p99 <= s.p999 && s.p999 <= s.max);
        assert_eq!(s.count, 10_000);
    }

    #[test]
    fn histogram_percentile_accuracy() {
        let mut h = Histogram::new();
        for i in 1..=100_000u64 {
            h.record(SimDuration::from_nanos(i));
        }
        let p50 = h.percentile(50.0).as_nanos() as f64;
        assert!((p50 - 50_000.0).abs() / 50_000.0 < 0.05, "p50 = {p50}");
        let p99 = h.percentile(99.0).as_nanos() as f64;
        assert!((p99 - 99_000.0).abs() / 99_000.0 < 0.05, "p99 = {p99}");
    }

    #[test]
    fn histogram_handles_outliers() {
        let mut h = Histogram::new();
        for _ in 0..999 {
            h.record(SimDuration::from_micros(5));
        }
        h.record(SimDuration::from_millis(50));
        let s = h.snapshot();
        assert!(s.p50.as_nanos() < 10_000);
        assert_eq!(s.max, SimDuration::from_millis(50));
        // p99.9 lands in the outlier's bucket region.
        assert!(s.p999 > SimDuration::from_millis(10));
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(SimDuration::from_nanos(100));
        b.record(SimDuration::from_nanos(300));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), SimDuration::from_nanos(300));
        assert_eq!(a.min(), SimDuration::from_nanos(100));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, SimDuration::ZERO);
        assert_eq!(s.mean, SimDuration::ZERO);
    }

    #[test]
    fn stddev_and_p9999() {
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record(SimDuration::from_nanos(1000));
        }
        // Constant samples: zero spread, every percentile near the value.
        assert_eq!(h.stddev(), SimDuration::ZERO);
        let s = h.snapshot();
        assert!(s.p999 <= s.p9999 && s.p9999 <= s.max);

        let mut spread = Histogram::new();
        spread.record(SimDuration::from_nanos(0));
        spread.record(SimDuration::from_nanos(2000));
        // Population stddev of {0, 2000} is exactly 1000.
        assert_eq!(spread.stddev(), SimDuration::from_nanos(1000));
    }

    #[test]
    fn statistics_registry_accumulates() {
        let stats = Statistics::new();
        stats.tickers().inc(Ticker::WalWrites);
        stats.record(HistogramKind::DbGet, SimDuration::from_micros(3));
        stats.record(HistogramKind::DbGet, SimDuration::from_micros(5));
        assert_eq!(stats.histogram(HistogramKind::DbGet).count, 2);
        assert_eq!(stats.histogram(HistogramKind::DbWrite).count, 0);

        stats.add_level_io(0, 0, 4096, 0);
        stats.add_level_io(2, 8192, 6000, 17);
        stats.add_level_io(2, 100, 50, 3);
        let io = stats.level_io();
        assert_eq!(io.len(), 3);
        assert_eq!(io[0], LevelIo { bytes_read: 0, bytes_written: 4096, jobs: 1, keys_dropped: 0 });
        assert_eq!(io[1], LevelIo::default());
        assert_eq!(
            io[2],
            LevelIo { bytes_read: 8292, bytes_written: 6050, jobs: 2, keys_dropped: 20 }
        );
    }

    #[test]
    fn histogram_names_align() {
        assert_eq!(HISTOGRAM_NAMES[HistogramKind::DbGet as usize], "db.get.micros");
        assert_eq!(
            HISTOGRAM_NAMES[HistogramKind::SstReadMicros as usize],
            "sst.read.micros"
        );
    }

    #[test]
    fn bucket_index_monotone() {
        let mut last = 0;
        for v in [0u64, 1, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, 1 << 40, u64::MAX / 2] {
            let idx = bucket_index(v);
            assert!(idx >= last, "index not monotone at {v}");
            last = idx;
        }
    }
}
