//! Small utilities: varint coding, CRC32C, and hashing.

/// Appends a u32 in LEB128 varint encoding.
pub fn put_varint32(dst: &mut Vec<u8>, mut v: u32) {
    while v >= 0x80 {
        dst.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    dst.push(v as u8);
}

/// Appends a u64 in LEB128 varint encoding.
pub fn put_varint64(dst: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        dst.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    dst.push(v as u8);
}

/// Decodes a u32 varint, returning the value and bytes consumed.
pub fn get_varint32(src: &[u8]) -> Option<(u32, usize)> {
    get_varint64(src).and_then(|(v, n)| {
        if v <= u32::MAX as u64 {
            Some((v as u32, n))
        } else {
            None
        }
    })
}

/// Decodes a u64 varint, returning the value and bytes consumed.
pub fn get_varint64(src: &[u8]) -> Option<(u64, usize)> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    for (i, &b) in src.iter().enumerate() {
        if shift > 63 {
            return None;
        }
        result |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some((result, i + 1));
        }
        shift += 7;
    }
    None
}

/// Appends a fixed little-endian u32.
pub fn put_fixed32(dst: &mut Vec<u8>, v: u32) {
    dst.extend_from_slice(&v.to_le_bytes());
}

/// Appends a fixed little-endian u64.
pub fn put_fixed64(dst: &mut Vec<u8>, v: u64) {
    dst.extend_from_slice(&v.to_le_bytes());
}

/// Reads a fixed little-endian u32 at `offset`.
pub fn get_fixed32(src: &[u8], offset: usize) -> Option<u32> {
    src.get(offset..offset + 4)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
}

/// Reads a fixed little-endian u64 at `offset`.
pub fn get_fixed64(src: &[u8], offset: usize) -> Option<u64> {
    src.get(offset..offset + 8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
}

/// CRC32C (Castagnoli) checksum, table-driven.
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_extend(0, data)
}

/// Extends a CRC32C checksum with more data.
pub fn crc32c_extend(crc: u32, data: &[u8]) -> u32 {
    let mut c = !crc;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

const fn build_crc_table() -> [u32; 256] {
    const POLY: u32 = 0x82f6_3b78; // reflected CRC32C polynomial
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 == 1 { (crc >> 1) ^ POLY } else { crc >> 1 };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_crc_table();

/// 64-bit FNV-1a hash, used for bloom filters and cache sharding.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Formats a byte count using binary units ("64 MiB").
#[allow(dead_code)] // used by tests and kept for diagnostics
pub fn format_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else if (value - value.round()).abs() < 1e-9 {
        format!("{:.0} {}", value, UNITS[unit])
    } else {
        format!("{:.2} {}", value, UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            put_varint64(&mut buf, v);
            let (decoded, n) = get_varint64(&buf).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn varint32_rejects_overflow() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, u64::from(u32::MAX) + 1);
        assert!(get_varint32(&buf).is_none());
    }

    #[test]
    fn varint_rejects_truncated() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, 1 << 40);
        buf.pop();
        assert!(get_varint64(&buf).is_none());
    }

    #[test]
    fn fixed_roundtrip() {
        let mut buf = Vec::new();
        put_fixed32(&mut buf, 0xdead_beef);
        put_fixed64(&mut buf, 0x0123_4567_89ab_cdef);
        assert_eq!(get_fixed32(&buf, 0), Some(0xdead_beef));
        assert_eq!(get_fixed64(&buf, 4), Some(0x0123_4567_89ab_cdef));
        assert_eq!(get_fixed32(&buf, 9), None);
    }

    #[test]
    fn crc32c_known_vectors() {
        // Standard test vector: "123456789" -> 0xE3069283.
        assert_eq!(crc32c(b"123456789"), 0xe306_9283);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn crc32c_extend_matches_whole() {
        let whole = crc32c(b"hello world");
        let part = crc32c_extend(crc32c(b"hello "), b"world");
        assert_eq!(whole, part);
    }

    #[test]
    fn fnv_distributes() {
        let a = fnv1a(b"key-1");
        let b = fnv1a(b"key-2");
        assert_ne!(a, b);
    }

    #[test]
    fn format_bytes_picks_units() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(64 << 20), "64 MiB");
        assert_eq!(format_bytes(1536), "1.50 KiB");
    }
}
