//! Compaction: strategy-specific picking plus merge execution.

pub mod job;
pub mod picker;

pub use job::{can_drop_tombstones, run_compaction, CompactionJobOutput};
pub use picker::{
    level_targets, pending_compaction_bytes, pick_compaction, CompactionInputs, CompactionPick,
    CompactionReason,
};

// Re-exported pieces are part of the crate's public surface even when the
// engine itself only uses a subset.

