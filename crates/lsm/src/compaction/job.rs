//! Compaction job execution: k-way merge of input tables into output
//! tables.
//!
//! Execution is *logical*: the merge runs eagerly over the immutable
//! input files, while the I/O and CPU the job would occupy are accounted
//! by the scheduler in `db.rs` from the byte/entry totals returned here.

use std::cmp::Ordering;
use std::sync::Arc;

use hw_sim::SimDuration;

use crate::compaction::picker::{CompactionInputs, CompactionReason};
use crate::error::Result;
use crate::flush::sst_file_name;
use crate::sstable::block::Block;
use crate::sstable::table::{BlockHandle, FinishedTable, TableBuilder, TableConfig, TableReader};
use crate::types::{internal_key_cmp, FileNumber, ValueType};
use crate::version::{FileMetadata, Version};
use crate::vfs::Vfs;

/// The result of a compaction merge.
#[derive(Debug)]
pub struct CompactionJobOutput {
    /// Output files in key order.
    pub files: Vec<(FileNumber, FinishedTable)>,
    /// Bytes read from input files (on-disk size).
    pub bytes_read: u64,
    /// Bytes written to output files (on-disk size).
    pub bytes_written: u64,
    /// Entries examined.
    pub entries_read: u64,
    /// Entries emitted (after dropping shadowed versions/tombstones).
    pub entries_written: u64,
    /// CPU spent compressing output blocks.
    pub compression_cpu: SimDuration,
}

/// A cursor over one input table, decoding one block at a time.
struct TableCursor {
    reader: TableReader,
    handles: Vec<BlockHandle>,
    next_block: usize,
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    pos: usize,
}

impl TableCursor {
    fn open(vfs: &dyn Vfs, file: &FileMetadata) -> Result<TableCursor> {
        let (reader, _) = TableReader::open(vfs.open(&sst_file_name(file.number))?)?;
        let handles = reader.block_handles()?;
        let mut c = TableCursor {
            reader,
            handles,
            next_block: 0,
            entries: Vec::new(),
            pos: 0,
        };
        c.load_next_block()?;
        Ok(c)
    }

    fn load_next_block(&mut self) -> Result<()> {
        self.entries.clear();
        self.pos = 0;
        while self.entries.is_empty() && self.next_block < self.handles.len() {
            let fetch = self.reader.read_block(self.handles[self.next_block])?;
            self.next_block += 1;
            let block = Block::parse(fetch.data)?;
            let mut it = block.iter();
            while it.advance()? {
                self.entries.push((it.key().to_vec(), it.value().to_vec()));
            }
        }
        Ok(())
    }

    fn peek(&self) -> Option<&(Vec<u8>, Vec<u8>)> {
        self.entries.get(self.pos)
    }

    fn advance(&mut self) -> Result<()> {
        self.pos += 1;
        if self.pos >= self.entries.len() {
            self.load_next_block()?;
        }
        Ok(())
    }
}

/// Whether a merge may drop tombstones: nothing deeper than the output
/// level can hold older versions of the merged keys.
///
/// Any compaction qualifies under the global rule — the output is the
/// deepest level, or every deeper level is empty. A manual bottommost
/// rewrite ([`CompactionReason::BottommostFiles`]) additionally
/// qualifies when no deeper file overlaps the inputs' combined user-key
/// span; without the range-aware check, unrelated data elsewhere in a
/// deeper level keeps a range's bottommost tombstones alive forever.
pub fn can_drop_tombstones(version: &Version, c: &CompactionInputs) -> bool {
    let n = version.num_levels();
    let output = c.output_level;
    if output + 1 >= n || (output + 1..n).all(|l| version.files(l).is_empty()) {
        return true;
    }
    if c.reason != CompactionReason::BottommostFiles {
        return false;
    }
    let mut span: Option<(&[u8], &[u8])> = None;
    for (_, f) in &c.inputs {
        let (s, l) = (f.smallest.user_key(), f.largest.user_key());
        span = Some(match span {
            None => (s, l),
            Some((lo, hi)) => (lo.min(s), hi.max(l)),
        });
    }
    let Some((lo, hi)) = span else { return false };
    (output + 1..n).all(|l| version.overlapping_files(l, lo, hi).is_empty())
}

/// Runs the merge: reads `inputs`, writes up to `target_file_size`-sized
/// outputs via `alloc_file` (which hands out fresh file numbers).
///
/// `bottommost` enables tombstone elimination (safe only when no deeper
/// level can hold older versions of the merged key range).
///
/// # Errors
///
/// Returns I/O or corruption errors from reading inputs or writing
/// outputs; the caller cleans up partial output files.
pub fn run_compaction(
    vfs: &dyn Vfs,
    inputs: &[Arc<FileMetadata>],
    bottommost: bool,
    target_file_size: u64,
    table_config: &TableConfig,
    mut alloc_file: impl FnMut() -> FileNumber,
) -> Result<CompactionJobOutput> {
    let mut cursors = Vec::with_capacity(inputs.len());
    let mut bytes_read = 0u64;
    for f in inputs {
        bytes_read += f.size;
        cursors.push(TableCursor::open(vfs, f)?);
    }

    let mut out = CompactionJobOutput {
        files: Vec::new(),
        bytes_read,
        bytes_written: 0,
        entries_read: 0,
        entries_written: 0,
        compression_cpu: SimDuration::ZERO,
    };

    let mut builder: Option<(FileNumber, TableBuilder)> = None;
    let mut last_user_key: Option<Vec<u8>> = None;

    loop {
        // Find the cursor with the smallest current internal key.
        let mut best: Option<usize> = None;
        for (i, c) in cursors.iter().enumerate() {
            if let Some((k, _)) = c.peek() {
                match best {
                    None => best = Some(i),
                    Some(b) => {
                        let (bk, _) = cursors[b].peek().expect("best cursor valid");
                        if internal_key_cmp(k, bk) == Ordering::Less {
                            best = Some(i);
                        }
                    }
                }
            }
        }
        let Some(idx) = best else { break };
        let (key, value) = cursors[idx].peek().expect("peeked").clone();
        cursors[idx].advance()?;
        out.entries_read += 1;

        let user_key = &key[..key.len() - 8];
        if last_user_key.as_deref() == Some(user_key) {
            continue; // shadowed older version
        }
        last_user_key = Some(user_key.to_vec());

        // Newest version for this key: drop tombstones at the bottom.
        let tag = u64::from_le_bytes(key[key.len() - 8..].try_into().expect("8-byte tag"));
        let is_deletion = (tag & 0xff) == ValueType::Deletion as u64;
        if is_deletion && bottommost {
            continue;
        }

        if builder.is_none() {
            let number = alloc_file();
            let file = vfs.create(&sst_file_name(number))?;
            builder = Some((number, TableBuilder::new(file, table_config.clone())));
        }
        let (_, b) = builder.as_mut().expect("builder exists");
        b.add(&key, &value)?;
        out.entries_written += 1;

        if b.raw_bytes() >= target_file_size {
            let (number, b) = builder.take().expect("builder exists");
            let finished = b.finish()?;
            out.bytes_written += finished.file_size;
            out.compression_cpu += finished.compression_cpu;
            out.files.push((number, finished));
        }
    }

    if let Some((number, b)) = builder.take() {
        if b.num_entries() > 0 {
            let finished = b.finish()?;
            out.bytes_written += finished.file_size;
            out.compression_cpu += finished.compression_cpu;
            out.files.push((number, finished));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memtable::MemTable;
    use crate::types::InternalKey;
    use crate::vfs::MemVfs;

    fn make_table(
        vfs: &MemVfs,
        number: u64,
        entries: &[(&str, u64, ValueType, &str)],
    ) -> Arc<FileMetadata> {
        let mut mt = MemTable::new(0);
        for (k, seq, ty, v) in entries {
            mt.add(*seq, *ty, k.as_bytes(), v.as_bytes());
        }
        let fin = crate::flush::build_l0_table(
            vfs,
            FileNumber(number),
            &[Arc::new(mt)],
            TableConfig::default(),
        )
        .unwrap()
        .table;
        Arc::new(FileMetadata::new(
            FileNumber(number),
            fin.file_size,
            fin.smallest,
            fin.largest,
            fin.properties.num_entries,
        ))
    }

    fn read_user_entries(vfs: &MemVfs, number: FileNumber) -> Vec<(String, String)> {
        let (reader, _) = TableReader::open(vfs.open(&sst_file_name(number)).unwrap()).unwrap();
        let mut out = Vec::new();
        for h in reader.block_handles().unwrap() {
            let fetch = reader.read_block(h).unwrap();
            let block = Block::parse(fetch.data).unwrap();
            let mut it = block.iter();
            while it.advance().unwrap() {
                let ik = InternalKey::decode(it.key()).unwrap();
                out.push((
                    String::from_utf8(ik.user_key().to_vec()).unwrap(),
                    String::from_utf8(it.value().to_vec()).unwrap(),
                ));
            }
        }
        out
    }

    #[test]
    fn merge_two_tables_newest_wins() {
        let vfs = MemVfs::new();
        let old = make_table(&vfs, 1, &[("a", 1, ValueType::Value, "old-a"), ("b", 2, ValueType::Value, "b")]);
        let new = make_table(&vfs, 2, &[("a", 10, ValueType::Value, "new-a"), ("c", 11, ValueType::Value, "c")]);
        let mut next = 10u64;
        let out = run_compaction(&vfs, &[old, new], false, u64::MAX, &TableConfig::default(), || {
            next += 1;
            FileNumber(next)
        })
        .unwrap();
        assert_eq!(out.files.len(), 1);
        assert_eq!(out.entries_read, 4);
        assert_eq!(out.entries_written, 3);
        let entries = read_user_entries(&vfs, out.files[0].0);
        assert_eq!(
            entries,
            vec![
                ("a".to_string(), "new-a".to_string()),
                ("b".to_string(), "b".to_string()),
                ("c".to_string(), "c".to_string())
            ]
        );
    }

    #[test]
    fn tombstones_dropped_only_at_bottom() {
        let vfs = MemVfs::new();
        let t = make_table(
            &vfs,
            1,
            &[("dead", 5, ValueType::Deletion, ""), ("live", 6, ValueType::Value, "v")],
        );
        let mut next = 10u64;
        let keep = run_compaction(
            &vfs,
            &[Arc::clone(&t)],
            false,
            u64::MAX,
            &TableConfig::default(),
            || {
                next += 1;
                FileNumber(next)
            },
        )
        .unwrap();
        assert_eq!(keep.entries_written, 2, "tombstone kept off-bottom");

        let drop = run_compaction(&vfs, &[t], true, u64::MAX, &TableConfig::default(), || {
            next += 1;
            FileNumber(next)
        })
        .unwrap();
        assert_eq!(drop.entries_written, 1, "tombstone dropped at bottom");
        let entries = read_user_entries(&vfs, drop.files[0].0);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, "live");
    }

    #[test]
    fn output_splits_at_target_size() {
        let vfs = MemVfs::new();
        let entries: Vec<(String, String)> = (0..500)
            .map(|i| (format!("key-{i:05}"), "v".repeat(100)))
            .collect();
        let refs: Vec<(&str, u64, ValueType, &str)> = entries
            .iter()
            .enumerate()
            .map(|(i, (k, v))| (k.as_str(), (i + 1) as u64, ValueType::Value, v.as_str()))
            .collect();
        let t = make_table(&vfs, 1, &refs);
        let mut next = 10u64;
        let out = run_compaction(&vfs, &[t], true, 8_000, &TableConfig::default(), || {
            next += 1;
            FileNumber(next)
        })
        .unwrap();
        assert!(out.files.len() > 3, "got {} files", out.files.len());
        // All entries preserved across the splits, in order.
        let mut all = Vec::new();
        for (num, _) in &out.files {
            all.extend(read_user_entries(&vfs, *num));
        }
        assert_eq!(all.len(), 500);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn all_tombstones_at_bottom_can_produce_no_output() {
        let vfs = MemVfs::new();
        let t = make_table(&vfs, 1, &[("gone", 5, ValueType::Deletion, "")]);
        let mut next = 10u64;
        let out = run_compaction(&vfs, &[t], true, u64::MAX, &TableConfig::default(), || {
            next += 1;
            FileNumber(next)
        })
        .unwrap();
        assert!(out.files.is_empty());
        assert_eq!(out.entries_written, 0);
    }

    #[test]
    fn can_drop_tombstones_is_range_aware_for_bottommost_rewrites() {
        use crate::version::VersionEdit;

        fn file(number: u64, lo: &str, hi: &str) -> Arc<FileMetadata> {
            Arc::new(FileMetadata::new(
                FileNumber(number),
                1_000,
                InternalKey::new(lo.as_bytes(), 1, ValueType::Value),
                InternalKey::new(hi.as_bytes(), 1, ValueType::Value),
                10,
            ))
        }
        fn version(files: &[(usize, Arc<FileMetadata>)]) -> Version {
            let mut edit = VersionEdit::default();
            for (l, f) in files {
                edit.added_files.push((*l, Arc::clone(f)));
            }
            Version::empty(7).apply(&edit).unwrap()
        }

        let a = file(1, "a", "c");
        let z = file(2, "x", "z");
        // Unrelated z-range data at L2 defeats the global rule for an
        // L1 merge of the a-range...
        let v = version(&[(1, Arc::clone(&a)), (2, Arc::clone(&z))]);
        let auto = CompactionInputs {
            inputs: vec![(1, Arc::clone(&a))],
            output_level: 1,
            reason: CompactionReason::LevelSize,
        };
        assert!(!can_drop_tombstones(&v, &auto), "auto merges keep the global rule");

        // ...but a manual bottommost rewrite checks the inputs' span.
        let rewrite = CompactionInputs {
            inputs: vec![(1, Arc::clone(&a))],
            output_level: 1,
            reason: CompactionReason::BottommostFiles,
        };
        assert!(can_drop_tombstones(&v, &rewrite), "no deeper overlap in [a,c]");

        // A deeper file overlapping the span blocks the drop.
        let v2 = version(&[(1, Arc::clone(&a)), (2, file(3, "b", "d"))]);
        let rewrite2 = CompactionInputs {
            inputs: vec![(1, Arc::clone(&a))],
            output_level: 1,
            reason: CompactionReason::BottommostFiles,
        };
        assert!(!can_drop_tombstones(&v2, &rewrite2));

        // Global rule still applies to every reason.
        let v3 = version(&[(1, Arc::clone(&a))]);
        let auto3 = CompactionInputs {
            inputs: vec![(1, a)],
            output_level: 1,
            reason: CompactionReason::LevelSize,
        };
        assert!(can_drop_tombstones(&v3, &auto3), "deeper levels empty");
    }

    #[test]
    fn byte_accounting_present() {
        let vfs = MemVfs::new();
        let t = make_table(&vfs, 1, &[("a", 1, ValueType::Value, "v"), ("b", 2, ValueType::Value, "v")]);
        let size = t.size;
        let mut next = 10u64;
        let out = run_compaction(&vfs, &[t], false, u64::MAX, &TableConfig::default(), || {
            next += 1;
            FileNumber(next)
        })
        .unwrap();
        assert_eq!(out.bytes_read, size);
        assert!(out.bytes_written > 0);
    }
}
