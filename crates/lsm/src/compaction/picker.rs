//! Compaction picking for the leveled, universal, and FIFO strategies.

use std::sync::Arc;

use crate::options::{CompactionStyle, Options};
use crate::version::{FileMetadata, Version};

/// Why a compaction was chosen (reported in stats and logs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionReason {
    /// L0 file count reached the trigger.
    L0Files,
    /// A level exceeded its byte target.
    LevelSize,
    /// Universal: size-ratio merge of adjacent runs.
    UniversalSizeRatio,
    /// Universal: space amplification forced a full merge.
    UniversalSpaceAmp,
    /// FIFO: total size over budget, oldest files dropped.
    FifoDrop,
    /// Manual `compact_range`: rewrite bottommost files in the range so
    /// tombstones already at the bottom are dropped.
    BottommostFiles,
}

/// A chosen compaction.
#[derive(Debug)]
pub enum CompactionPick {
    /// Merge `inputs` and write the result to `output_level`.
    Merge(CompactionInputs),
    /// FIFO: delete these files outright (no merging).
    Drop {
        /// Files to delete, all on L0.
        files: Vec<Arc<FileMetadata>>,
        /// Always [`CompactionReason::FifoDrop`].
        reason: CompactionReason,
    },
}

/// Inputs to a merging compaction.
#[derive(Debug)]
pub struct CompactionInputs {
    /// Input files with the level each lives on.
    pub inputs: Vec<(usize, Arc<FileMetadata>)>,
    /// Destination level.
    pub output_level: usize,
    /// Why this compaction was picked.
    pub reason: CompactionReason,
}

impl CompactionInputs {
    /// Total input bytes.
    pub fn total_bytes(&self) -> u64 {
        self.inputs.iter().map(|(_, f)| f.size).sum()
    }
}

/// Per-level byte targets for leveled compaction.
pub fn level_targets(opts: &Options, version: &Version) -> Vec<u64> {
    let n = version.num_levels();
    let mut targets = vec![u64::MAX; n];
    if n < 2 {
        return targets;
    }
    if opts.level_compaction_dynamic_level_bytes {
        // Size levels down from the deepest non-empty level so the last
        // level holds ~the full data set (lower space amplification).
        let last = (1..n).rev().find(|l| version.level_bytes(*l) > 0).unwrap_or(n - 1);
        let mut target = version.level_bytes(last).max(opts.max_bytes_for_level_base);
        for l in (1..=last).rev() {
            targets[l] = target.max(opts.max_bytes_for_level_base);
            target = (target as f64 / opts.max_bytes_for_level_multiplier.max(1.0)) as u64;
        }
        for t in targets.iter_mut().skip(last + 1) {
            *t = u64::MAX;
        }
    } else {
        let mut target = opts.max_bytes_for_level_base;
        for t in targets.iter_mut().take(n).skip(1) {
            *t = target;
            target = (target as f64 * opts.max_bytes_for_level_multiplier.max(1.0)) as u64;
        }
    }
    targets
}

/// Estimated compaction debt: bytes above target across levels plus
/// over-trigger L0 bytes. Drives the pending-compaction write throttles.
pub fn pending_compaction_bytes(opts: &Options, version: &Version) -> u64 {
    let targets = level_targets(opts, version);
    let mut debt = 0u64;
    let l0_files = version.files(0).len() as u64;
    let trigger = opts.level0_file_num_compaction_trigger.max(1) as u64;
    if l0_files > trigger {
        let avg = version.level_bytes(0) / l0_files.max(1);
        debt += avg * (l0_files - trigger);
    }
    for (l, &target) in targets.iter().enumerate().take(version.num_levels()).skip(1) {
        let bytes = version.level_bytes(l);
        if target != u64::MAX && bytes > target {
            debt += bytes - target;
        }
    }
    debt
}

/// Picks the next compaction for the configured style, or `None` when
/// nothing is needed or all candidates are already claimed.
pub fn pick_compaction(opts: &Options, version: &Version) -> Option<CompactionPick> {
    match opts.compaction_style {
        CompactionStyle::Level => pick_leveled(opts, version),
        CompactionStyle::Universal => pick_universal(opts, version),
        CompactionStyle::Fifo => pick_fifo(opts, version),
    }
}

fn unclaimed(files: &[Arc<FileMetadata>]) -> Vec<Arc<FileMetadata>> {
    files.iter().filter(|f| !f.is_being_compacted()).cloned().collect()
}

fn pick_leveled(opts: &Options, version: &Version) -> Option<CompactionPick> {
    let n = version.num_levels();
    let targets = level_targets(opts, version);

    // Score L0 by file count, deeper levels by bytes vs target.
    let l0_unclaimed = unclaimed(version.files(0));
    let l0_claimed = version.files(0).len() != l0_unclaimed.len();
    let mut best: Option<(f64, usize)> = None;
    if !l0_claimed && !l0_unclaimed.is_empty() {
        let score = l0_unclaimed.len() as f64 / opts.level0_file_num_compaction_trigger.max(1) as f64;
        best = Some((score, 0));
    }
    for (level, &target) in targets.iter().enumerate().take(n - 1).skip(1) {
        if target == u64::MAX {
            continue;
        }
        let bytes: u64 = unclaimed(version.files(level)).iter().map(|f| f.size).sum();
        let score = bytes as f64 / target as f64;
        if best.map(|(s, _)| score > s).unwrap_or(true) {
            best = Some((score, level));
        }
    }
    let (score, level) = best?;
    if score < 1.0 {
        return None;
    }

    if level == 0 {
        // L0 -> base level: all unclaimed L0 files plus overlapping base
        // files.
        let base = pick_base_level(opts, version);
        let mut lo = l0_unclaimed[0].smallest.user_key().to_vec();
        let mut hi = l0_unclaimed[0].largest.user_key().to_vec();
        for f in &l0_unclaimed {
            if f.smallest.user_key() < lo.as_slice() {
                lo = f.smallest.user_key().to_vec();
            }
            if f.largest.user_key() > hi.as_slice() {
                hi = f.largest.user_key().to_vec();
            }
        }
        let bottom = version.overlapping_files(base, &lo, &hi);
        if bottom.iter().any(|f| f.is_being_compacted()) {
            return None;
        }
        let mut inputs: Vec<(usize, Arc<FileMetadata>)> =
            l0_unclaimed.into_iter().map(|f| (0, f)).collect();
        inputs.extend(bottom.into_iter().map(|f| (base, f)));
        return Some(CompactionPick::Merge(CompactionInputs {
            inputs,
            output_level: base,
            reason: CompactionReason::L0Files,
        }));
    }

    // Level N -> N+1: pick the first unclaimed file whose bottom overlap
    // is also unclaimed, bounded by max_compaction_bytes.
    let output_level = level + 1;
    for file in unclaimed(version.files(level)) {
        let bottom = version.overlapping_files(
            output_level,
            file.smallest.user_key(),
            file.largest.user_key(),
        );
        if bottom.iter().any(|f| f.is_being_compacted()) {
            continue;
        }
        let total: u64 = file.size + bottom.iter().map(|f| f.size).sum::<u64>();
        if total > opts.max_compaction_bytes.max(file.size) && !bottom.is_empty() {
            continue;
        }
        let mut inputs = vec![(level, file)];
        inputs.extend(bottom.into_iter().map(|f| (output_level, f)));
        return Some(CompactionPick::Merge(CompactionInputs {
            inputs,
            output_level,
            reason: CompactionReason::LevelSize,
        }));
    }
    None
}

/// The level L0 compacts into: the first non-empty level, or L1.
fn pick_base_level(opts: &Options, version: &Version) -> usize {
    if !opts.level_compaction_dynamic_level_bytes {
        return 1;
    }
    (1..version.num_levels())
        .find(|l| version.level_bytes(*l) > 0)
        .unwrap_or(1)
}

/// Universal compaction treats every L0 file and every non-empty deeper
/// level as one sorted run, newest first.
fn universal_runs(version: &Version) -> Vec<(usize, Vec<Arc<FileMetadata>>, u64)> {
    let mut runs = Vec::new();
    for f in version.files(0) {
        runs.push((0, vec![Arc::clone(f)], f.size));
    }
    for level in 1..version.num_levels() {
        let files = version.files(level);
        if !files.is_empty() {
            let size = files.iter().map(|f| f.size).sum();
            runs.push((level, files.to_vec(), size));
        }
    }
    runs
}

fn pick_universal(opts: &Options, version: &Version) -> Option<CompactionPick> {
    let runs = universal_runs(version);
    let trigger = opts.level0_file_num_compaction_trigger.max(2) as usize;
    if runs.len() < trigger {
        return None;
    }
    if runs
        .iter()
        .any(|(_, files, _)| files.iter().any(|f| f.is_being_compacted()))
    {
        return None;
    }

    // 1) Space amplification: if everything above the oldest run is
    //    already as big as the oldest run allows, merge all runs.
    // Widened to u128: simulated databases reach sizes where
    // `upper * 100` wraps in u64 and the trigger silently goes dead.
    let last_size = runs.last().map(|r| r.2).unwrap_or(0).max(1) as u128;
    let upper: u128 = runs[..runs.len() - 1].iter().map(|r| r.2 as u128).sum();
    if upper * 100 >= last_size * opts.universal_max_size_amplification_percent as u128 {
        let inputs = runs
            .iter()
            .flat_map(|(l, files, _)| files.iter().map(|f| (*l, Arc::clone(f))))
            .collect();
        return Some(CompactionPick::Merge(CompactionInputs {
            inputs,
            output_level: version.num_levels() - 1,
            reason: CompactionReason::UniversalSpaceAmp,
        }));
    }

    // 2) Size ratio: greedily extend from the newest run while the next
    //    run is not much bigger than what we accumulated.
    // Options::validate() guarantees size_ratio in [0,100] and merge
    // widths >= 2; the picker trusts them rather than re-clamping.
    let ratio = 1.0 + opts.universal_size_ratio as f64 / 100.0;
    let max_width = opts.universal_max_merge_width as usize;
    let mut acc = runs[0].2;
    let mut width = 1;
    while width < runs.len().min(max_width) {
        let next = runs[width].2;
        if (next as f64) <= (acc as f64) * ratio {
            acc += next;
            width += 1;
        } else {
            break;
        }
    }
    let min_width = opts.universal_min_merge_width as usize;
    if width < min_width {
        // 3) Fall back to merging the newest `min_width` runs to cap the
        //    run count.
        width = min_width.min(runs.len());
    }
    // Partial merges write back to L0 as one bigger (older-position) run;
    // merges reaching the oldest run go to the bottom level.
    let includes_last = width == runs.len();
    let output_level = if includes_last { version.num_levels() - 1 } else { 0 };
    let inputs = runs[..width]
        .iter()
        .flat_map(|(l, files, _)| files.iter().map(|f| (*l, Arc::clone(f))))
        .collect();
    Some(CompactionPick::Merge(CompactionInputs {
        inputs,
        output_level,
        reason: CompactionReason::UniversalSizeRatio,
    }))
}

fn pick_fifo(opts: &Options, version: &Version) -> Option<CompactionPick> {
    let total = version.level_bytes(0);
    if total <= opts.fifo_max_table_files_size {
        return None;
    }
    // Drop oldest (smallest file number) files until under budget.
    let mut files: Vec<Arc<FileMetadata>> = unclaimed(version.files(0));
    files.sort_by_key(|f| f.number);
    let mut to_drop = Vec::new();
    let mut remaining = total;
    for f in files {
        if remaining <= opts.fifo_max_table_files_size {
            break;
        }
        remaining = remaining.saturating_sub(f.size);
        to_drop.push(f);
    }
    if to_drop.is_empty() {
        None
    } else {
        Some(CompactionPick::Drop {
            files: to_drop,
            reason: CompactionReason::FifoDrop,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{FileNumber, InternalKey, ValueType};
    use crate::version::VersionEdit;

    fn meta(number: u64, lo: &str, hi: &str, size: u64) -> Arc<FileMetadata> {
        Arc::new(FileMetadata::new(
            FileNumber(number),
            size,
            InternalKey::new(lo.as_bytes(), 1, ValueType::Value),
            InternalKey::new(hi.as_bytes(), 1, ValueType::Value),
            size / 100,
        ))
    }

    fn version_with(files: &[(usize, Arc<FileMetadata>)]) -> Version {
        let mut edit = VersionEdit::default();
        for (l, f) in files {
            edit.added_files.push((*l, Arc::clone(f)));
        }
        Version::empty(7).apply(&edit).unwrap()
    }

    #[test]
    fn no_compaction_when_quiet() {
        let opts = Options::default();
        let v = version_with(&[(0, meta(1, "a", "b", 1000))]);
        assert!(pick_compaction(&opts, &v).is_none());
    }

    #[test]
    fn l0_trigger_picks_all_l0_plus_overlap() {
        let opts = Options::default(); // trigger = 4
        let v = version_with(&[
            (0, meta(1, "a", "m", 1000)),
            (0, meta(2, "b", "n", 1000)),
            (0, meta(3, "c", "o", 1000)),
            (0, meta(4, "d", "p", 1000)),
            (1, meta(5, "a", "h", 1000)),
            (1, meta(6, "x", "z", 1000)),
        ]);
        let Some(CompactionPick::Merge(c)) = pick_compaction(&opts, &v) else {
            panic!("expected merge");
        };
        assert_eq!(c.reason, CompactionReason::L0Files);
        assert_eq!(c.output_level, 1);
        // 4 L0 files + the overlapping L1 file (x..z does not overlap a..p).
        assert_eq!(c.inputs.len(), 5);
        assert!(c.inputs.iter().all(|(l, f)| *l != 1 || f.number == FileNumber(5)));
    }

    #[test]
    fn level_size_trigger() {
        let opts = Options {
            max_bytes_for_level_base: 10_000,
            ..Options::default()
        };
        let v = version_with(&[
            (1, meta(1, "a", "f", 8_000)),
            (1, meta(2, "g", "p", 8_000)),
            (2, meta(3, "a", "c", 5_000)),
        ]);
        let Some(CompactionPick::Merge(c)) = pick_compaction(&opts, &v) else {
            panic!("expected merge");
        };
        assert_eq!(c.reason, CompactionReason::LevelSize);
        assert_eq!(c.output_level, 2);
        // First L1 file overlaps the L2 file.
        assert_eq!(c.inputs.len(), 2);
    }

    #[test]
    fn claimed_files_block_picks() {
        let opts = Options::default();
        let f1 = meta(1, "a", "m", 1000);
        f1.set_being_compacted(true);
        let v = version_with(&[
            (0, Arc::clone(&f1)),
            (0, meta(2, "b", "n", 1000)),
            (0, meta(3, "c", "o", 1000)),
            (0, meta(4, "d", "p", 1000)),
        ]);
        assert!(pick_compaction(&opts, &v).is_none(), "L0 pick waits for in-flight job");
    }

    #[test]
    fn dynamic_level_bytes_changes_targets() {
        let opts = Options {
            level_compaction_dynamic_level_bytes: true,
            ..Options::default()
        };
        let v = version_with(&[(6, meta(1, "a", "z", 100 << 30))]);
        let targets = level_targets(&opts, &v);
        assert_eq!(targets[6], 100 << 30);
        assert!(targets[5] < targets[6]);
        assert!(targets[1] >= opts.max_bytes_for_level_base);
    }

    #[test]
    fn pending_bytes_grow_with_debt() {
        let opts = Options {
            max_bytes_for_level_base: 1_000,
            ..Options::default()
        };
        let quiet = version_with(&[(1, meta(1, "a", "b", 500))]);
        assert_eq!(pending_compaction_bytes(&opts, &quiet), 0);
        let busy = version_with(&[(1, meta(1, "a", "b", 50_000))]);
        assert_eq!(pending_compaction_bytes(&opts, &busy), 49_000);
    }

    #[test]
    fn universal_size_ratio_merges_newest_runs() {
        let opts = Options {
            compaction_style: CompactionStyle::Universal,
            level0_file_num_compaction_trigger: 4,
            universal_max_size_amplification_percent: 10_000, // avoid full merge
            ..Options::default()
        };
        let v = version_with(&[
            (0, meta(10, "a", "z", 1_000)),
            (0, meta(9, "a", "z", 1_000)),
            (0, meta(8, "a", "z", 1_100)),
            (0, meta(7, "a", "z", 100_000)),
            (6, meta(1, "a", "z", 200_000)),
        ]);
        let Some(CompactionPick::Merge(c)) = pick_compaction(&opts, &v) else {
            panic!("expected merge");
        };
        assert_eq!(c.reason, CompactionReason::UniversalSizeRatio);
        assert_eq!(c.output_level, 0, "partial merges stay in L0");
        assert_eq!(c.inputs.len(), 3, "the three similar-size runs merge");
    }

    #[test]
    fn universal_space_amp_full_merge() {
        let opts = Options {
            compaction_style: CompactionStyle::Universal,
            level0_file_num_compaction_trigger: 2,
            universal_max_size_amplification_percent: 200,
            ..Options::default()
        };
        let v = version_with(&[
            (0, meta(3, "a", "z", 3_000)),
            (0, meta(2, "a", "z", 3_000)),
            (6, meta(1, "a", "z", 2_000)),
        ]);
        let Some(CompactionPick::Merge(c)) = pick_compaction(&opts, &v) else {
            panic!("expected merge");
        };
        assert_eq!(c.reason, CompactionReason::UniversalSpaceAmp);
        assert_eq!(c.output_level, 6);
        assert_eq!(c.inputs.len(), 3);
    }

    #[test]
    fn universal_space_amp_survives_u64_overflow() {
        // Regression: with run sizes near 2^62, `upper * 100` wrapped in
        // u64 (100 * 2^62 mod 2^64 = 0) and the size-amp trigger went
        // dead, so the pick degraded to a partial size-ratio merge.
        let opts = Options {
            compaction_style: CompactionStyle::Universal,
            level0_file_num_compaction_trigger: 2,
            universal_max_size_amplification_percent: 200,
            ..Options::default()
        };
        let v = version_with(&[
            (0, meta(2, "a", "z", 1u64 << 62)),
            (6, meta(1, "a", "z", 1u64 << 50)),
        ]);
        let Some(CompactionPick::Merge(c)) = pick_compaction(&opts, &v) else {
            panic!("expected merge");
        };
        assert_eq!(c.reason, CompactionReason::UniversalSpaceAmp);
        assert_eq!(c.output_level, 6);
        assert_eq!(c.inputs.len(), 2);
    }

    #[test]
    fn universal_trusts_validated_boundary_widths() {
        // min/max merge width at the validated lower bound (2) and
        // size_ratio at 0 must behave exactly as before the clamp removal.
        let opts = Options {
            compaction_style: CompactionStyle::Universal,
            level0_file_num_compaction_trigger: 2,
            universal_max_size_amplification_percent: 10_000,
            universal_size_ratio: 0,
            universal_min_merge_width: 2,
            universal_max_merge_width: 2,
            ..Options::default()
        };
        opts.validate().unwrap();
        let v = version_with(&[
            (0, meta(4, "a", "z", 1_000)),
            (0, meta(3, "a", "z", 1_000)),
            (0, meta(2, "a", "z", 1_000)),
            (6, meta(1, "a", "z", 100_000)),
        ]);
        let Some(CompactionPick::Merge(c)) = pick_compaction(&opts, &v) else {
            panic!("expected merge");
        };
        assert_eq!(c.reason, CompactionReason::UniversalSizeRatio);
        assert_eq!(c.inputs.len(), 2, "max_merge_width=2 caps the merge");
    }

    #[test]
    fn fifo_drops_oldest() {
        let opts = Options {
            compaction_style: CompactionStyle::Fifo,
            fifo_max_table_files_size: 2_500,
            ..Options::default()
        };
        let v = version_with(&[
            (0, meta(3, "a", "z", 1_000)),
            (0, meta(2, "a", "z", 1_000)),
            (0, meta(1, "a", "z", 1_000)),
        ]);
        let Some(CompactionPick::Drop { files, reason }) = pick_compaction(&opts, &v) else {
            panic!("expected drop");
        };
        assert_eq!(reason, CompactionReason::FifoDrop);
        assert_eq!(files.len(), 1);
        assert_eq!(files[0].number, FileNumber(1), "oldest dropped first");
    }
}
