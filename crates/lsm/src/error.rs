//! Error types for the storage engine.
//!
//! [`Error`] carries a structured [`ErrorKind`] plus a *retryability* bit.
//! Retryability drives the engine's graceful-degradation plumbing: transient
//! I/O failures (as injected by
//! [`FaultInjectionVfs`](crate::FaultInjectionVfs), or surfaced by the OS as
//! `EINTR`/`EAGAIN`-class conditions) make flush/compaction jobs park and
//! retry with backoff and make the WAL rotate to a fresh file, while
//! non-retryable errors latch the database into a fatal state.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Broad classification of an [`Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// An I/O failure in the underlying virtual file system.
    Io,
    /// Stored data failed a checksum or structural validation.
    Corruption,
    /// The caller supplied an invalid argument or option value.
    InvalidArgument,
    /// The database is shutting down or already closed.
    ShuttingDown,
    /// An operation is not supported in the current configuration.
    NotSupported,
    /// The engine exhausted an internal resource (e.g. stall deadline).
    Busy,
}

/// Errors returned by storage-engine operations.
///
/// An error is a `(kind, message, retryable)` triple. Use the kind
/// predicates ([`is_corruption`](Error::is_corruption),
/// [`is_io`](Error::is_io), ...) or [`kind`](Error::kind) to classify, and
/// [`is_retryable`](Error::is_retryable) to decide whether backing off and
/// retrying the operation can succeed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    kind: ErrorKind,
    message: String,
    retryable: bool,
}

impl Error {
    /// Builds an error with an explicit kind. Not retryable by default
    /// except for [`ErrorKind::Busy`].
    pub fn new(kind: ErrorKind, msg: impl Into<String>) -> Self {
        Error {
            kind,
            message: msg.into(),
            retryable: kind == ErrorKind::Busy,
        }
    }

    /// Convenience constructor for corruption errors.
    pub fn corruption(msg: impl Into<String>) -> Self {
        Error::new(ErrorKind::Corruption, msg)
    }

    /// Convenience constructor for I/O errors.
    pub fn io(msg: impl Into<String>) -> Self {
        Error::new(ErrorKind::Io, msg)
    }

    /// Convenience constructor for invalid-argument errors.
    pub fn invalid_argument(msg: impl Into<String>) -> Self {
        Error::new(ErrorKind::InvalidArgument, msg)
    }

    /// Convenience constructor for not-supported errors.
    pub fn not_supported(msg: impl Into<String>) -> Self {
        Error::new(ErrorKind::NotSupported, msg)
    }

    /// Convenience constructor for busy/resource-exhaustion errors
    /// (retryable by default).
    pub fn busy(msg: impl Into<String>) -> Self {
        Error::new(ErrorKind::Busy, msg)
    }

    /// The shutting-down error.
    pub fn shutting_down() -> Self {
        Error::new(ErrorKind::ShuttingDown, "")
    }

    /// Returns a copy of this error with retryability overridden.
    #[must_use]
    pub fn retryable(mut self, retryable: bool) -> Self {
        self.retryable = retryable;
        self
    }

    /// Broad classification of this error.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// Human-readable detail message (may be empty).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Whether backing off and retrying the failed operation can succeed.
    ///
    /// Corruption and invalid-argument errors are never retryable; transient
    /// I/O errors and write stalls are.
    pub fn is_retryable(&self) -> bool {
        self.retryable
    }

    /// True when stored data failed a checksum or structural validation.
    pub fn is_corruption(&self) -> bool {
        self.kind == ErrorKind::Corruption
    }

    /// True for I/O failures in the underlying virtual file system.
    pub fn is_io(&self) -> bool {
        self.kind == ErrorKind::Io
    }

    /// True when the database is shutting down.
    pub fn is_shutting_down(&self) -> bool {
        self.kind == ErrorKind::ShuttingDown
    }

    /// True for busy/resource-exhaustion errors.
    pub fn is_busy(&self) -> bool {
        self.kind == ErrorKind::Busy
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ErrorKind::Io => write!(f, "i/o error: {}", self.message),
            ErrorKind::Corruption => write!(f, "corruption: {}", self.message),
            ErrorKind::InvalidArgument => write!(f, "invalid argument: {}", self.message),
            ErrorKind::ShuttingDown => write!(f, "database is shutting down"),
            ErrorKind::NotSupported => write!(f, "not supported: {}", self.message),
            ErrorKind::Busy => write!(f, "busy: {}", self.message),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        use std::io::ErrorKind as IoKind;
        let retryable = matches!(
            e.kind(),
            IoKind::Interrupted | IoKind::WouldBlock | IoKind::TimedOut
        );
        Error::io(e.to_string()).retryable(retryable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = Error::corruption("bad block checksum");
        assert_eq!(e.to_string(), "corruption: bad block checksum");
        let e = Error::invalid_argument("write_buffer_size must be positive");
        assert!(e.to_string().starts_with("invalid argument"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: Error = io.into();
        assert!(e.is_io());
        assert!(!e.is_retryable());
    }

    #[test]
    fn transient_io_errors_are_retryable() {
        let io = std::io::Error::new(std::io::ErrorKind::Interrupted, "eintr");
        let e: Error = io.into();
        assert!(e.is_io());
        assert!(e.is_retryable());
    }

    #[test]
    fn retryability_defaults_and_overrides() {
        assert!(!Error::io("disk on fire").is_retryable());
        assert!(Error::io("transient").retryable(true).is_retryable());
        assert!(Error::busy("stall").is_retryable());
        assert!(!Error::corruption("bad").is_retryable());
        assert!(Error::corruption("bad").retryable(true).is_corruption());
    }

    #[test]
    fn kind_predicates() {
        assert_eq!(Error::io("x").kind(), ErrorKind::Io);
        assert!(Error::corruption("x").is_corruption());
        assert!(Error::shutting_down().is_shutting_down());
        assert!(Error::busy("x").is_busy());
        assert_eq!(Error::not_supported("x").kind(), ErrorKind::NotSupported);
    }
}
