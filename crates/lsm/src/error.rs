//! Error types for the storage engine.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors returned by storage-engine operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// An I/O failure in the underlying virtual file system.
    Io(String),
    /// Stored data failed a checksum or structural validation.
    Corruption(String),
    /// The caller supplied an invalid argument or option value.
    InvalidArgument(String),
    /// The database is shutting down or already closed.
    ShuttingDown,
    /// An operation is not supported in the current configuration.
    NotSupported(String),
    /// The engine exhausted an internal resource (e.g. stall deadline).
    Busy(String),
}

impl Error {
    /// Convenience constructor for corruption errors.
    pub fn corruption(msg: impl Into<String>) -> Self {
        Error::Corruption(msg.into())
    }

    /// Convenience constructor for I/O errors.
    pub fn io(msg: impl Into<String>) -> Self {
        Error::Io(msg.into())
    }

    /// Convenience constructor for invalid-argument errors.
    pub fn invalid_argument(msg: impl Into<String>) -> Self {
        Error::InvalidArgument(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(m) => write!(f, "i/o error: {m}"),
            Error::Corruption(m) => write!(f, "corruption: {m}"),
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Error::ShuttingDown => write!(f, "database is shutting down"),
            Error::NotSupported(m) => write!(f, "not supported: {m}"),
            Error::Busy(m) => write!(f, "busy: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = Error::corruption("bad block checksum");
        assert_eq!(e.to_string(), "corruption: bad block checksum");
        let e = Error::invalid_argument("write_buffer_size must be positive");
        assert!(e.to_string().starts_with("invalid argument"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
    }
}
