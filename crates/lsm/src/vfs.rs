//! Virtual file system abstraction.
//!
//! The engine performs all persistence through [`Vfs`] so the same code
//! runs against real files ([`StdVfs`]) or an in-memory store
//! ([`MemVfs`]). Note that the VFS is *pure storage*: simulated I/O
//! timing is charged separately by the engine's I/O timer, which knows
//! whether an access is foreground or background — see `db.rs`.
//!
//! [`MemVfs`] supports fault injection for crash/recovery and error-path
//! tests.

use std::collections::HashMap;
use std::fmt;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{Error, Result};

/// A handle for appending to a new file.
pub trait WritableFile: Send {
    /// Appends bytes to the file.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Io`](crate::ErrorKind) on underlying write failure.
    fn append(&mut self, data: &[u8]) -> Result<()>;

    /// Durably persists everything appended so far.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Io`](crate::ErrorKind) on underlying sync failure.
    fn sync(&mut self) -> Result<()>;

    /// Completes the file, making it visible to [`Vfs::open`].
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Io`](crate::ErrorKind) on underlying flush failure.
    fn finish(&mut self) -> Result<()>;

    /// Bytes appended so far.
    fn len(&self) -> u64;

    /// Whether nothing has been appended.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A handle for positional reads of an immutable file.
pub trait RandomAccessFile: Send + Sync {
    /// Reads up to `len` bytes at `offset`, short at end of file.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Io`](crate::ErrorKind) if the read fails or the offset is past EOF.
    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>>;

    /// Total file length in bytes.
    fn len(&self) -> u64;

    /// Whether the file is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// File system operations the engine needs.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Creates (or truncates) a file for writing.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Io`](crate::ErrorKind) if creation fails.
    fn create(&self, path: &str) -> Result<Box<dyn WritableFile>>;

    /// Opens an existing file for random access.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Io`](crate::ErrorKind) if the file does not exist.
    fn open(&self, path: &str) -> Result<Arc<dyn RandomAccessFile>>;

    /// Reads a whole file (used for WAL/manifest recovery).
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Io`](crate::ErrorKind) if the file does not exist.
    fn read_all(&self, path: &str) -> Result<Vec<u8>>;

    /// Deletes a file; deleting a missing file is an error.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Io`](crate::ErrorKind) if the file does not exist.
    fn delete(&self, path: &str) -> Result<()>;

    /// Atomically renames a file.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Io`](crate::ErrorKind) if the source does not exist.
    fn rename(&self, from: &str, to: &str) -> Result<()>;

    /// Whether a file exists.
    fn exists(&self, path: &str) -> bool;

    /// Lists file names starting with `prefix`.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Io`](crate::ErrorKind) if the directory cannot be read.
    fn list(&self, prefix: &str) -> Result<Vec<String>>;

    /// Size of a file in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Io`](crate::ErrorKind) if the file does not exist.
    fn file_size(&self, path: &str) -> Result<u64>;
}

// ---------------------------------------------------------------------------
// In-memory VFS
// ---------------------------------------------------------------------------

/// Fault-injection knobs for [`MemVfs`].
#[derive(Debug, Default)]
struct FaultState {
    /// Fail every append after this many more bytes have been written
    /// (simulates a full disk / torn write).
    fail_appends_after_bytes: Option<u64>,
    /// Fail every sync.
    fail_syncs: bool,
    /// Bytes appended since fault arming.
    appended: u64,
}

#[derive(Debug, Default)]
struct MemVfsInner {
    files: HashMap<String, Arc<Vec<u8>>>,
    faults: FaultState,
}

/// An in-memory file system.
///
/// All file contents live in a shared map; "finished" files become
/// immutable `Arc<Vec<u8>>` snapshots. Unfinished files are still
/// readable via [`Vfs::read_all`] with their current contents, which is
/// what crash-recovery of a WAL needs.
#[derive(Debug, Default, Clone)]
pub struct MemVfs {
    inner: Arc<Mutex<MemVfsInner>>,
}

impl MemVfs {
    /// Creates an empty in-memory file system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms a fault: appends fail after `bytes` more bytes are written.
    pub fn fail_appends_after(&self, bytes: u64) {
        let mut inner = self.inner.lock();
        inner.faults.fail_appends_after_bytes = Some(bytes);
        inner.faults.appended = 0;
    }

    /// Arms or clears sync failures.
    pub fn set_fail_syncs(&self, fail: bool) {
        self.inner.lock().faults.fail_syncs = fail;
    }

    /// Clears all armed faults.
    pub fn clear_faults(&self) {
        self.inner.lock().faults = FaultState::default();
    }

    /// Drops the tail of a file to `keep` bytes — simulates a crash that
    /// tore the final records off a log.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Io`](crate::ErrorKind) if the file does not exist.
    pub fn truncate(&self, path: &str, keep: usize) -> Result<()> {
        let mut inner = self.inner.lock();
        let file = inner
            .files
            .get_mut(path)
            .ok_or_else(|| Error::io(format!("truncate: no such file {path}")))?;
        let mut contents = file.as_ref().clone();
        contents.truncate(keep);
        *file = Arc::new(contents);
        Ok(())
    }

    /// Total bytes stored across all files.
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().files.values().map(|f| f.len() as u64).sum()
    }

    /// Creates an independent copy-on-write fork of this file system.
    ///
    /// File contents are shared (`Arc`), so forking a preloaded store is
    /// cheap; new writes in either fork create new entries and never
    /// mutate shared contents. Tuning sessions use this to run every
    /// iteration against an identical preloaded database.
    pub fn fork(&self) -> MemVfs {
        let inner = self.inner.lock();
        MemVfs {
            inner: Arc::new(Mutex::new(MemVfsInner {
                files: inner.files.clone(),
                faults: FaultState::default(),
            })),
        }
    }
}

struct MemWritableFile {
    vfs: MemVfs,
    path: String,
    buf: Vec<u8>,
    finished: bool,
}

impl MemWritableFile {
    fn publish(&self) {
        let mut inner = self.vfs.inner.lock();
        inner.files.insert(self.path.clone(), Arc::new(self.buf.clone()));
    }
}

impl WritableFile for MemWritableFile {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        {
            let mut inner = self.vfs.inner.lock();
            if let Some(limit) = inner.faults.fail_appends_after_bytes {
                inner.faults.appended += data.len() as u64;
                if inner.faults.appended > limit {
                    return Err(Error::io("injected append failure (disk full)"));
                }
            }
        }
        self.buf.extend_from_slice(data);
        // The shared view is refreshed on sync/finish/drop rather than on
        // every append (publishing clones the buffer). A dropped-without-
        // finish file still publishes, so crash simulations observe the
        // unsynced tail a real OS would have kept in the page cache.
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        if self.vfs.inner.lock().faults.fail_syncs {
            return Err(Error::io("injected sync failure"));
        }
        self.publish();
        Ok(())
    }

    fn finish(&mut self) -> Result<()> {
        self.finished = true;
        self.publish();
        Ok(())
    }

    fn len(&self) -> u64 {
        self.buf.len() as u64
    }
}

impl Drop for MemWritableFile {
    fn drop(&mut self) {
        if !self.finished {
            // An unfinished file still leaves its bytes behind, like a
            // crashed process would.
            self.publish();
        }
    }
}

struct MemRandomAccessFile {
    contents: Arc<Vec<u8>>,
}

impl RandomAccessFile for MemRandomAccessFile {
    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let start = offset as usize;
        if start > self.contents.len() {
            return Err(Error::io(format!(
                "read past eof: offset {offset} > len {}",
                self.contents.len()
            )));
        }
        let end = (start + len).min(self.contents.len());
        Ok(self.contents[start..end].to_vec())
    }

    fn len(&self) -> u64 {
        self.contents.len() as u64
    }
}

impl Vfs for MemVfs {
    fn create(&self, path: &str) -> Result<Box<dyn WritableFile>> {
        let mut inner = self.inner.lock();
        inner.files.insert(path.to_string(), Arc::new(Vec::new()));
        Ok(Box::new(MemWritableFile {
            vfs: self.clone(),
            path: path.to_string(),
            buf: Vec::new(),
            finished: false,
        }))
    }

    fn open(&self, path: &str) -> Result<Arc<dyn RandomAccessFile>> {
        let inner = self.inner.lock();
        let contents = inner
            .files
            .get(path)
            .cloned()
            .ok_or_else(|| Error::io(format!("open: no such file {path}")))?;
        Ok(Arc::new(MemRandomAccessFile { contents }))
    }

    fn read_all(&self, path: &str) -> Result<Vec<u8>> {
        let inner = self.inner.lock();
        inner
            .files
            .get(path)
            .map(|c| c.as_ref().clone())
            .ok_or_else(|| Error::io(format!("read_all: no such file {path}")))
    }

    fn delete(&self, path: &str) -> Result<()> {
        let mut inner = self.inner.lock();
        inner
            .files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| Error::io(format!("delete: no such file {path}")))
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        let mut inner = self.inner.lock();
        let contents = inner
            .files
            .remove(from)
            .ok_or_else(|| Error::io(format!("rename: no such file {from}")))?;
        inner.files.insert(to.to_string(), contents);
        Ok(())
    }

    fn exists(&self, path: &str) -> bool {
        self.inner.lock().files.contains_key(path)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let inner = self.inner.lock();
        let mut names: Vec<String> = inner
            .files
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        names.sort();
        Ok(names)
    }

    fn file_size(&self, path: &str) -> Result<u64> {
        let inner = self.inner.lock();
        inner
            .files
            .get(path)
            .map(|c| c.len() as u64)
            .ok_or_else(|| Error::io(format!("file_size: no such file {path}")))
    }
}

// ---------------------------------------------------------------------------
// Namespaced view of another VFS
// ---------------------------------------------------------------------------

/// A view of another VFS with every path prefixed.
///
/// Gives each shard of a sharded database its own flat file namespace
/// (`s0_CURRENT`, `s1_CURRENT`, ...) on a single backing store, so one
/// directory (or one [`MemVfs`]) holds all shards and crash/fault
/// injection layers wrap the whole database at once.
#[derive(Clone)]
pub struct NamespaceVfs {
    base: Arc<dyn Vfs>,
    prefix: String,
}

impl NamespaceVfs {
    /// Creates a view of `base` where every path gains `prefix`.
    pub fn new(base: Arc<dyn Vfs>, prefix: impl Into<String>) -> Self {
        NamespaceVfs {
            base,
            prefix: prefix.into(),
        }
    }

    fn full(&self, path: &str) -> String {
        format!("{}{}", self.prefix, path)
    }
}

impl fmt::Debug for NamespaceVfs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NamespaceVfs")
            .field("prefix", &self.prefix)
            .finish_non_exhaustive()
    }
}

impl Vfs for NamespaceVfs {
    fn create(&self, path: &str) -> Result<Box<dyn WritableFile>> {
        self.base.create(&self.full(path))
    }

    fn open(&self, path: &str) -> Result<Arc<dyn RandomAccessFile>> {
        self.base.open(&self.full(path))
    }

    fn read_all(&self, path: &str) -> Result<Vec<u8>> {
        self.base.read_all(&self.full(path))
    }

    fn delete(&self, path: &str) -> Result<()> {
        self.base.delete(&self.full(path))
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.base.rename(&self.full(from), &self.full(to))
    }

    fn exists(&self, path: &str) -> bool {
        self.base.exists(&self.full(path))
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let full = self.full(prefix);
        Ok(self
            .base
            .list(&full)?
            .into_iter()
            .filter_map(|name| name.strip_prefix(&self.prefix).map(String::from))
            .collect())
    }

    fn file_size(&self, path: &str) -> Result<u64> {
        self.base.file_size(&self.full(path))
    }
}

// ---------------------------------------------------------------------------
// Real file system VFS
// ---------------------------------------------------------------------------

/// A [`Vfs`] over a directory of the real file system.
#[derive(Debug, Clone)]
pub struct StdVfs {
    root: PathBuf,
}

impl StdVfs {
    /// Creates a VFS rooted at `root`, creating the directory if needed.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Io`](crate::ErrorKind) if the directory cannot be created.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(StdVfs { root })
    }

    fn full(&self, path: &str) -> PathBuf {
        self.root.join(path)
    }
}

struct StdWritableFile {
    file: std::io::BufWriter<std::fs::File>,
    len: u64,
}

impl WritableFile for StdWritableFile {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.file.write_all(data)?;
        self.len += data.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        Ok(())
    }

    fn finish(&mut self) -> Result<()> {
        self.file.flush()?;
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len
    }
}

struct StdRandomAccessFile {
    file: Mutex<std::fs::File>,
    len: u64,
}

impl RandomAccessFile for StdRandomAccessFile {
    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        if offset > self.len {
            return Err(Error::io(format!(
                "read past eof: offset {offset} > len {}",
                self.len
            )));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        let mut read = 0;
        while read < len {
            let n = file.read(&mut buf[read..])?;
            if n == 0 {
                break;
            }
            read += n;
        }
        buf.truncate(read);
        Ok(buf)
    }

    fn len(&self) -> u64 {
        self.len
    }
}

impl Vfs for StdVfs {
    fn create(&self, path: &str) -> Result<Box<dyn WritableFile>> {
        let file = std::fs::File::create(self.full(path))?;
        Ok(Box::new(StdWritableFile {
            file: std::io::BufWriter::new(file),
            len: 0,
        }))
    }

    fn open(&self, path: &str) -> Result<Arc<dyn RandomAccessFile>> {
        let file = std::fs::File::open(self.full(path))?;
        let len = file.metadata()?.len();
        Ok(Arc::new(StdRandomAccessFile {
            file: Mutex::new(file),
            len,
        }))
    }

    fn read_all(&self, path: &str) -> Result<Vec<u8>> {
        Ok(std::fs::read(self.full(path))?)
    }

    fn delete(&self, path: &str) -> Result<()> {
        std::fs::remove_file(self.full(path))?;
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        std::fs::rename(self.full(from), self.full(to))?;
        Ok(())
    }

    fn exists(&self, path: &str) -> bool {
        self.full(path).exists()
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str() {
                if name.starts_with(prefix) {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn file_size(&self, path: &str) -> Result<u64> {
        Ok(std::fs::metadata(self.full(path))?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(vfs: &dyn Vfs) {
        let mut f = vfs.create("000001.sst").unwrap();
        f.append(b"hello ").unwrap();
        f.append(b"world").unwrap();
        assert_eq!(f.len(), 11);
        f.sync().unwrap();
        f.finish().unwrap();
        drop(f);

        assert!(vfs.exists("000001.sst"));
        assert_eq!(vfs.file_size("000001.sst").unwrap(), 11);
        let r = vfs.open("000001.sst").unwrap();
        assert_eq!(r.read_at(6, 5).unwrap(), b"world");
        assert_eq!(r.read_at(6, 100).unwrap(), b"world", "short read at eof");
        assert!(r.read_at(100, 1).is_err(), "read past eof errors");
        assert_eq!(vfs.read_all("000001.sst").unwrap(), b"hello world");

        vfs.rename("000001.sst", "000002.sst").unwrap();
        assert!(!vfs.exists("000001.sst"));
        assert_eq!(vfs.list("0000").unwrap(), vec!["000002.sst".to_string()]);

        vfs.delete("000002.sst").unwrap();
        assert!(vfs.delete("000002.sst").is_err());
    }

    #[test]
    fn mem_vfs_full_lifecycle() {
        exercise(&MemVfs::new());
    }

    #[test]
    fn std_vfs_full_lifecycle() {
        let dir = std::env::temp_dir().join(format!("lsmkvs-vfs-test-{}", std::process::id()));
        let vfs = StdVfs::new(&dir).unwrap();
        exercise(&vfs);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn namespace_vfs_isolates_and_strips_prefix() {
        let base = Arc::new(MemVfs::new());
        let a = NamespaceVfs::new(Arc::clone(&base) as Arc<dyn Vfs>, "s0_");
        let b = NamespaceVfs::new(Arc::clone(&base) as Arc<dyn Vfs>, "s1_");
        exercise(&a);

        let mut f = a.create("CURRENT").unwrap();
        f.append(b"manifest-1").unwrap();
        f.finish().unwrap();
        assert!(a.exists("CURRENT"));
        assert!(!b.exists("CURRENT"), "namespaces are disjoint");
        assert!(base.exists("s0_CURRENT"), "base sees the prefixed name");
        assert_eq!(a.list("CUR").unwrap(), vec!["CURRENT".to_string()]);
        assert!(b.list("").unwrap().is_empty());
    }

    #[test]
    fn mem_vfs_unfinished_files_keep_bytes() {
        let vfs = MemVfs::new();
        {
            let mut f = vfs.create("wal.log").unwrap();
            f.append(b"record-1").unwrap();
            // dropped without finish(): simulates a crash
        }
        assert_eq!(vfs.read_all("wal.log").unwrap(), b"record-1");
    }

    #[test]
    fn mem_vfs_fault_injection() {
        let vfs = MemVfs::new();
        vfs.fail_appends_after(4);
        let mut f = vfs.create("f").unwrap();
        assert!(f.append(b"1234").is_ok());
        assert!(f.append(b"5").is_err());
        vfs.clear_faults();
        assert!(f.append(b"5").is_ok());

        vfs.set_fail_syncs(true);
        assert!(f.sync().is_err());
    }

    #[test]
    fn mem_vfs_truncate_simulates_torn_writes() {
        let vfs = MemVfs::new();
        let mut f = vfs.create("log").unwrap();
        f.append(b"0123456789").unwrap();
        f.finish().unwrap();
        vfs.truncate("log", 3).unwrap();
        assert_eq!(vfs.read_all("log").unwrap(), b"012");
    }
}
