//! Real-concurrency integration tests: OS writer/reader threads sharing
//! one database on real files, plus property tests for group-commit
//! atomicity and ordering.
//!
//! Everything here runs the wall-clock execution mode (`build_wall` +
//! `StdVfs`), which is where the group-commit write path and the
//! background job pool are live.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;

use hw_sim::HardwareEnv;
use lsm_kvs::options::Options;
use lsm_kvs::vfs::StdVfs;
use lsm_kvs::{Db, ShardedDb, WriteBatch, WriteOptions};

/// Unique scratch directory, removed on drop.
struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "lsm-conc-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        TempDir { path }
    }

    fn as_str(&self) -> String {
        self.path.to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn open_real(dir: &TempDir, opts: Options) -> Db {
    let env = HardwareEnv::builder().build_wall();
    Db::builder(opts).env(&env).vfs(Arc::new(StdVfs::new(dir.as_str()).unwrap())).open().unwrap()
}

fn small_opts() -> Options {
    Options {
        write_buffer_size: 256 << 10,
        target_file_size_base: 256 << 10,
        max_bytes_for_level_base: 1 << 20,
        ..Options::default()
    }
}

#[test]
fn concurrent_writers_and_readers_no_lost_updates() {
    const WRITERS: usize = 4;
    const READERS: usize = 2;
    const PER: usize = 300;

    let dir = TempDir::new("stress");
    let db = open_real(&dir, small_opts());

    let value_of = |t: usize, i: usize| -> Vec<u8> {
        let mut v = vec![0u8; 512];
        v[..8].copy_from_slice(&((t * PER + i) as u64).to_le_bytes());
        v
    };

    std::thread::scope(|scope| {
        for t in 0..WRITERS {
            let db = db.clone();
            scope.spawn(move || {
                for i in 0..PER {
                    let key = format!("stress-{t}-{i:04}");
                    let mut batch = WriteBatch::with_capacity(1);
                    batch.put(key.as_bytes(), &value_of(t, i));
                    // A sprinkle of synced writes keeps the group-commit
                    // leader path and the fast path both exercised.
                    let wo = if i % 64 == 0 {
                        WriteOptions::synced()
                    } else {
                        WriteOptions::default()
                    };
                    db.write_opt(&wo, batch).unwrap();
                }
            });
        }
        for r in 0..READERS {
            let db = db.clone();
            scope.spawn(move || {
                // Readers race the writers: any value observed must be
                // complete (no torn 512-byte payloads).
                for i in 0..PER {
                    let t = (r + i) % WRITERS;
                    let key = format!("stress-{t}-{i:04}");
                    if let Some(v) = db.get(key.as_bytes()).unwrap() {
                        assert_eq!(v, value_of(t, i), "torn read of {key}");
                    }
                }
            });
        }
    });

    // Sequence numbers were handed out contiguously: one per operation.
    assert_eq!(db.stats().last_sequence, (WRITERS * PER) as u64);

    // Every write that was acknowledged is visible: no lost updates.
    for t in 0..WRITERS {
        for i in 0..PER {
            let key = format!("stress-{t}-{i:04}");
            assert_eq!(db.get(key.as_bytes()).unwrap(), Some(value_of(t, i)), "{key}");
        }
    }
}

#[test]
fn batches_are_atomic_under_concurrent_scans() {
    const BATCHES: usize = 400;

    let dir = TempDir::new("atomic");
    let db = open_real(&dir, Options::default());

    std::thread::scope(|scope| {
        let writer = db.clone();
        scope.spawn(move || {
            for v in 0..BATCHES as u64 {
                let mut batch = WriteBatch::with_capacity(2);
                batch.put(b"atomic-a", &v.to_le_bytes());
                batch.put(b"atomic-b", &v.to_le_bytes());
                writer.write_opt(&WriteOptions::default(), batch).unwrap();
            }
        });
        let reader = db.clone();
        scope.spawn(move || {
            for _ in 0..BATCHES {
                // A scan reads at one snapshot; both keys of a batch must
                // carry the same value at every snapshot.
                let entries = reader.scan(b"atomic-", 2).unwrap();
                if entries.len() == 2 {
                    assert_eq!(
                        entries[0].1, entries[1].1,
                        "scan saw a half-applied batch"
                    );
                }
            }
        });
    });

    let last = ((BATCHES - 1) as u64).to_le_bytes().to_vec();
    assert_eq!(db.get(b"atomic-a").unwrap(), Some(last.clone()));
    assert_eq!(db.get(b"atomic-b").unwrap(), Some(last));
}

#[test]
fn recovery_after_drop_with_background_work_in_flight() {
    const KEYS: usize = 1500;

    let dir = TempDir::new("recover");
    let mut opts = small_opts();
    opts.write_buffer_size = 128 << 10;
    {
        let db = open_real(&dir, opts.clone());
        for i in 0..KEYS {
            let key = format!("recover-{i:05}");
            let mut batch = WriteBatch::with_capacity(1);
            batch.put(key.as_bytes(), &[b'r'; 512]);
            db.write_opt(&WriteOptions::default(), batch).unwrap();
        }
        // Drop immediately: flushes/compactions are likely mid-flight.
        // The handle drop joins the worker pool, so every acknowledged
        // write must survive the reopen.
    }
    let db = open_real(&dir, opts);
    for i in 0..KEYS {
        let key = format!("recover-{i:05}");
        assert_eq!(
            db.get(key.as_bytes()).unwrap(),
            Some(vec![b'r'; 512]),
            "{key} lost across reopen"
        );
    }
    assert_eq!(db.stats().last_sequence, KEYS as u64);
}

/// Sharded stress: four writers on disjoint key ranges (one per shard)
/// race a scanner doing cross-shard scans. Within a shard a scan reads at
/// one pinned snapshot, so a marker pair written atomically in one batch
/// must never be observed torn; the full cross-shard scan must always be
/// in strict key order; and after the storm every acknowledged write is
/// present — shards drop nothing while sharing one job budget and cache.
#[test]
fn sharded_disjoint_writers_with_cross_shard_scans() {
    const PER: u32 = 400;
    const PREFIXES: [u8; 4] = [0x00, 0x40, 0x80, 0xc0];

    let dir = TempDir::new("shard-stress");
    let env = HardwareEnv::builder().build_wall();
    let mut opts = small_opts();
    opts.num_shards = 4;
    let db = ShardedDb::builder(opts)
        .env(&env)
        .vfs(Arc::new(StdVfs::new(dir.as_str()).unwrap()))
        .open()
        .unwrap();
    assert_eq!(db.num_shards(), 4);

    let unique_key = |p: u8, i: u32| -> Vec<u8> {
        let mut k = vec![p, 1];
        k.extend_from_slice(&i.to_be_bytes());
        k
    };

    std::thread::scope(|scope| {
        for p in PREFIXES {
            let db = db.clone();
            scope.spawn(move || {
                for i in 0..PER {
                    // One unique key plus an atomic marker pair, all in
                    // this writer's shard, committed as one batch.
                    let mut batch = WriteBatch::with_capacity(3);
                    batch.put(&unique_key(p, i), &i.to_le_bytes());
                    batch.put(&[p, 0, b'a'], &i.to_le_bytes());
                    batch.put(&[p, 0, b'b'], &i.to_le_bytes());
                    db.write(batch).unwrap();
                }
            });
        }
        let scanner = db.clone();
        scope.spawn(move || {
            for _ in 0..150 {
                let got = scanner.scan(b"", usize::MAX).unwrap();
                for w in got.windows(2) {
                    assert!(w[0].0 < w[1].0, "cross-shard scan out of key order");
                }
                for p in PREFIXES {
                    let pair = scanner.scan(&[p, 0], 2).unwrap();
                    if pair.len() == 2 && pair[0].0 == [p, 0, b'a'] && pair[1].0 == [p, 0, b'b'] {
                        assert_eq!(
                            pair[0].1, pair[1].1,
                            "scan snapshot tore an atomic batch in shard of {p:#x}"
                        );
                    }
                }
            }
        });
    });

    // No lost updates, and the facade's scan sees exactly everything.
    for p in PREFIXES {
        for i in 0..PER {
            assert_eq!(
                db.get(&unique_key(p, i)).unwrap(),
                Some(i.to_le_bytes().to_vec()),
                "lost write {p:#x}/{i}"
            );
        }
    }
    let all = db.scan(b"", usize::MAX).unwrap();
    assert_eq!(all.len(), PREFIXES.len() * (PER as usize + 2));

    // Every shard really took part: one writer each, three ops per batch,
    // sequence numbers handed out shard-locally.
    for i in 0..db.num_shards() {
        assert_eq!(
            db.shard(i).stats().last_sequence,
            3 * PER as u64,
            "shard {i} missed writes"
        );
    }
    assert_eq!(db.stats().last_sequence, 3 * PER as u64);
    db.wait_background_idle().unwrap();
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    vec(any::<u8>(), 1..12)
}

fn value_strategy() -> impl Strategy<Value = Vec<u8>> {
    vec(any::<u8>(), 0..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Two threads each submit a sequence of multi-op batches over their
    /// own key namespace. Group commit may interleave batches between the
    /// threads, but within a thread batches must apply fully and in
    /// submission order — so the final database equals each thread's
    /// batches replayed sequentially.
    #[test]
    fn group_committed_batches_apply_atomically_in_order(
        ops_a in vec((key_strategy(), value_strategy()), 1..60),
        ops_b in vec((key_strategy(), value_strategy()), 1..60),
        batch_size in 1usize..7,
    ) {
        let dir = TempDir::new("prop");
        let db = open_real(&dir, Options::default());

        let namespaced = |tag: u8, ops: &[(Vec<u8>, Vec<u8>)]| -> Vec<(Vec<u8>, Vec<u8>)> {
            ops.iter()
                .map(|(k, v)| {
                    let mut key = vec![tag];
                    key.extend_from_slice(k);
                    (key, v.clone())
                })
                .collect()
        };
        let ops_a = namespaced(b'a', &ops_a);
        let ops_b = namespaced(b'b', &ops_b);
        let total = (ops_a.len() + ops_b.len()) as u64;

        std::thread::scope(|scope| {
            for ops in [&ops_a, &ops_b] {
                let db = db.clone();
                scope.spawn(move || {
                    for chunk in ops.chunks(batch_size) {
                        let mut batch = WriteBatch::with_capacity(chunk.len());
                        for (k, v) in chunk {
                            batch.put(k, v);
                        }
                        db.write_opt(&WriteOptions::default(), batch).unwrap();
                    }
                });
            }
        });

        // One sequence number per operation, none skipped or reused.
        prop_assert_eq!(db.stats().last_sequence, total);

        // Last-write-wins per key within each thread's namespace.
        let mut model = std::collections::BTreeMap::new();
        for (k, v) in ops_a.iter().chain(ops_b.iter()) {
            model.insert(k.clone(), v.clone());
        }
        for (k, v) in &model {
            prop_assert_eq!(db.get(k).unwrap().as_ref(), Some(v), "key {:?}", k);
        }
    }
}

/// Regression test for the snapshot consistency bug: `stats()` and
/// `used_bytes()` used to take the shard locks separately, so a reader
/// could observe an insert's byte charge without its counter (or vice
/// versa). [`BlockCache::snapshot`] reads both under one lock pass;
/// with fixed-size blocks the invariant
/// `used_bytes == (inserts - evictions) * charge` must hold on every
/// observation, even mid-storm.
#[test]
fn cache_snapshot_invariant_holds_under_concurrent_inserts() {
    use lsm_kvs::{cache_key, BlockCache, FileNumber};

    // 936-byte blocks are charged 936 + 64 bookkeeping = 1000 bytes.
    const CHARGE: u64 = 1000;
    let cache = Arc::new(BlockCache::new(50 * CHARGE, 2));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    std::thread::scope(|scope| {
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..2_000u64 {
                        let key = cache_key(FileNumber(t + 1), i * 4096);
                        cache.insert(key, Arc::new(vec![0u8; 936]));
                        let _ = cache.get(&key);
                    }
                })
            })
            .collect();
        let checker = {
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut observations = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let snap = cache.snapshot();
                    assert_eq!(
                        snap.used_bytes,
                        (snap.stats.inserts - snap.stats.evictions) * CHARGE,
                        "snapshot caught counters and bytes out of sync \
                         after {observations} observations"
                    );
                    assert!(snap.used_bytes <= snap.capacity);
                    observations += 1;
                }
                observations
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let observations = checker.join().unwrap();
        assert!(observations > 0, "checker never observed a snapshot");
    });

    let final_snap = cache.snapshot();
    assert_eq!(
        final_snap.used_bytes,
        (final_snap.stats.inserts - final_snap.stats.evictions) * CHARGE
    );
    assert!(final_snap.stats.evictions > 0, "capacity forced evictions");
}
