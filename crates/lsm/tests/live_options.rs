//! Live option reconfiguration: `Db::set_options` semantics (atomic
//! batches, immutable rejection by name, listener + ticker + stats
//! surfacing) and torn-read freedom under concurrent traffic, in both
//! execution modes.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use proptest::collection::vec;
use proptest::prelude::*;

use hw_sim::HardwareEnv;
use lsm_kvs::options::Options;
use lsm_kvs::vfs::{MemVfs, StdVfs};
use lsm_kvs::{
    Db, EventListener, KvEngine, OptionsChangedInfo, ShardedDb, Ticker, TICKER_NAMES,
};

/// Unique scratch directory, removed on drop.
struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "lsm-liveopt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        TempDir { path }
    }

    fn as_str(&self) -> String {
        self.path.to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn open_sim(opts: Options) -> Db {
    let env = HardwareEnv::builder().build_sim();
    Db::builder(opts).env(&env).vfs(Arc::new(MemVfs::new())).open().unwrap()
}

#[test]
fn set_options_applies_mutable_batch_without_reopen() {
    let db = open_sim(Options::default());
    db.put(b"k", b"v").unwrap();

    let applied = db
        .set_options(&[("max_background_jobs", "6"), ("write_buffer_size", "128MB")])
        .unwrap();
    assert_eq!(
        applied,
        vec![
            ("max_background_jobs".to_string(), "2".to_string(), "6".to_string()),
            ("write_buffer_size".to_string(), "67108864".to_string(), "134217728".to_string()),
        ]
    );

    let live = db.options();
    assert_eq!(live.max_background_jobs, 6);
    assert_eq!(live.write_buffer_size, 128 << 20);
    // Data written before the change is still there — no reopen happened.
    assert_eq!(db.get(b"k").unwrap(), Some(b"v".to_vec()));
}

#[test]
fn set_options_rejects_immutable_by_name_without_committing() {
    let db = open_sim(Options::default());
    let before = db.options();

    let err = db
        .set_options(&[
            ("max_background_jobs", "6"),       // mutable, but must not land
            ("num_shards", "4"),                // immutable
            ("block_cache_size", "1GB"),        // immutable (alias of cache_size)
        ])
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("num_shards"), "names the option: {msg}");
    assert!(msg.contains("block_cache_size"), "names the option: {msg}");
    assert!(msg.contains("reopen"), "explains the remedy: {msg}");

    // Nothing committed, not even the mutable pair.
    let after = db.options();
    assert_eq!(after.max_background_jobs, before.max_background_jobs);
    assert_eq!(after.block_cache_size, before.block_cache_size);
    assert_eq!(db.stats().tickers.get(Ticker::OptionsChanged), 0);
}

#[test]
fn set_options_aborts_atomically_on_bad_value() {
    let db = open_sim(Options::default());
    let before = db.options();

    // Second pair fails range/cross validation: stop < slowdown.
    let err = db
        .set_options(&[
            ("level0_slowdown_writes_trigger", "30"),
            ("level0_stop_writes_trigger", "10"),
        ])
        .unwrap_err();
    assert!(err.to_string().contains("level0"), "{err}");

    let after = db.options();
    assert_eq!(
        after.level0_slowdown_writes_trigger,
        before.level0_slowdown_writes_trigger
    );
    assert_eq!(after.level0_stop_writes_trigger, before.level0_stop_writes_trigger);
    assert_eq!(db.stats().tickers.get(Ticker::OptionsChanged), 0);
}

#[test]
fn set_options_noop_pairs_apply_nothing() {
    let db = open_sim(Options::default());
    // Equivalent literal for the default: alias + size suffix.
    let applied = db.set_options(&[("write_buffer_size", "64MB")]).unwrap();
    assert!(applied.is_empty());
    assert_eq!(db.stats().tickers.get(Ticker::OptionsChanged), 0);
}

#[derive(Default)]
struct RecordingListener {
    batches: Mutex<Vec<Vec<(String, String, String)>>>,
}

impl EventListener for RecordingListener {
    fn on_options_changed(&self, info: &OptionsChangedInfo) {
        self.batches.lock().unwrap().push(info.changes.clone());
    }
}

#[test]
fn listener_and_ticker_fire_once_per_committed_batch() {
    let listener = Arc::new(RecordingListener::default());
    let env = HardwareEnv::builder().build_sim();
    let db = Db::builder(Options::default())
        .env(&env)
        .vfs(Arc::new(MemVfs::new()))
        .listener(listener.clone())
        .open()
        .unwrap();

    db.set_options(&[("max_background_jobs", "4")]).unwrap();
    db.set_options(&[("write_buffer_size", "32MB"), ("delayed_write_rate", "8MB")])
        .unwrap();
    // Rejected batch must not notify.
    db.set_options(&[("num_shards", "2")]).unwrap_err();
    // No-op batch must not notify.
    db.set_options(&[("max_background_jobs", "4")]).unwrap();

    let batches = listener.batches.lock().unwrap();
    assert_eq!(batches.len(), 2);
    assert_eq!(batches[0].len(), 1);
    assert_eq!(batches[0][0].0, "max_background_jobs");
    assert_eq!(batches[1].len(), 2);
    assert_eq!(db.stats().tickers.get(Ticker::OptionsChanged), 2);
    assert!(TICKER_NAMES.contains(&"options_changed"));
}

#[test]
fn stats_text_reports_live_options_section() {
    let db = open_sim(Options::default());
    let text = db.stats_text();
    assert!(text.contains("** Live options **"), "section always present:\n{text}");
    assert!(text.contains("options_changed: 0"), "{text}");

    db.set_options(&[("max_background_jobs", "6"), ("write_buffer_size", "128MB")])
        .unwrap();
    let text = db.stats_text();
    assert!(text.contains("options_changed: 1"), "{text}");
    assert!(
        text.contains("max_background_jobs: 6 (opened: 2)"),
        "live vs opened delta:\n{text}"
    );
    assert!(
        text.contains("write_buffer_size: 134217728 (opened: 67108864)"),
        "{text}"
    );
}

#[test]
fn sharded_db_applies_to_every_shard_and_rejects_immutable() {
    let env = HardwareEnv::builder().build_sim();
    let opts = Options {
        num_shards: 3,
        ..Options::default()
    };
    let db = ShardedDb::builder(opts).env(&env).vfs(Arc::new(MemVfs::new())).open().unwrap();

    let applied = db.set_options(&[("max_background_jobs", "5")]).unwrap();
    assert_eq!(applied.len(), 1);
    // Each shard ticked once.
    assert_eq!(db.stats().tickers.get(Ticker::OptionsChanged), 3);
    let text = db.stats_text();
    assert!(text.contains("max_background_jobs: 5 (opened: 2)"), "{text}");

    let err = db.set_options(&[("num_shards", "5")]).unwrap_err();
    assert!(err.to_string().contains("num_shards"), "{err}");
}

#[test]
fn kv_engine_default_set_options_is_not_supported() {
    struct Dummy;
    impl KvEngine for Dummy {
        fn put(&self, _k: &[u8], _v: &[u8]) -> lsm_kvs::Result<()> {
            Ok(())
        }
        fn delete(&self, _k: &[u8]) -> lsm_kvs::Result<()> {
            Ok(())
        }
        fn get(&self, _k: &[u8]) -> lsm_kvs::Result<Option<Vec<u8>>> {
            Ok(None)
        }
        fn write_opt(
            &self,
            _o: &lsm_kvs::WriteOptions,
            _b: lsm_kvs::WriteBatch,
        ) -> lsm_kvs::Result<()> {
            Ok(())
        }
        fn scan(&self, _from: &[u8], _limit: usize) -> lsm_kvs::Result<lsm_kvs::ScanResult> {
            Ok(lsm_kvs::ScanResult::new())
        }
        fn flush(&self) -> lsm_kvs::Result<()> {
            Ok(())
        }
        fn wait_background_idle(&self) -> lsm_kvs::Result<()> {
            Ok(())
        }
        fn stats(&self) -> lsm_kvs::DbStats {
            unimplemented!("not needed")
        }
        fn stats_text(&self) -> String {
            String::new()
        }
    }
    let err = Dummy.set_options(&[("max_background_jobs", "4")]).unwrap_err();
    assert!(err.to_string().contains("not support"), "{err}");
}

// ---------------------------------------------------------------------------
// Torn-read freedom
// ---------------------------------------------------------------------------

/// The invariant every observer checks: the level0 trigger pair is only
/// ever changed together (stop = slowdown + 16, the default spacing), so
/// any snapshot showing a different spacing was torn mid-batch.
fn assert_untorn(opts: &Options) {
    assert_eq!(
        opts.level0_stop_writes_trigger - opts.level0_slowdown_writes_trigger,
        16,
        "trigger pair observed torn: slowdown={} stop={}",
        opts.level0_slowdown_writes_trigger,
        opts.level0_stop_writes_trigger
    );
    // write_buffer_size is always a whole number of MiB in this test;
    // a torn u64 would almost surely not be.
    assert_eq!(opts.write_buffer_size % (1 << 20), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sim mode: interleave writes, reads, flushes, and paired
    /// set_options batches; every snapshot between steps must honor the
    /// pair invariant and batches must be all-or-nothing.
    #[test]
    fn sim_interleaving_never_tears_option_batches(
        steps in vec((0u8..4, 1u64..32), 1..40)
    ) {
        let db = open_sim(Options::default());
        assert_untorn(&db.options());
        let mut expected_batches = 0u64;
        for (i, (kind, n)) in steps.iter().enumerate() {
            match kind {
                0 => {
                    let key = format!("k{i}");
                    db.put(key.as_bytes(), &vec![b'v'; *n as usize]).unwrap();
                }
                1 => {
                    let _ = db.get(format!("k{}", i.saturating_sub(1)).as_bytes()).unwrap();
                }
                2 => {
                    db.flush().unwrap();
                }
                _ => {
                    let slowdown = 8 + *n as i64;
                    let stop = slowdown + 16;
                    let wbs = 8 + *n; // MiB
                    let applied = db.set_options(&[
                        ("level0_slowdown_writes_trigger", &slowdown.to_string()),
                        ("level0_stop_writes_trigger", &stop.to_string()),
                        ("write_buffer_size", &format!("{wbs}MB")),
                    ]).unwrap();
                    if !applied.is_empty() {
                        expected_batches += 1;
                    }
                }
            }
            assert_untorn(&db.options());
        }
        prop_assert_eq!(db.stats().tickers.get(Ticker::OptionsChanged), expected_batches);
    }
}

/// Real mode: writer + reader + flusher threads run while the main
/// thread streams paired set_options batches; a sampler thread asserts
/// the invariant on every snapshot it takes.
#[test]
fn real_mode_concurrent_set_options_never_observed_torn() {
    let dir = TempDir::new("torn");
    let env = HardwareEnv::builder().cores(2).build_wall();
    let db = Arc::new(
        Db::builder(Options::default())
            .env(&env)
            .vfs(Arc::new(StdVfs::new(dir.as_str()).unwrap()))
            .open()
            .unwrap(),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let samples = Arc::new(AtomicUsize::new(0));
    let mut threads = Vec::new();

    {
        let db = db.clone();
        let stop = stop.clone();
        threads.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                db.put(format!("w{i}").as_bytes(), b"payload").unwrap();
                i += 1;
            }
        }));
    }
    {
        let db = db.clone();
        let stop = stop.clone();
        threads.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let _ = db.get(format!("w{i}").as_bytes()).unwrap();
                i = (i + 7) % 1000;
            }
        }));
    }
    {
        let db = db.clone();
        let stop = stop.clone();
        threads.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                db.flush().unwrap();
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        }));
    }
    {
        let db = db.clone();
        let stop = stop.clone();
        let samples = samples.clone();
        threads.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                assert_untorn(&db.options());
                samples.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    for round in 0..60i64 {
        let slowdown = 10 + (round % 20);
        let stop_trigger = slowdown + 16;
        let wbs = 16 + (round % 48) as u64;
        db.set_options(&[
            ("level0_slowdown_writes_trigger", &slowdown.to_string()),
            ("level0_stop_writes_trigger", &stop_trigger.to_string()),
            ("write_buffer_size", &format!("{wbs}MB")),
        ])
        .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    stop.store(true, Ordering::Relaxed);
    for t in threads {
        t.join().unwrap();
    }
    assert!(samples.load(Ordering::Relaxed) > 0, "sampler must have observed snapshots");
    assert!(db.stats().tickers.get(Ticker::OptionsChanged) >= 1);
    assert_untorn(&db.options());
}
