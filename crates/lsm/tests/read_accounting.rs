//! Regression tests for read-path accounting on the table-open paths:
//! the metadata re-read branch of `open_table` (counters, histogram,
//! `fill_cache`) and reserve/release pairing of the
//! `MemoryUser::TableCache` budget.

use hw_sim::{HardwareEnv, MemoryUser};
use lsm_kvs::options::Options;
use lsm_kvs::{Db, ReadOptions, Ticker};

fn sim_env() -> HardwareEnv {
    HardwareEnv::builder().build_sim()
}

/// COUNT of the `sst.read.micros` histogram, parsed from the stats dump
/// (the registry itself is not exported).
fn sst_read_count(db: &Db) -> u64 {
    let text = db.stats_text();
    let line = text
        .lines()
        .find(|l| l.contains("sst.read.micros"))
        .expect("stats dump carries sst.read.micros");
    line.split("COUNT : ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .expect("COUNT field parses")
}

/// With `cache_index_and_filter_blocks` on and a block cache too small
/// to hold anything (oversized inserts bypass it), every get on a
/// table-cached reader takes the metadata re-read branch. That branch
/// must account like a cold open: `TableOpens`, `BytesRead`, and an
/// `SstReadMicros` sample per re-read.
#[test]
fn metadata_reread_charges_counters_and_histogram() {
    let opts = Options {
        cache_index_and_filter_blocks: true,
        block_cache_size: 1,
        ..Options::default()
    };
    let db = Db::builder(opts).env(&sim_env()).open().unwrap();
    db.put(b"k1", b"v1").unwrap();
    db.flush().unwrap();
    db.wait_background_idle().unwrap();

    // Cold open.
    db.get(b"k1").unwrap();
    let t1 = db.stats().tickers;
    let c1 = sst_read_count(&db);

    // Reader is in the table cache but the metadata never made it into
    // the (bypassing) block cache: this get re-reads index+filter and
    // one data block.
    db.get(b"k1").unwrap();
    let t2 = db.stats().tickers;
    let d = t2.delta_since(&t1);
    assert_eq!(d.get(Ticker::TableOpens), 1, "re-read counts as a table open");
    assert!(
        d.get(Ticker::BytesRead) >= 4096,
        "re-read charges at least the 4 KiB metadata floor, got {}",
        d.get(Ticker::BytesRead)
    );
    assert_eq!(
        sst_read_count(&db) - c1,
        2,
        "re-read and data block each record an SstReadMicros sample"
    );
}

/// `fill_cache=false` must keep metadata out of the block cache on both
/// the cold-open and re-read paths (matching data blocks), and
/// `fill_cache=true` must re-populate it so later reads stop re-reading.
#[test]
fn metadata_reread_honors_fill_cache() {
    let opts = Options {
        cache_index_and_filter_blocks: true,
        block_cache_size: 1 << 20,
        ..Options::default()
    };
    let db = Db::builder(opts).env(&sim_env()).open().unwrap();
    db.put(b"k1", b"v1").unwrap();
    db.flush().unwrap();
    db.wait_background_idle().unwrap();

    let no_fill = ReadOptions {
        fill_cache: false,
        ..ReadOptions::default()
    };

    // Cold open without filling: nothing may enter the block cache.
    db.get_opt(&no_fill, b"k1").unwrap();
    assert_eq!(db.stats().block_cache.inserts, 0);

    // The metadata is absent, so this is a re-read — still no inserts.
    let t0 = db.stats().tickers;
    db.get_opt(&no_fill, b"k1").unwrap();
    let d = db.stats().tickers.delta_since(&t0);
    assert_eq!(d.get(Ticker::TableOpens), 1, "no-fill read re-reads metadata");
    assert_eq!(db.stats().block_cache.inserts, 0);

    // A filling read re-reads once more and caches metadata + data.
    let t1 = db.stats().tickers;
    db.get(b"k1").unwrap();
    let d = db.stats().tickers.delta_since(&t1);
    assert_eq!(d.get(Ticker::TableOpens), 1);
    assert_eq!(db.stats().block_cache.inserts, 2, "metadata and data block cached");

    // Now everything is resident: no further opens, no further inserts.
    let t2 = db.stats().tickers;
    db.get(b"k1").unwrap();
    let d = db.stats().tickers.delta_since(&t2);
    assert_eq!(d.get(Ticker::TableOpens), 0);
    assert_eq!(db.stats().block_cache.inserts, 2);
}

/// Table-cache reservations must be released when readers leave the
/// cache — capacity eviction or file deletion — so the budget reflects
/// resident readers instead of ratcheting up forever.
#[test]
fn table_cache_reservations_released_on_eviction_and_deletion() {
    let env = sim_env();
    let opts = Options {
        // cache_index_and_filter_blocks stays off (default): metadata is
        // charged to the MemoryUser::TableCache budget.
        max_open_files: 16,
        // Keep all flushed files in L0 so reads churn the table cache.
        level0_file_num_compaction_trigger: 1000,
        level0_slowdown_writes_trigger: 1000,
        level0_stop_writes_trigger: 1000,
        ..Options::default()
    };
    let db = Db::builder(opts).env(&env).open().unwrap();
    let key = |i: u32| format!("key{i:04}").into_bytes();
    for i in 0..24u32 {
        db.put(&key(i), b"value").unwrap();
        db.flush().unwrap();
    }
    db.wait_background_idle().unwrap();

    let used = || env.memory().used_by(MemoryUser::TableCache);
    for i in 0..24u32 {
        db.get(&key(i)).unwrap();
    }
    let u1 = used();
    assert!(u1 > 0, "open readers hold reservations");
    let evictions = db.stats().tickers.get(Ticker::TableCacheEvictions);
    assert!(evictions > 0, "24 files through a 16-reader cache must evict");

    // The same deterministic read pass lands the cache in the same
    // state; without eviction-time releases the budget would grow by
    // every re-opened reader's resident bytes.
    for i in 0..24u32 {
        db.get(&key(i)).unwrap();
    }
    assert_eq!(used(), u1, "steady-state reads must not ratchet the budget");

    // Manually compacting away every input file releases all
    // reservations: the surviving outputs were never opened for reads.
    // (compact_all would be a no-op here — the L0 trigger is parked at
    // 1000 — so drive the manual range path instead.)
    db.compact_range(b"", b"\xff\xff").unwrap();
    db.wait_background_idle().unwrap();
    assert_eq!(used(), 0, "deleting files releases their reservations");
}
