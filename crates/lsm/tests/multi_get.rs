//! Equivalence tests: `multi_get_opt` must return byte-identical results
//! to looping `get_opt` at the same `snapshot_seq`, with entries spread
//! across memtable, immutable memtables, and SSTs, in both sim and real
//! modes, and across shard boundaries on `ShardedDb`.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;

use lsm_kvs::options::Options;
use lsm_kvs::vfs::MemVfs;
use lsm_kvs::{Db, ReadOptions, ShardedDb};

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    vec(any::<u8>(), 1..16)
}

fn value_strategy() -> impl Strategy<Value = Vec<u8>> {
    vec(any::<u8>(), 0..80)
}

/// Small buffers force flush/compaction churn so written entries spread
/// across the memtable, immutable memtables, and several SST levels.
fn churn_opts() -> Options {
    Options {
        write_buffer_size: 8 << 10,
        target_file_size_base: 8 << 10,
        max_bytes_for_level_base: 32 << 10,
        ..Options::default()
    }
}

/// The lookup set mixes never-written keys (misses) with a sample of
/// written keys (hits and tombstoned deletes), plus duplicates.
fn build_lookups(
    random: &[Vec<u8>],
    ops: &[(Vec<u8>, Vec<u8>, bool)],
) -> Vec<Vec<u8>> {
    let mut lookups: Vec<Vec<u8>> = random.to_vec();
    for (i, (k, _, _)) in ops.iter().enumerate() {
        if i % 3 == 0 {
            lookups.push(k.clone());
        }
    }
    if let Some(first) = lookups.first().cloned() {
        lookups.push(first); // at least one duplicate key per batch
    }
    lookups
}

/// Asserts batched == looped at one pinned snapshot, and checks hits
/// against the model where the model is authoritative (snapshot is the
/// latest sequence, so fully-applied ops must be visible).
fn assert_equivalent(db: &Db, lookups: &[Vec<u8>], model: &BTreeMap<Vec<u8>, Option<Vec<u8>>>) {
    let snap = db.snapshot_seq();
    let ropts = ReadOptions {
        snapshot_seq: Some(snap),
        ..ReadOptions::default()
    };
    let batched = db.multi_get_opt(&ropts, lookups).unwrap();
    assert_eq!(batched.len(), lookups.len());
    for (key, got) in lookups.iter().zip(&batched) {
        let looped = db.get_opt(&ropts, key).unwrap();
        assert_eq!(got, &looped, "key {key:?} at snapshot {snap}");
        let expected = model.get(key).cloned().flatten();
        assert_eq!(got, &expected, "key {key:?} vs model");
    }
}

fn apply_ops(db: &Db, ops: &[(Vec<u8>, Vec<u8>, bool)]) -> BTreeMap<Vec<u8>, Option<Vec<u8>>> {
    let mut model = BTreeMap::new();
    for (i, (k, v, is_delete)) in ops.iter().enumerate() {
        if *is_delete {
            db.delete(k).unwrap();
            model.insert(k.clone(), None);
        } else {
            db.put(k, v).unwrap();
            model.insert(k.clone(), Some(v.clone()));
        }
        // A mid-stream flush parks entries in SSTs while later ops stay
        // in the (im)mutable memtables.
        if i == ops.len() / 2 {
            db.flush().unwrap();
        }
    }
    model
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn multi_get_matches_looped_get_sim(
        ops in vec((key_strategy(), value_strategy(), any::<bool>()), 1..150),
        random_lookups in vec(key_strategy(), 1..40),
    ) {
        let env = hw_sim::HardwareEnv::builder().build_sim();
        let db = Db::builder(churn_opts())
            .env(&env)
            .vfs(Arc::new(MemVfs::new()))
            .open()
            .unwrap();
        let model = apply_ops(&db, &ops);
        let lookups = build_lookups(&random_lookups, &ops);
        assert_equivalent(&db, &lookups, &model);
    }

    #[test]
    fn multi_get_matches_looped_get_sharded_sim(
        ops in vec((key_strategy(), value_strategy(), any::<bool>()), 1..150),
        random_lookups in vec(key_strategy(), 1..40),
    ) {
        let env = hw_sim::HardwareEnv::builder().build_sim();
        let mut opts = churn_opts();
        opts.num_shards = 4;
        // Single-byte boundaries put the proptest's arbitrary keys on
        // both sides of every shard edge.
        let db = ShardedDb::builder(opts)
            .env(&env)
            .vfs(Arc::new(MemVfs::new()))
            .split_points(vec![vec![0x40], vec![0x80], vec![0xc0]])
            .open()
            .unwrap();
        let mut model: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for (k, v, is_delete) in &ops {
            if *is_delete {
                db.delete(k).unwrap();
                model.insert(k.clone(), None);
            } else {
                db.put(k, v).unwrap();
                model.insert(k.clone(), Some(v.clone()));
            }
        }
        db.flush().unwrap();
        db.wait_background_idle().unwrap();
        // No explicit snapshot across shards (independent sequence
        // domains); the store is quiesced instead, so looped gets and the
        // batch observe the same state.
        let lookups = build_lookups(&random_lookups, &ops);
        let batched = db.multi_get(&lookups).unwrap();
        prop_assert_eq!(batched.len(), lookups.len());
        for (key, got) in lookups.iter().zip(&batched) {
            let looped = db.get(key).unwrap();
            prop_assert_eq!(got, &looped, "key {:?}", key);
            let expected = model.get(key).cloned().flatten();
            prop_assert_eq!(got, &expected, "key {:?} vs model", key);
        }
    }
}

/// Real (wall-clock) mode: background threads flush and compact while
/// the comparison runs, but both sides read at one pinned snapshot.
#[test]
fn multi_get_matches_looped_get_real_mode() {
    let env = hw_sim::HardwareEnv::builder().build_wall();
    let db = Db::builder(churn_opts())
        .env(&env)
        .vfs(Arc::new(MemVfs::new()))
        .open()
        .unwrap();
    let mut ops = Vec::new();
    for i in 0..800u32 {
        let k = format!("key-{:05}", i * 7 % 1000).into_bytes();
        let v = format!("value-{i}").into_bytes();
        let is_delete = i % 11 == 0;
        ops.push((k, v, is_delete));
    }
    let model = apply_ops(&db, &ops);
    let mut lookups = build_lookups(&[b"missing-low".to_vec(), b"zz-missing-high".to_vec()], &ops);
    lookups.push(b"key-00000".to_vec());
    assert_equivalent(&db, &lookups, &model);
    db.wait_background_idle().unwrap();
    // After full quiesce (everything in SSTs) the answers must not move.
    assert_equivalent(&db, &lookups, &model);
}

/// An explicit snapshot older than some writes: both paths must clamp
/// and filter identically, hiding the newer versions.
#[test]
fn multi_get_honors_old_snapshot() {
    let env = hw_sim::HardwareEnv::builder().build_sim();
    let db = Db::builder(churn_opts())
        .env(&env)
        .vfs(Arc::new(MemVfs::new()))
        .open()
        .unwrap();
    for i in 0..200u32 {
        db.put(format!("k{i:04}").as_bytes(), b"old").unwrap();
    }
    db.flush().unwrap();
    let snap = db.snapshot_seq();
    for i in 0..200u32 {
        if i % 2 == 0 {
            db.put(format!("k{i:04}").as_bytes(), b"new").unwrap();
        } else {
            db.delete(format!("k{i:04}").as_bytes()).unwrap();
        }
    }
    let ropts = ReadOptions {
        snapshot_seq: Some(snap),
        ..ReadOptions::default()
    };
    let lookups: Vec<Vec<u8>> =
        (0..200u32).map(|i| format!("k{i:04}").into_bytes()).collect();
    let batched = db.multi_get_opt(&ropts, &lookups).unwrap();
    for (key, got) in lookups.iter().zip(&batched) {
        assert_eq!(got.as_deref(), Some(&b"old"[..]), "key {key:?}");
        assert_eq!(got, &db.get_opt(&ropts, key).unwrap());
    }
}

/// Ticker accounting: one batch bumps MultiGetBatches once and
/// MultiGetKeys by the batch size, and the histogram records a sample.
#[test]
fn multi_get_ticks_stats() {
    let env = hw_sim::HardwareEnv::builder().build_sim();
    let db = Db::builder(Options::default())
        .env(&env)
        .vfs(Arc::new(MemVfs::new()))
        .open()
        .unwrap();
    db.put(b"a", b"1").unwrap();
    db.put(b"b", b"2").unwrap();
    let _ = db.multi_get(&[b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]).unwrap();
    let t = db.stats().tickers;
    assert_eq!(t.get(lsm_kvs::Ticker::MultiGetBatches), 1);
    assert_eq!(t.get(lsm_kvs::Ticker::MultiGetKeys), 3);
    let text = db.stats_text();
    assert!(text.contains("rocksdb.db.multiget.micros"), "{text}");
    assert!(text.contains("Cumulative reads:"), "{text}");
}
