//! Property-based tests for the storage engine's core invariants.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::collection::{btree_map, vec};
use proptest::prelude::*;

use lsm_kvs::options::{CompressionType, Options};
use lsm_kvs::sstable::block::{Block, BlockBuilder};
use lsm_kvs::sstable::compress;
use lsm_kvs::vfs::{MemVfs, Vfs};
use lsm_kvs::{Db, InternalKey, MemTable, MemTableGet, ValueType, WriteBatch};

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    vec(any::<u8>(), 1..24)
}

fn value_strategy() -> impl Strategy<Value = Vec<u8>> {
    vec(any::<u8>(), 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn block_roundtrips_sorted_entries(entries in btree_map(key_strategy(), value_strategy(), 1..200)) {
        let mut builder = BlockBuilder::new(16);
        let mut expected = Vec::new();
        for (i, (k, v)) in entries.iter().enumerate() {
            let ik = InternalKey::new(k, (entries.len() - i) as u64, ValueType::Value);
            builder.add(ik.encoded(), v);
            expected.push((ik.encoded().to_vec(), v.clone()));
        }
        let block = Block::parse(builder.finish()).unwrap();
        let mut it = block.iter();
        let mut got = Vec::new();
        while it.advance().unwrap() {
            got.push((it.key().to_vec(), it.value().to_vec()));
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn block_seek_finds_every_present_key(entries in btree_map(key_strategy(), value_strategy(), 1..100)) {
        let mut builder = BlockBuilder::new(4);
        let keys: Vec<_> = entries.keys().cloned().collect();
        for (i, (k, v)) in entries.iter().enumerate() {
            let ik = InternalKey::new(k, (entries.len() - i) as u64, ValueType::Value);
            builder.add(ik.encoded(), v);
        }
        let block = Block::parse(builder.finish()).unwrap();
        for k in &keys {
            let target = lsm_kvs::InternalKey::new(k, u64::MAX >> 8, ValueType::Value);
            let (found_key, found_value) = block.seek(target.encoded()).unwrap().expect("present");
            let ik = InternalKey::decode(&found_key).unwrap();
            prop_assert_eq!(ik.user_key(), k.as_slice());
            prop_assert_eq!(&found_value, entries.get(k).unwrap());
        }
    }

    #[test]
    fn compression_roundtrips_arbitrary_bytes(data in vec(any::<u8>(), 0..4096), ty_idx in 0usize..3) {
        let ty = [CompressionType::Snappy, CompressionType::Lz4, CompressionType::Zstd][ty_idx];
        if let Some(compressed) = compress::compress(ty, &data) {
            let restored = compress::decompress(&compressed).unwrap();
            prop_assert_eq!(restored, data);
        }
    }

    #[test]
    fn memtable_matches_model(ops in vec((key_strategy(), value_strategy(), any::<bool>()), 1..200)) {
        let mut mt = MemTable::new(0);
        let mut model: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for (seq, (k, v, is_delete)) in ops.iter().enumerate() {
            if *is_delete {
                mt.add((seq + 1) as u64, ValueType::Deletion, k, b"");
                model.insert(k.clone(), None);
            } else {
                mt.add((seq + 1) as u64, ValueType::Value, k, v);
                model.insert(k.clone(), Some(v.clone()));
            }
        }
        for (k, expected) in &model {
            let got = mt.get(k, u64::MAX >> 8);
            match expected {
                Some(v) => prop_assert_eq!(got, MemTableGet::Found(v.clone())),
                None => prop_assert_eq!(got, MemTableGet::Deleted),
            }
        }
    }

    #[test]
    fn wal_replay_is_prefix_closed(records in vec(vec(any::<u8>(), 0..100), 1..30), cut in any::<u16>()) {
        let vfs = MemVfs::new();
        let mut writer = lsm_kvs::wal::WalWriter::new(vfs.create("wal").unwrap());
        for r in &records {
            writer.add_record(r).unwrap();
        }
        writer.sync().unwrap();
        let full = vfs.read_all("wal").unwrap();
        let cut = (cut as usize) % (full.len() + 1);
        let replay = lsm_kvs::wal::replay_wal(&full[..cut], false).unwrap();
        // Replayed records must be an exact prefix of what was written.
        prop_assert!(replay.records.len() <= records.len());
        for (got, want) in replay.records.iter().zip(records.iter()) {
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn options_roundtrip_via_ini(
        wbs in (65_536u64..1u64 << 30),
        jobs in 1i64..64,
        bloom in 0.0f64..40.0,
        style in 0usize..3,
    ) {
        let mut opts = Options {
            write_buffer_size: wbs,
            max_background_jobs: jobs,
            bloom_filter_bits_per_key: (bloom * 2.0).round() / 2.0,
            ..Options::default()
        };
        opts.set_by_name("compaction_style", ["level", "universal", "fifo"][style]).unwrap();
        let ini = lsm_kvs::options::ini::to_ini(&opts);
        let (parsed, outcome) = lsm_kvs::options::ini::from_ini(&ini).unwrap();
        prop_assert_eq!(parsed, opts);
        prop_assert!(outcome.rejected.is_empty());
    }
}

proptest! {
    // The full-engine model check is heavier; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn db_matches_model_across_crash(
        ops in vec((vec(any::<u8>(), 1..12), vec(any::<u8>(), 0..60), any::<bool>()), 1..160),
        crash_at in any::<u16>(),
    ) {
        let env = hw_sim::HardwareEnv::builder().build_sim();
        let opts = Options {
            write_buffer_size: 16 << 10, // force flush/compaction churn
            target_file_size_base: 16 << 10,
            max_bytes_for_level_base: 64 << 10,
            ..Options::default()
        };

        let vfs = Arc::new(MemVfs::new());
        let mut model: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        let crash_at = (crash_at as usize) % ops.len();
        {
            let db = Db::builder(opts.clone()).env(&env).vfs(vfs.clone()).open().unwrap();
            for (k, v, is_delete) in &ops[..crash_at] {
                let mut batch = WriteBatch::new();
                if *is_delete {
                    batch.delete(k);
                    model.insert(k.clone(), None);
                } else {
                    batch.put(k, v);
                    model.insert(k.clone(), Some(v.clone()));
                }
                db.write(batch).unwrap();
            }
            // Crash: drop without shutdown.
        }
        let db = Db::builder(opts).env(&env).vfs(vfs).open().unwrap();
        for (k, v, is_delete) in &ops[crash_at..] {
            if *is_delete {
                db.delete(k).unwrap();
                model.insert(k.clone(), None);
            } else {
                db.put(k, v).unwrap();
                model.insert(k.clone(), Some(v.clone()));
            }
        }
        for (k, expected) in &model {
            prop_assert_eq!(&db.get(k).unwrap(), expected, "key {:?}", k);
        }
        // Scans agree with the model's live view, in order.
        let live: Vec<(Vec<u8>, Vec<u8>)> = model
            .iter()
            .filter_map(|(k, v)| v.clone().map(|v| (k.clone(), v)))
            .collect();
        let scanned = db.scan(b"", live.len() + 10).unwrap();
        prop_assert_eq!(scanned, live);
    }
}
