//! Crash-recovery harness: power cuts, torn WAL tails, and injected error
//! bursts driven through [`FaultInjectionVfs`], verifying the engine's
//! acknowledged-write contract:
//!
//! - a write acknowledged with `WriteOptions { sync: true }` is never lost;
//! - an unacknowledged (or unsynced) write either survives whole or
//!   vanishes whole — recovery never surfaces corruption or a value that
//!   was never written;
//! - reopening after any crash point of the last WAL record succeeds,
//!   recovering exactly the acked prefix.

use std::collections::BTreeMap;
use std::sync::Arc;

use hw_sim::HardwareEnv;
use lsm_kvs::options::Options;
use lsm_kvs::{
    Db, FaultConfig, FaultInjectionVfs, KvEngine, MemVfs, ShardedDb, TearStyle, Vfs, WriteBatch,
    WriteOptions,
};

/// xorshift64* — deterministic randomness for the harness.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn chance(&mut self, p: f64) -> bool {
        ((self.next() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

fn sim_env() -> HardwareEnv {
    HardwareEnv::builder().build_sim()
}

fn crash_opts() -> Options {
    Options {
        // Small buffers so flushes, compactions, and WAL GC all run under
        // fault injection.
        write_buffer_size: 16 << 10,
        ..Options::default()
    }
}

fn put_opt<E: KvEngine + ?Sized>(db: &E, key: &[u8], value: &[u8], sync: bool) -> lsm_kvs::Result<()> {
    let mut batch = WriteBatch::new();
    batch.put(key, value);
    db.write_opt(&WriteOptions { sync }, batch)
}

fn delete_opt<E: KvEngine + ?Sized>(db: &E, key: &[u8], sync: bool) -> lsm_kvs::Result<()> {
    let mut batch = WriteBatch::new();
    batch.delete(key);
    db.write_opt(&WriteOptions { sync }, batch)
}

/// Per-key attempt history: `(value-or-tombstone, synced-and-acked)`.
type History = BTreeMap<Vec<u8>, Vec<(Option<Vec<u8>>, bool)>>;

/// Checks one recovered value against the durability contract.
///
/// WAL replay recovers a *prefix* of the write sequence that contains at
/// least every synced-acknowledged record, so the recovered value for a key
/// must stem from its last synced-acked attempt or any later attempt. A key
/// with no synced ack may also have lost everything.
fn assert_recovered(key: &[u8], hist: &[(Option<Vec<u8>>, bool)], got: &Option<Vec<u8>>) {
    let last_ack = hist.iter().rposition(|(_, acked)| *acked);
    let candidates: Vec<&Option<Vec<u8>>> = match last_ack {
        Some(j) => hist[j..].iter().map(|(v, _)| v).collect(),
        None => hist.iter().map(|(v, _)| v).collect(),
    };
    let ok = candidates.contains(&got) || (last_ack.is_none() && got.is_none());
    assert!(
        ok,
        "key {:?}: recovered {:?}, but valid outcomes were {:?} (last synced ack at {:?})",
        String::from_utf8_lossy(key),
        got.as_ref().map(|v| String::from_utf8_lossy(v).into_owned()),
        candidates,
        last_ack,
    );
}

/// Reopen after *every* cut point inside the final WAL record: the acked
/// prefix must survive byte-for-byte and the torn tail must be dropped
/// cleanly — never an error, never a phantom value.
#[test]
fn wal_cut_point_sweep_preserves_acked_prefix() {
    let vfs = MemVfs::new();
    let db = Db::builder(Options::default())
        .env(&sim_env())
        .vfs(Arc::new(vfs.clone()))
        .open()
        .unwrap();
    for i in 0..5 {
        put_opt(&db, format!("acked-{i}").as_bytes(), b"stable", true).unwrap();
    }
    let wal_name = {
        let logs: Vec<String> = vfs
            .list("")
            .unwrap()
            .into_iter()
            .filter(|f| f.ends_with(".log"))
            .collect();
        assert_eq!(logs.len(), 1, "expected exactly one live WAL, got {logs:?}");
        logs.into_iter().next().unwrap()
    };
    let before = vfs.file_size(&wal_name).unwrap() as usize;
    put_opt(&db, b"tail-key", b"tail-value", true).unwrap();
    let after = vfs.file_size(&wal_name).unwrap() as usize;
    drop(db);

    assert!(after > before);
    for cut in before..=after {
        let fork = fork_with_truncated_wal(&vfs, &wal_name, cut);
        let db = Db::builder(Options::default())
            .env(&sim_env())
            .vfs(Arc::new(fork))
            .open()
            .unwrap_or_else(|e| panic!("reopen failed at cut {cut}: {e}"));
        for i in 0..5 {
            assert_eq!(
                db.get(format!("acked-{i}").as_bytes()).unwrap().as_deref(),
                Some(b"stable".as_slice()),
                "acked key lost at cut {cut}"
            );
        }
        let tail = db.get(b"tail-key").unwrap();
        if cut == after {
            assert_eq!(tail.as_deref(), Some(b"tail-value".as_slice()));
        } else {
            assert_eq!(tail, None, "torn record resurfaced at cut {cut}");
        }
    }
}

fn fork_with_truncated_wal(vfs: &MemVfs, wal: &str, keep: usize) -> MemVfs {
    let fork = vfs.fork();
    fork.truncate(wal, keep).unwrap();
    fork
}

/// The core harness: >100 randomized crash cycles in simulation mode.
/// Each cycle opens the database through the fault layer, runs a random
/// workload (mixed synced/unsynced puts and deletes) under randomly armed
/// error injection, then crashes it — clean power cut, torn-tail power
/// cut, or plain process kill — and the next cycle verifies every key
/// against the durability contract.
#[test]
fn randomized_crash_cycles_sim() {
    let mut rng = Rng::new(0xC0FF_EE00_DEAD_BEEF);
    let fault = FaultInjectionVfs::wrap(Arc::new(MemVfs::new()));
    let mut history: History = BTreeMap::new();
    let mut cycles_with_faults = 0u32;

    for cycle in 0..120u64 {
        fault.clear_faults();
        assert!(!fault.is_powered_off());
        let db = Db::builder(crash_opts())
            .env(&sim_env())
            .vfs(Arc::new(fault.clone()))
            .open()
            .unwrap_or_else(|e| panic!("cycle {cycle}: clean reopen failed: {e}"));

        // Verify everything recovered from the previous cycle's crash.
        for (key, hist) in &history {
            let got = db
                .get(key)
                .unwrap_or_else(|e| panic!("cycle {cycle}: fault-free get failed: {e}"));
            assert_recovered(key, hist, &got);
        }

        // Arm faults for roughly half the cycles.
        if rng.chance(0.5) {
            cycles_with_faults += 1;
            fault.set_config(FaultConfig {
                write_error_prob: 0.02,
                sync_error_prob: 0.02,
                metadata_error_prob: 0.01,
                errors_are_retryable: rng.chance(0.7),
                ..FaultConfig::default()
            });
            if rng.chance(0.3) {
                fault.fail_after_ops(rng.below(20));
            }
        }

        // Random workload. Writes may fail — a failed attempt is recorded
        // as unacked and may still legally surface after recovery (its WAL
        // frame can ride a later sync).
        let ops = 10 + rng.below(40);
        for _ in 0..ops {
            let key = format!("key-{:03}", rng.below(150)).into_bytes();
            let sync = rng.chance(0.3);
            let entry = if rng.chance(0.1) {
                let res = delete_opt(&db, &key, sync);
                (None, res.is_ok() && sync)
            } else {
                let value = format!("v{}-{}", cycle, rng.below(1_000_000))
                    .repeat(1 + rng.below(4) as usize)
                    .into_bytes();
                let res = put_opt(&db, &key, &value, sync);
                (Some(value), res.is_ok() && sync)
            };
            history.entry(key).or_default().push(entry);
        }

        // Crash.
        match rng.below(5) {
            0 => {
                // Plain process kill: page cache (unsynced tails) survives.
                drop(db);
            }
            1 | 2 => {
                fault.power_off();
                drop(db);
                fault.reboot(TearStyle::DropUnsynced);
            }
            _ => {
                fault.power_off();
                drop(db);
                fault.reboot(TearStyle::TearTail { seed: rng.next() });
            }
        }
    }
    assert!(cycles_with_faults > 20, "fault arming never triggered");
    assert!(!history.is_empty());
}

/// The randomized crash harness against a 4-shard [`ShardedDb`]: every
/// shard shares one fault layer, so a power cut tears all four WALs at
/// once, and every cycle must recover each shard to a legal state. Keys
/// spread uniformly over the shard boundaries, so routing, the SHARDS
/// marker, and per-shard WAL replay all run under fire.
#[test]
fn sharded_randomized_crash_cycles_sim() {
    let mut rng = Rng::new(0x5AAD_ED00_C0DE_CAFE);
    let fault = FaultInjectionVfs::wrap(Arc::new(MemVfs::new()));
    let mut history: History = BTreeMap::new();
    let mut opts = crash_opts();
    opts.num_shards = 4;

    for cycle in 0..50u64 {
        fault.clear_faults();
        let db = ShardedDb::builder(opts.clone())
            .env(&sim_env())
            .vfs(Arc::new(fault.clone()))
            .open()
            .unwrap_or_else(|e| panic!("cycle {cycle}: sharded reopen failed: {e}"));

        for (key, hist) in &history {
            let got = db
                .get(key)
                .unwrap_or_else(|e| panic!("cycle {cycle}: fault-free get failed: {e}"));
            assert_recovered(key, hist, &got);
        }

        if rng.chance(0.5) {
            fault.set_config(FaultConfig {
                write_error_prob: 0.02,
                sync_error_prob: 0.02,
                metadata_error_prob: 0.01,
                errors_are_retryable: rng.chance(0.7),
                ..FaultConfig::default()
            });
            if rng.chance(0.3) {
                fault.fail_after_ops(rng.below(20));
            }
        }

        let ops = 10 + rng.below(40);
        for _ in 0..ops {
            // First byte uniform over [0, 256) so every shard gets traffic.
            let mut key = vec![rng.below(256) as u8];
            key.extend_from_slice(format!("k{:02}", rng.below(40)).as_bytes());
            let sync = rng.chance(0.3);
            let entry = if rng.chance(0.1) {
                let res = delete_opt(&db, &key, sync);
                (None, res.is_ok() && sync)
            } else {
                let value = format!("s{}-{}", cycle, rng.below(1_000_000)).into_bytes();
                let res = put_opt(&db, &key, &value, sync);
                (Some(value), res.is_ok() && sync)
            };
            history.entry(key).or_default().push(entry);
        }

        match rng.below(5) {
            0 => drop(db),
            1 | 2 => {
                fault.power_off();
                drop(db);
                fault.reboot(TearStyle::DropUnsynced);
            }
            _ => {
                fault.power_off();
                drop(db);
                fault.reboot(TearStyle::TearTail { seed: rng.next() });
            }
        }
    }
    assert!(!history.is_empty());
}

/// A one-shot retryable error burst on the WAL must be absorbed by the
/// rotate-and-retry path: the caller retries, the engine rotates to a
/// fresh WAL, and everything acknowledged survives the next power cut.
#[test]
fn error_burst_rotates_wal_and_preserves_acks() {
    let fault = FaultInjectionVfs::wrap(Arc::new(MemVfs::new()));
    let db = Db::builder(Options::default())
        .env(&sim_env())
        .vfs(Arc::new(fault.clone()))
        .open()
        .unwrap();

    let mut acked = Vec::new();
    for i in 0..50u32 {
        if i == 10 {
            // The next faultable op (the WAL append) fails once, retryably.
            fault.fail_after_ops(0);
        }
        let key = format!("burst-{i:02}").into_bytes();
        let mut attempts = 0;
        loop {
            match put_opt(&db, &key, b"burst-value", true) {
                Ok(()) => break,
                Err(e) => {
                    assert!(e.is_retryable(), "injected burst error must be retryable: {e}");
                    attempts += 1;
                    assert!(attempts < 5, "retry did not converge");
                }
            }
        }
        acked.push(key);
    }
    assert!(fault.injected_errors() >= 1);
    assert!(
        db.stats().wal_rotations >= 1,
        "retryable WAL append error should rotate the log"
    );

    fault.power_off();
    drop(db);
    fault.reboot(TearStyle::DropUnsynced);
    fault.clear_faults();

    let db = Db::builder(Options::default())
        .env(&sim_env())
        .vfs(Arc::new(fault.clone()))
        .open()
        .unwrap();
    for key in &acked {
        assert_eq!(
            db.get(key).unwrap().as_deref(),
            Some(b"burst-value".as_slice()),
            "acked key {} lost after rotation + power cut",
            String::from_utf8_lossy(key)
        );
    }
}

/// Torn-tail reboots with many different tear seeds: whatever prefix of
/// the un-synced tail lands on media, reopen must succeed and synced
/// writes must survive.
#[test]
fn torn_tail_residue_never_corrupts() {
    for seed in 1..=25u64 {
        let fault = FaultInjectionVfs::wrap(Arc::new(MemVfs::new()));
        let db = Db::builder(Options::default())
            .env(&sim_env())
            .vfs(Arc::new(fault.clone()))
            .open()
            .unwrap();
        for i in 0..8 {
            put_opt(&db, format!("durable-{i}").as_bytes(), b"yes", true).unwrap();
        }
        // A pile of unsynced writes forms the tail that gets torn.
        for i in 0..20 {
            put_opt(&db, format!("volatile-{i}").as_bytes(), b"maybe", false).unwrap();
        }
        fault.power_off();
        drop(db);
        fault.reboot(TearStyle::TearTail { seed });

        let db = Db::builder(Options::default())
            .env(&sim_env())
            .vfs(Arc::new(fault.clone()))
            .open()
            .unwrap_or_else(|e| panic!("seed {seed}: reopen failed: {e}"));
        for i in 0..8 {
            assert_eq!(
                db.get(format!("durable-{i}").as_bytes()).unwrap().as_deref(),
                Some(b"yes".as_slice()),
                "seed {seed}: synced write lost"
            );
        }
        for i in 0..20 {
            let got = db.get(format!("volatile-{i}").as_bytes()).unwrap();
            assert!(
                got.is_none() || got.as_deref() == Some(b"maybe".as_slice()),
                "seed {seed}: torn write surfaced garbage: {got:?}"
            );
        }
    }
}

/// Real-concurrency mode (wall clock, group commit, background pool):
/// synced group commits must survive a power cut, cycle after cycle.
#[test]
fn real_mode_power_cut_preserves_synced_groups() {
    let mut rng = Rng::new(0xFEED_FACE_CAFE_F00D);
    let fault = FaultInjectionVfs::wrap(Arc::new(MemVfs::new()));
    let mut history: History = BTreeMap::new();

    for cycle in 0..4u64 {
        let env = HardwareEnv::builder().build_wall();
        let db = Db::builder(crash_opts())
            .env(&env)
            .vfs(Arc::new(fault.clone()))
            .open()
            .unwrap_or_else(|e| panic!("cycle {cycle}: reopen failed: {e}"));
        for (key, hist) in &history {
            let got = db.get(key).unwrap();
            assert_recovered(key, hist, &got);
        }
        for i in 0..60u64 {
            let key = format!("rk-{:03}", rng.below(80)).into_bytes();
            let value = format!("rc{cycle}-{i}").into_bytes();
            let sync = rng.chance(0.4);
            let res = put_opt(&db, &key, &value, sync);
            history
                .entry(key)
                .or_default()
                .push((Some(value), res.is_ok() && sync));
        }
        fault.power_off();
        drop(db);
        fault.reboot(if rng.chance(0.5) {
            TearStyle::DropUnsynced
        } else {
            TearStyle::TearTail { seed: rng.next() }
        });
    }
}
