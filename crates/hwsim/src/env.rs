//! The bundled hardware environment a storage engine runs on.

use std::sync::Arc;

use crate::cpu::CpuPool;
use crate::device::{Device, DeviceModel};
use crate::memory::MemoryBudget;
use crate::time::Clock;

/// A complete simulated machine: clock, CPU pool, storage device, and
/// memory budget.
///
/// Cloneable handles (`Arc`s) to each component are shared with the engine
/// and the workload driver. The paper's hardware matrix (§5.1) is covered
/// by [`HardwareEnv::builder`] with 2/4 cores, 4/8 GiB, and NVMe/HDD
/// devices.
///
/// # Examples
///
/// ```
/// use hw_sim::{DeviceModel, HardwareEnv};
///
/// let env = HardwareEnv::builder()
///     .cores(4)
///     .memory_gib(4)
///     .device(DeviceModel::nvme_ssd())
///     .build_sim();
/// assert_eq!(env.cpu().num_cores(), 4);
/// assert!(env.clock().is_sim());
/// ```
#[derive(Debug, Clone)]
pub struct HardwareEnv {
    clock: Arc<Clock>,
    cpu: Arc<CpuPool>,
    device: Arc<Device>,
    memory: Arc<MemoryBudget>,
    description: String,
}

impl HardwareEnv {
    /// Starts building an environment. Defaults: 4 cores, 8 GiB, NVMe SSD.
    pub fn builder() -> HardwareEnvBuilder {
        HardwareEnvBuilder::default()
    }

    /// The shared clock.
    pub fn clock(&self) -> &Arc<Clock> {
        &self.clock
    }

    /// The CPU pool backing background jobs.
    pub fn cpu(&self) -> &Arc<CpuPool> {
        &self.cpu
    }

    /// The storage device.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// The memory budget.
    pub fn memory(&self) -> &Arc<MemoryBudget> {
        &self.memory
    }

    /// One-line human description, e.g. `"4 cores / 4 GiB / NVMe SSD"`.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Resets device queues, CPU cores, and memory tracking (not the
    /// clock) between benchmark iterations.
    pub fn reset_usage(&self) {
        self.device.reset();
        self.cpu.reset();
        self.memory.reset();
    }
}

/// Builder for [`HardwareEnv`]. See [`HardwareEnv::builder`].
#[derive(Debug)]
pub struct HardwareEnvBuilder {
    cores: usize,
    memory_bytes: u64,
    device: DeviceModel,
}

impl Default for HardwareEnvBuilder {
    fn default() -> Self {
        HardwareEnvBuilder {
            cores: 4,
            memory_bytes: 8 << 30,
            device: DeviceModel::nvme_ssd(),
        }
    }
}

impl HardwareEnvBuilder {
    /// Sets the number of CPU cores.
    pub fn cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Sets RAM in gibibytes.
    pub fn memory_gib(mut self, gib: u64) -> Self {
        self.memory_bytes = gib << 30;
        self
    }

    /// Sets RAM in bytes.
    pub fn memory_bytes(mut self, bytes: u64) -> Self {
        self.memory_bytes = bytes;
        self
    }

    /// Sets the storage device model.
    pub fn device(mut self, device: DeviceModel) -> Self {
        self.device = device;
        self
    }

    /// Builds the environment with a virtual (simulated) clock.
    pub fn build_sim(self) -> HardwareEnv {
        self.build_with_clock(Clock::sim())
    }

    /// Builds the environment with a wall clock (real-time mode).
    pub fn build_wall(self) -> HardwareEnv {
        self.build_with_clock(Clock::wall())
    }

    fn build_with_clock(self, clock: Clock) -> HardwareEnv {
        let description = format!(
            "{} cores / {} GiB / {}",
            self.cores,
            self.memory_bytes >> 30,
            self.device.class
        );
        HardwareEnv {
            clock: Arc::new(clock),
            cpu: Arc::new(CpuPool::new(self.cores)),
            device: Arc::new(Device::new(self.device)),
            memory: Arc::new(MemoryBudget::new(self.memory_bytes)),
            description,
        }
    }
}

/// The 2x2 hardware matrix evaluated in the paper's Tables 1 and 2
/// ({2,4} cores x {4,8} GiB), on the given device.
pub fn paper_hardware_matrix(device: DeviceModel) -> Vec<HardwareEnv> {
    let mut envs = Vec::new();
    for &cores in &[2usize, 4] {
        for &gib in &[4u64, 8] {
            envs.push(
                HardwareEnv::builder()
                    .cores(cores)
                    .memory_gib(gib)
                    .device(device.clone())
                    .build_sim(),
            );
        }
    }
    envs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_described_env() {
        let env = HardwareEnv::builder()
            .cores(2)
            .memory_gib(4)
            .device(DeviceModel::sata_hdd())
            .build_sim();
        assert_eq!(env.description(), "2 cores / 4 GiB / SATA HDD");
        assert_eq!(env.memory().total(), 4 << 30);
    }

    #[test]
    fn paper_matrix_has_four_configs() {
        let envs = paper_hardware_matrix(DeviceModel::nvme_ssd());
        assert_eq!(envs.len(), 4);
        let descs: Vec<_> = envs.iter().map(|e| e.description().to_string()).collect();
        assert!(descs.contains(&"2 cores / 4 GiB / NVMe SSD".to_string()));
        assert!(descs.contains(&"4 cores / 8 GiB / NVMe SSD".to_string()));
    }

    #[test]
    fn reset_usage_clears_components() {
        use crate::device::AccessPattern;
        use crate::memory::MemoryUser;
        use crate::time::{SimDuration, SimTime};
        let env = HardwareEnv::builder().build_sim();
        env.device().submit_read(SimTime::ZERO, 100, AccessPattern::Random);
        env.cpu().run(SimTime::ZERO, SimDuration::from_secs(1));
        env.memory().reserve(MemoryUser::Misc, 100);
        env.reset_usage();
        assert_eq!(env.device().counters().reads, 0);
        assert_eq!(env.memory().used(), 0);
    }
}
