//! Memory budget model.
//!
//! Tracks how much RAM the storage engine has reserved (memtables, block
//! cache, table cache, pinned blocks). Reservations beyond a pressure
//! threshold translate into a *thrash penalty factor* that the engine
//! applies to operation costs — the simulated analogue of a box that has
//! started swapping. This is what teaches the tuner to respect the memory
//! budget mentioned in the prompt (paper §5.2, "the total memory budget is
//! maintained in Iteration 1").

use parking_lot::Mutex;

/// Categories of engine memory usage, for monitor breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryUser {
    /// Active and immutable memtables.
    Memtables,
    /// Block cache contents.
    BlockCache,
    /// Table-reader metadata (index/filter blocks, fd cache).
    TableCache,
    /// Everything else (WAL buffers, scratch space).
    Misc,
}

const NUM_USERS: usize = 4;

fn user_index(user: MemoryUser) -> usize {
    match user {
        MemoryUser::Memtables => 0,
        MemoryUser::BlockCache => 1,
        MemoryUser::TableCache => 2,
        MemoryUser::Misc => 3,
    }
}

#[derive(Debug, Default)]
struct MemState {
    used: [u64; NUM_USERS],
    peak: u64,
}

/// A fixed RAM budget with per-category usage tracking.
///
/// # Examples
///
/// ```
/// use hw_sim::{MemoryBudget, MemoryUser};
///
/// let mem = MemoryBudget::gib(4);
/// mem.reserve(MemoryUser::BlockCache, 512 << 20);
/// assert_eq!(mem.used(), 512 << 20);
/// assert!(mem.penalty_factor() < 1.01, "well under budget: no thrash");
/// ```
#[derive(Debug)]
pub struct MemoryBudget {
    total: u64,
    /// Fraction of `total` the OS and other processes keep for themselves.
    os_reserved_fraction: f64,
    state: Mutex<MemState>,
}

impl MemoryBudget {
    /// Creates a budget of `total` bytes, with a default 12% OS reserve.
    pub fn new(total: u64) -> Self {
        MemoryBudget {
            total,
            os_reserved_fraction: 0.12,
            state: Mutex::new(MemState::default()),
        }
    }

    /// Convenience constructor for a budget of `gib` gibibytes.
    pub fn gib(gib: u64) -> Self {
        Self::new(gib << 30)
    }

    /// Total physical RAM in bytes.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// RAM realistically available to the engine (total minus OS reserve).
    pub fn available_to_engine(&self) -> u64 {
        (self.total as f64 * (1.0 - self.os_reserved_fraction)) as u64
    }

    /// Records `bytes` of additional usage by `user`. Reservations always
    /// succeed — overcommit shows up as a growing [`penalty_factor`]
    /// rather than an error, mirroring how a real box degrades.
    ///
    /// [`penalty_factor`]: MemoryBudget::penalty_factor
    pub fn reserve(&self, user: MemoryUser, bytes: u64) {
        let mut st = self.state.lock();
        st.used[user_index(user)] = st.used[user_index(user)].saturating_add(bytes);
        let total: u64 = st.used.iter().sum();
        st.peak = st.peak.max(total);
    }

    /// Releases `bytes` of usage by `user`, saturating at zero.
    pub fn release(&self, user: MemoryUser, bytes: u64) {
        let mut st = self.state.lock();
        st.used[user_index(user)] = st.used[user_index(user)].saturating_sub(bytes);
    }

    /// Sets the absolute usage of `user` (useful for caches that know
    /// their exact occupancy).
    pub fn set_usage(&self, user: MemoryUser, bytes: u64) {
        let mut st = self.state.lock();
        st.used[user_index(user)] = bytes;
        let total: u64 = st.used.iter().sum();
        st.peak = st.peak.max(total);
    }

    /// Current total engine usage in bytes.
    pub fn used(&self) -> u64 {
        self.state.lock().used.iter().sum()
    }

    /// Usage attributed to one category.
    pub fn used_by(&self, user: MemoryUser) -> u64 {
        self.state.lock().used[user_index(user)]
    }

    /// Peak total usage observed.
    pub fn peak(&self) -> u64 {
        self.state.lock().peak
    }

    /// Usage as a fraction of engine-available RAM.
    pub fn pressure(&self) -> f64 {
        self.used() as f64 / self.available_to_engine().max(1) as f64
    }

    /// Multiplier the engine applies to operation costs.
    ///
    /// 1.0 while pressure is below 90% of the engine-available budget;
    /// beyond that it grows steeply (up to 16x at 2x overcommit) to model
    /// swap thrash.
    pub fn penalty_factor(&self) -> f64 {
        let p = self.pressure();
        if p <= 0.9 {
            1.0
        } else {
            // 0.9 -> 1.0, 1.0 -> ~2.4, 1.5 -> ~9.3, capped at 16.
            (1.0 + (p - 0.9) * 14.0).min(16.0)
        }
    }

    /// Clears all usage and peak tracking.
    pub fn reset(&self) {
        let mut st = self.state.lock();
        *st = MemState::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release_balance() {
        let mem = MemoryBudget::gib(1);
        mem.reserve(MemoryUser::Memtables, 100);
        mem.reserve(MemoryUser::BlockCache, 50);
        assert_eq!(mem.used(), 150);
        mem.release(MemoryUser::Memtables, 100);
        assert_eq!(mem.used(), 50);
        mem.release(MemoryUser::BlockCache, 500);
        assert_eq!(mem.used(), 0, "release saturates at zero");
    }

    #[test]
    fn penalty_kicks_in_over_budget() {
        let mem = MemoryBudget::gib(4);
        assert_eq!(mem.penalty_factor(), 1.0);
        mem.set_usage(MemoryUser::BlockCache, mem.available_to_engine());
        assert!(mem.penalty_factor() > 2.0);
        mem.set_usage(MemoryUser::BlockCache, 3 * mem.available_to_engine());
        assert_eq!(mem.penalty_factor(), 16.0, "penalty is capped");
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mem = MemoryBudget::gib(1);
        mem.reserve(MemoryUser::Misc, 1000);
        mem.release(MemoryUser::Misc, 1000);
        assert_eq!(mem.peak(), 1000);
        assert_eq!(mem.used(), 0);
    }

    #[test]
    fn available_excludes_os_reserve() {
        let mem = MemoryBudget::gib(4);
        assert!(mem.available_to_engine() < mem.total());
        assert!(mem.available_to_engine() > mem.total() / 2);
    }

    #[test]
    fn reset_clears_everything() {
        let mem = MemoryBudget::gib(1);
        mem.reserve(MemoryUser::TableCache, 1 << 20);
        mem.reset();
        assert_eq!(mem.used(), 0);
        assert_eq!(mem.peak(), 0);
    }
}
