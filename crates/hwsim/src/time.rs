//! Simulated time primitives.
//!
//! All simulation state in this crate is expressed in nanoseconds on a
//! virtual timeline. [`SimTime`] is an instant on that timeline and
//! [`SimDuration`] a span between instants. Both are thin newtypes over
//! `u64` so arithmetic stays cheap while the type system keeps instants
//! and spans from being confused.

use std::fmt;

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// An instant on the virtual timeline, in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use hw_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(5);
/// assert_eq!(t.as_nanos(), 5_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use hw_sim::SimDuration;
///
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros_f64(), 2_500.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the virtual timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Returns the instant as nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as (fractional) seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of `self` and `other`.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, saturating on overflow or
    /// negative input.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 || !secs.is_finite() {
            return SimDuration(0);
        }
        SimDuration((secs * 1e9).round().min(u64::MAX as f64) as u64)
    }

    /// Returns the span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the span as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Scales the span by `factor`, saturating at the representable range.
    ///
    /// Used for memory-pressure and contention penalty multipliers.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Returns the larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Saturating subtraction of two spans.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

/// A monotone clock shared between a workload driver and the components it
/// drives.
///
/// In simulation mode the driver owns the timeline: it positions the clock
/// at a client thread's virtual time before issuing an operation, the
/// component [`advance`](Clock::advance)s it by the operation's modeled
/// cost, and the driver reads the new position afterwards. In wall mode the
/// clock reflects real elapsed time and `advance`/`advance_to` are no-ops.
#[derive(Debug)]
pub struct Clock {
    mode: ClockMode,
}

#[derive(Debug)]
enum ClockMode {
    /// Virtual time, explicitly driven.
    Sim(AtomicU64),
    /// Wall-clock time measured from construction.
    Wall(Instant),
}

impl Clock {
    /// Creates a virtual clock positioned at time zero.
    pub fn sim() -> Self {
        Clock {
            mode: ClockMode::Sim(AtomicU64::new(0)),
        }
    }

    /// Creates a wall clock whose origin is "now".
    pub fn wall() -> Self {
        Clock {
            mode: ClockMode::Wall(Instant::now()),
        }
    }

    /// Returns `true` when this is a virtual (simulated) clock.
    pub fn is_sim(&self) -> bool {
        matches!(self.mode, ClockMode::Sim(_))
    }

    /// Returns the current position of the clock.
    pub fn now(&self) -> SimTime {
        match &self.mode {
            ClockMode::Sim(t) => SimTime(t.load(Ordering::Acquire)),
            ClockMode::Wall(base) => SimTime(base.elapsed().as_nanos() as u64),
        }
    }

    /// Moves a virtual clock forward by `d`. No-op for wall clocks.
    pub fn advance(&self, d: SimDuration) {
        if let ClockMode::Sim(t) = &self.mode {
            t.fetch_add(d.0, Ordering::AcqRel);
        }
    }

    /// Moves a virtual clock forward to `target` if `target` is later than
    /// the current position. No-op for wall clocks.
    pub fn advance_to(&self, target: SimTime) {
        if let ClockMode::Sim(t) = &self.mode {
            t.fetch_max(target.0, Ordering::AcqRel);
        }
    }

    /// Positions a virtual clock at exactly `target` (which may move it
    /// backwards between independent client timelines). No-op for wall
    /// clocks.
    pub fn set(&self, target: SimTime) {
        if let ClockMode::Sim(t) = &self.mode {
            t.store(target.0, Ordering::Release);
        }
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::sim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_convert_between_units() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_secs(3).as_nanos(), 3_000_000_000);
        assert!((SimDuration::from_secs_f64(0.5).as_secs_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic_saturates() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(30);
        assert_eq!((a - b), SimDuration::ZERO);
        assert_eq!((b - a).as_nanos(), 20);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn sim_clock_advances_and_sets() {
        let c = Clock::sim();
        assert!(c.is_sim());
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(SimDuration::from_micros(7));
        assert_eq!(c.now().as_nanos(), 7_000);
        c.advance_to(SimTime::from_nanos(5_000));
        assert_eq!(c.now().as_nanos(), 7_000, "advance_to never rewinds");
        c.advance_to(SimTime::from_nanos(9_000));
        assert_eq!(c.now().as_nanos(), 9_000);
        c.set(SimTime::from_nanos(100));
        assert_eq!(c.now().as_nanos(), 100, "set may rewind");
    }

    #[test]
    fn wall_clock_is_monotone_and_ignores_advance() {
        let c = Clock::wall();
        assert!(!c.is_sim());
        let t0 = c.now();
        c.advance(SimDuration::from_secs(1000));
        let t1 = c.now();
        assert!(t1.as_nanos() < t0.as_nanos() + 1_000_000_000);
        assert!(t1 >= t0);
    }

    #[test]
    fn display_picks_reasonable_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.00us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.00ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_micros(100);
        assert_eq!(d.mul_f64(2.0).as_nanos(), 200_000);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }
}
