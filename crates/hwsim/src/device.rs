//! Storage device models.
//!
//! A [`DeviceModel`] describes the performance envelope of a block device
//! (bandwidth, IOPS, access latency, seek behaviour, queue parallelism).
//! A [`Device`] couples a model with mutable queue state: submitted I/O
//! occupies one of a fixed number of channels, so concurrent requests
//! serialize on an HDD (one channel) but overlap on an NVMe SSD (many
//! channels). All submissions are accounted in [`IoCounters`] for
//! monitoring and prompt generation.

use std::fmt;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// The kind of access an I/O request performs, used for cost modeling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Contiguous with the device head / previous request on this stream.
    Sequential,
    /// Requires a seek (HDD) or a fresh NAND lookup (SSD).
    Random,
}

/// Broad device class, used by tuning heuristics ("is this rotational?").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// NVMe-attached solid state drive.
    NvmeSsd,
    /// SATA-attached solid state drive.
    SataSsd,
    /// SATA-attached rotational hard drive.
    SataHdd,
}

impl DeviceClass {
    /// Returns `true` for rotational media.
    pub fn is_rotational(self) -> bool {
        matches!(self, DeviceClass::SataHdd)
    }

    /// Human-readable label matching what an OS probe would report.
    pub fn label(self) -> &'static str {
        match self {
            DeviceClass::NvmeSsd => "NVMe SSD",
            DeviceClass::SataSsd => "SATA SSD",
            DeviceClass::SataHdd => "SATA HDD",
        }
    }
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Immutable performance description of a storage device.
///
/// Cost functions combine a base per-request latency, a transfer time at
/// the pattern-appropriate bandwidth, and (for rotational media and random
/// access) a seek penalty.
///
/// # Examples
///
/// ```
/// use hw_sim::{AccessPattern, DeviceModel};
///
/// let hdd = DeviceModel::sata_hdd();
/// let ssd = DeviceModel::nvme_ssd();
/// let hdd_cost = hdd.read_cost(4096, AccessPattern::Random);
/// let ssd_cost = ssd.read_cost(4096, AccessPattern::Random);
/// assert!(hdd_cost.as_nanos() > 50 * ssd_cost.as_nanos());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Device class, reported by monitors and used by heuristics.
    pub class: DeviceClass,
    /// Marketing-style name reported by probes.
    pub name: String,
    /// Sequential read bandwidth in bytes/second.
    pub seq_read_bps: u64,
    /// Sequential write bandwidth in bytes/second.
    pub seq_write_bps: u64,
    /// Random read bandwidth in bytes/second (post-latency transfer rate).
    pub rand_read_bps: u64,
    /// Random write bandwidth in bytes/second.
    pub rand_write_bps: u64,
    /// Base latency added to every request.
    pub access_latency: SimDuration,
    /// Average seek penalty for random access (zero for SSDs).
    pub seek_penalty: SimDuration,
    /// Cost of a durability barrier (fsync / FUA write).
    pub sync_latency: SimDuration,
    /// Number of requests the device services concurrently.
    pub channels: usize,
}

impl DeviceModel {
    /// A modern datacenter NVMe SSD (~3 GB/s reads, deep queues).
    pub fn nvme_ssd() -> Self {
        DeviceModel {
            class: DeviceClass::NvmeSsd,
            name: "SimNVMe P5520 1.6TB".to_string(),
            seq_read_bps: 3_000_000_000,
            seq_write_bps: 2_000_000_000,
            rand_read_bps: 1_200_000_000,
            rand_write_bps: 900_000_000,
            access_latency: SimDuration::from_micros(70),
            seek_penalty: SimDuration::ZERO,
            sync_latency: SimDuration::from_micros(20),
            channels: 16,
        }
    }

    /// A SATA SSD (~500 MB/s, shallow queue).
    pub fn sata_ssd() -> Self {
        DeviceModel {
            class: DeviceClass::SataSsd,
            name: "SimSATA 860 1TB".to_string(),
            seq_read_bps: 540_000_000,
            seq_write_bps: 500_000_000,
            rand_read_bps: 300_000_000,
            rand_write_bps: 250_000_000,
            access_latency: SimDuration::from_micros(120),
            seek_penalty: SimDuration::ZERO,
            sync_latency: SimDuration::from_micros(300),
            channels: 8,
        }
    }

    /// A 7200rpm SATA HDD (~160 MB/s sequential, ~6 ms average seek).
    pub fn sata_hdd() -> Self {
        DeviceModel {
            class: DeviceClass::SataHdd,
            name: "SimHDD 7200rpm 4TB".to_string(),
            seq_read_bps: 170_000_000,
            seq_write_bps: 160_000_000,
            rand_read_bps: 150_000_000,
            rand_write_bps: 140_000_000,
            access_latency: SimDuration::from_micros(100),
            seek_penalty: SimDuration::from_micros(6_000),
            sync_latency: SimDuration::from_millis(4),
            channels: 1,
        }
    }

    /// Service time of a read of `len` bytes with the given access pattern,
    /// excluding queueing delay.
    pub fn read_cost(&self, len: u64, pattern: AccessPattern) -> SimDuration {
        self.transfer_cost(len, pattern, self.seq_read_bps, self.rand_read_bps)
    }

    /// Service time of a write of `len` bytes with the given access
    /// pattern, excluding queueing delay.
    pub fn write_cost(&self, len: u64, pattern: AccessPattern) -> SimDuration {
        self.transfer_cost(len, pattern, self.seq_write_bps, self.rand_write_bps)
    }

    /// Service time of a durability barrier.
    pub fn sync_cost(&self) -> SimDuration {
        self.sync_latency
    }

    fn transfer_cost(
        &self,
        len: u64,
        pattern: AccessPattern,
        seq_bps: u64,
        rand_bps: u64,
    ) -> SimDuration {
        let (bps, seek) = match pattern {
            AccessPattern::Sequential => (seq_bps, SimDuration::ZERO),
            AccessPattern::Random => (rand_bps, self.seek_penalty),
        };
        let transfer = SimDuration::from_secs_f64(len as f64 / bps.max(1) as f64);
        self.access_latency + seek + transfer
    }
}

/// Cumulative I/O accounting for a device, in the spirit of
/// `/proc/diskstats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoCounters {
    /// Completed read requests.
    pub reads: u64,
    /// Completed write requests.
    pub writes: u64,
    /// Completed durability barriers.
    pub syncs: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Total device busy time across all channels.
    pub busy: SimDurationCounter,
}

/// Serializable nanosecond counter used inside [`IoCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimDurationCounter(pub u64);

impl SimDurationCounter {
    fn add(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.as_nanos());
    }

    /// The accumulated busy time.
    pub fn as_duration(self) -> SimDuration {
        SimDuration::from_nanos(self.0)
    }
}

#[derive(Debug)]
struct DeviceState {
    channels: Vec<SimTime>,
    counters: IoCounters,
}

/// A storage device: an immutable [`DeviceModel`] plus queue state.
///
/// [`Device::submit_read`], [`submit_write`](Device::submit_write) and
/// [`submit_sync`](Device::submit_sync) take the submission instant and
/// return the completion instant, after queueing on the earliest-available
/// channel. Because queue state mutates, the device is internally locked
/// and safe to share behind an `Arc`.
#[derive(Debug)]
pub struct Device {
    model: DeviceModel,
    state: Mutex<DeviceState>,
}

impl Device {
    /// Creates an idle device from a model.
    pub fn new(model: DeviceModel) -> Self {
        let channels = vec![SimTime::ZERO; model.channels.max(1)];
        Device {
            model,
            state: Mutex::new(DeviceState {
                channels,
                counters: IoCounters::default(),
            }),
        }
    }

    /// The device's performance model.
    pub fn model(&self) -> &DeviceModel {
        &self.model
    }

    /// Submits a read and returns its completion time.
    pub fn submit_read(&self, now: SimTime, len: u64, pattern: AccessPattern) -> SimTime {
        let cost = self.model.read_cost(len, pattern);
        let mut st = self.state.lock();
        st.counters.reads += 1;
        st.counters.read_bytes += len;
        Self::enqueue(&mut st, now, cost)
    }

    /// Submits a write and returns its completion time.
    pub fn submit_write(&self, now: SimTime, len: u64, pattern: AccessPattern) -> SimTime {
        let cost = self.model.write_cost(len, pattern);
        let mut st = self.state.lock();
        st.counters.writes += 1;
        st.counters.write_bytes += len;
        Self::enqueue(&mut st, now, cost)
    }

    /// Submits a durability barrier and returns its completion time.
    pub fn submit_sync(&self, now: SimTime) -> SimTime {
        let cost = self.model.sync_cost();
        let mut st = self.state.lock();
        st.counters.syncs += 1;
        Self::enqueue(&mut st, now, cost)
    }

    /// Snapshot of cumulative I/O counters.
    pub fn counters(&self) -> IoCounters {
        self.state.lock().counters
    }

    /// Resets queue state and counters (used between benchmark iterations).
    pub fn reset(&self) {
        let mut st = self.state.lock();
        for c in st.channels.iter_mut() {
            *c = SimTime::ZERO;
        }
        st.counters = IoCounters::default();
    }

    fn enqueue(st: &mut DeviceState, now: SimTime, cost: SimDuration) -> SimTime {
        let ch = st
            .channels
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, _)| i)
            .expect("device has at least one channel");
        let start = st.channels[ch].max(now);
        let done = start + cost;
        st.channels[ch] = done;
        st.counters.busy.add(cost);
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdd_random_reads_pay_seek() {
        let hdd = DeviceModel::sata_hdd();
        let seq = hdd.read_cost(4096, AccessPattern::Sequential);
        let rand = hdd.read_cost(4096, AccessPattern::Random);
        assert!(rand.as_nanos() >= seq.as_nanos() + hdd.seek_penalty.as_nanos());
    }

    #[test]
    fn nvme_random_reads_have_no_seek() {
        let ssd = DeviceModel::nvme_ssd();
        assert_eq!(ssd.seek_penalty, SimDuration::ZERO);
        let rand = ssd.read_cost(4096, AccessPattern::Random);
        // ~70us latency + ~3.4us transfer
        assert!(rand.as_nanos() < 100_000);
    }

    #[test]
    fn larger_transfers_cost_more() {
        let ssd = DeviceModel::nvme_ssd();
        let small = ssd.write_cost(4 << 10, AccessPattern::Sequential);
        let big = ssd.write_cost(4 << 20, AccessPattern::Sequential);
        assert!(big > small);
    }

    #[test]
    fn single_channel_serializes_requests() {
        let dev = Device::new(DeviceModel::sata_hdd());
        let t0 = SimTime::ZERO;
        let c1 = dev.submit_read(t0, 4096, AccessPattern::Random);
        let c2 = dev.submit_read(t0, 4096, AccessPattern::Random);
        assert!(c2 > c1, "second request queues behind the first");
    }

    #[test]
    fn multi_channel_overlaps_requests() {
        let dev = Device::new(DeviceModel::nvme_ssd());
        let t0 = SimTime::ZERO;
        let c1 = dev.submit_read(t0, 4096, AccessPattern::Random);
        let c2 = dev.submit_read(t0, 4096, AccessPattern::Random);
        assert_eq!(c1, c2, "channels service requests in parallel");
    }

    #[test]
    fn counters_accumulate() {
        let dev = Device::new(DeviceModel::nvme_ssd());
        dev.submit_read(SimTime::ZERO, 100, AccessPattern::Sequential);
        dev.submit_write(SimTime::ZERO, 200, AccessPattern::Sequential);
        dev.submit_sync(SimTime::ZERO);
        let c = dev.counters();
        assert_eq!((c.reads, c.writes, c.syncs), (1, 1, 1));
        assert_eq!((c.read_bytes, c.write_bytes), (100, 200));
        assert!(c.busy.as_duration() > SimDuration::ZERO);
        dev.reset();
        assert_eq!(dev.counters(), IoCounters::default());
    }

    #[test]
    fn idle_device_starts_requests_at_submission_time() {
        let dev = Device::new(DeviceModel::nvme_ssd());
        let now = SimTime::from_nanos(5_000_000);
        let done = dev.submit_sync(now);
        assert_eq!(done, now + dev.model().sync_cost());
    }
}
