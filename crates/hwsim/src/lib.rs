//! # hw-sim — deterministic hardware simulation for storage experiments
//!
//! This crate models the *machine* a storage engine runs on: a virtual
//! [`Clock`], a storage [`Device`] with per-channel queueing, a [`CpuPool`]
//! for background jobs, and a [`MemoryBudget`] with thrash penalties. It is
//! the substitution, in this reproduction of the ELMo-Tune paper
//! (HotStorage '24), for the physical 2/4-core, 4/8-GiB, NVMe/HDD Docker
//! hosts of the original evaluation.
//!
//! Everything is driven by explicit virtual timestamps, so experiments are
//! deterministic and orders of magnitude faster than wall time, while
//! preserving the qualitative trade-offs a tuner must learn: HDDs punish
//! random I/O, fewer cores serialize compactions, and over-committed RAM
//! thrashes.
//!
//! ## Example
//!
//! ```
//! use hw_sim::{AccessPattern, DeviceModel, HardwareEnv, SimTime};
//!
//! let env = HardwareEnv::builder()
//!     .cores(2)
//!     .memory_gib(4)
//!     .device(DeviceModel::sata_hdd())
//!     .build_sim();
//!
//! // A random read on the HDD completes milliseconds later in virtual time.
//! let done = env.device().submit_read(SimTime::ZERO, 4096, AccessPattern::Random);
//! assert!(done.as_nanos() > 1_000_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cpu;
mod device;
mod env;
mod memory;
mod monitor;
mod time;

pub use cpu::{CpuCounters, CpuPool, CpuSlot};
pub use device::{AccessPattern, Device, DeviceClass, DeviceModel, IoCounters, SimDurationCounter};
pub use env::{paper_hardware_matrix, HardwareEnv, HardwareEnvBuilder};
pub use memory::{MemoryBudget, MemoryUser};
pub use monitor::{DeviceProbe, SystemSnapshot, UtilizationSample};
pub use time::{Clock, SimDuration, SimTime};
