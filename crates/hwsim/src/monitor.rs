//! System monitoring: the simulated analogues of `psutil` and `fio`.
//!
//! ELMo-Tune's prompt generator (paper §4.2) collects system information
//! "e.g., via psutil and fio" and interlaces it into the prompt. These
//! helpers render the same kind of information from a [`HardwareEnv`]:
//! [`SystemSnapshot`] is the psutil-style live view, and [`DeviceProbe`]
//! is the fio-style device capability summary.

use serde::{Deserialize, Serialize};

use crate::device::{AccessPattern, DeviceClass, IoCounters};
use crate::env::HardwareEnv;
use crate::time::SimTime;

/// A psutil-style point-in-time view of the machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSnapshot {
    /// Instant the snapshot was taken.
    pub taken_at_nanos: u64,
    /// Logical CPU cores.
    pub cpu_cores: usize,
    /// Average CPU utilization since start, percent.
    pub cpu_util_percent: f64,
    /// Total RAM bytes.
    pub mem_total: u64,
    /// RAM used by the engine, bytes.
    pub mem_used: u64,
    /// Memory pressure as a fraction of the engine-available budget.
    pub mem_pressure: f64,
    /// Device class label.
    pub device_class: DeviceClass,
    /// Device marketing name.
    pub device_name: String,
    /// Cumulative I/O counters.
    pub io: IoCounters,
}

impl SystemSnapshot {
    /// Captures a snapshot of `env` at its current clock position.
    pub fn capture(env: &HardwareEnv) -> Self {
        let now = env.clock().now();
        SystemSnapshot {
            taken_at_nanos: now.as_nanos(),
            cpu_cores: env.cpu().num_cores(),
            cpu_util_percent: env.cpu().utilization_percent(now),
            mem_total: env.memory().total(),
            mem_used: env.memory().used(),
            mem_pressure: env.memory().pressure(),
            device_class: env.device().model().class,
            device_name: env.device().model().name.clone(),
            io: env.device().counters(),
        }
    }

    /// Renders the snapshot as the plain-text block a prompt embeds.
    pub fn to_prompt_text(&self) -> String {
        let busy = self.io.busy.as_duration();
        format!(
            "CPU: {} logical cores, {:.1}% average utilization\n\
             Memory: {:.2} GiB total, {:.2} GiB used by the store ({:.0}% of usable budget)\n\
             Storage: {} ({})\n\
             I/O since start: {} reads ({:.1} MiB), {} writes ({:.1} MiB), {} syncs, device busy {}",
            self.cpu_cores,
            self.cpu_util_percent,
            self.mem_total as f64 / (1u64 << 30) as f64,
            self.mem_used as f64 / (1u64 << 30) as f64,
            self.mem_pressure * 100.0,
            self.device_name,
            self.device_class,
            self.io.reads,
            self.io.read_bytes as f64 / (1u64 << 20) as f64,
            self.io.writes,
            self.io.write_bytes as f64 / (1u64 << 20) as f64,
            self.io.syncs,
            busy,
        )
    }
}

/// An fio-style capability probe of the environment's device.
///
/// Unlike [`SystemSnapshot`] this does not reflect load; it reports what
/// the device *can* do, derived by querying the cost model exactly the way
/// a short fio run would measure it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProbe {
    /// Device class.
    pub class: DeviceClass,
    /// Device marketing name.
    pub name: String,
    /// Sequential read bandwidth, MiB/s, from a 1 MiB transfer.
    pub seq_read_mibps: f64,
    /// Sequential write bandwidth, MiB/s.
    pub seq_write_mibps: f64,
    /// 4 KiB random read IOPS.
    pub rand_read_4k_iops: f64,
    /// 4 KiB random write IOPS.
    pub rand_write_4k_iops: f64,
    /// fsync latency in microseconds.
    pub sync_latency_us: f64,
}

impl DeviceProbe {
    /// Probes the device in `env`.
    pub fn run(env: &HardwareEnv) -> Self {
        let model = env.device().model();
        const MIB: u64 = 1 << 20;
        const FOUR_K: u64 = 4 << 10;
        let seq_read = model.read_cost(MIB, AccessPattern::Sequential).as_secs_f64();
        let seq_write = model.write_cost(MIB, AccessPattern::Sequential).as_secs_f64();
        let rr = model.read_cost(FOUR_K, AccessPattern::Random).as_secs_f64();
        let rw = model.write_cost(FOUR_K, AccessPattern::Random).as_secs_f64();
        DeviceProbe {
            class: model.class,
            name: model.name.clone(),
            seq_read_mibps: 1.0 / seq_read,
            seq_write_mibps: 1.0 / seq_write,
            rand_read_4k_iops: 1.0 / rr,
            rand_write_4k_iops: 1.0 / rw,
            sync_latency_us: model.sync_cost().as_micros_f64(),
        }
    }

    /// Renders the probe as the fio-like text block a prompt embeds.
    pub fn to_prompt_text(&self) -> String {
        format!(
            "fio probe of {} ({}):\n\
             - sequential read : {:.0} MiB/s\n\
             - sequential write: {:.0} MiB/s\n\
             - random read 4k  : {:.0} IOPS\n\
             - random write 4k : {:.0} IOPS\n\
             - fsync latency   : {:.0} us\n\
             - rotational      : {}",
            self.name,
            self.class,
            self.seq_read_mibps,
            self.seq_write_mibps,
            self.rand_read_4k_iops,
            self.rand_write_4k_iops,
            self.sync_latency_us,
            if self.class.is_rotational() { "yes" } else { "no" },
        )
    }
}

/// A periodic utilization sample recorded by a benchmark monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSample {
    /// Sample instant.
    pub at_nanos: u64,
    /// Operations completed since the previous sample.
    pub ops_since_last: u64,
    /// CPU utilization percent at the sample instant.
    pub cpu_util_percent: f64,
    /// Memory pressure at the sample instant.
    pub mem_pressure: f64,
}

impl UtilizationSample {
    /// Builds a sample at `now` for an interval that completed
    /// `ops_since_last` operations.
    pub fn capture(env: &HardwareEnv, now: SimTime, ops_since_last: u64) -> Self {
        UtilizationSample {
            at_nanos: now.as_nanos(),
            ops_since_last,
            cpu_util_percent: env.cpu().utilization_percent(now),
            mem_pressure: env.memory().pressure(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceModel;

    fn env() -> HardwareEnv {
        HardwareEnv::builder()
            .cores(2)
            .memory_gib(4)
            .device(DeviceModel::sata_hdd())
            .build_sim()
    }

    #[test]
    fn snapshot_reports_configuration() {
        let e = env();
        let snap = SystemSnapshot::capture(&e);
        assert_eq!(snap.cpu_cores, 2);
        assert_eq!(snap.mem_total, 4 << 30);
        assert_eq!(snap.device_class, DeviceClass::SataHdd);
        let text = snap.to_prompt_text();
        assert!(text.contains("2 logical cores"));
        assert!(text.contains("SATA HDD"));
    }

    #[test]
    fn probe_orders_devices_correctly() {
        let hdd = DeviceProbe::run(&env());
        let nvme_env = HardwareEnv::builder().device(DeviceModel::nvme_ssd()).build_sim();
        let nvme = DeviceProbe::run(&nvme_env);
        assert!(nvme.rand_read_4k_iops > 20.0 * hdd.rand_read_4k_iops);
        assert!(nvme.seq_write_mibps > hdd.seq_write_mibps);
        assert!(hdd.to_prompt_text().contains("rotational      : yes"));
        assert!(nvme.to_prompt_text().contains("rotational      : no"));
    }

    #[test]
    fn probe_numbers_are_plausible() {
        let nvme_env = HardwareEnv::builder().device(DeviceModel::nvme_ssd()).build_sim();
        let p = DeviceProbe::run(&nvme_env);
        // 1 MiB at 3 GB/s plus 70us latency -> several hundred MiB/s at least.
        assert!(p.seq_read_mibps > 500.0);
        assert!(p.rand_read_4k_iops > 5_000.0);
    }
}
