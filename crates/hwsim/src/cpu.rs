//! CPU model: a pool of cores on which background work is scheduled.
//!
//! Foreground (client) work is accounted by the workload driver on its own
//! virtual timelines; the [`CpuPool`] models the *background* capacity the
//! storage engine competes for — flush and compaction jobs are placed on
//! the earliest-available core, so a 2-core box genuinely runs fewer
//! concurrent background jobs than a 4-core box.

use parking_lot::Mutex;

use crate::time::{SimDuration, SimTime};

/// Cumulative CPU accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuCounters {
    /// Background jobs executed.
    pub jobs: u64,
    /// Total busy time summed over all cores.
    pub busy_nanos: u64,
}

#[derive(Debug)]
struct CpuState {
    cores: Vec<SimTime>,
    counters: CpuCounters,
}

/// A pool of simulated CPU cores.
///
/// # Examples
///
/// ```
/// use hw_sim::{CpuPool, SimDuration, SimTime};
///
/// let pool = CpuPool::new(2);
/// let d = SimDuration::from_millis(10);
/// let a = pool.run(SimTime::ZERO, d);
/// let b = pool.run(SimTime::ZERO, d);
/// let c = pool.run(SimTime::ZERO, d);
/// assert_eq!(a.end, b.end, "two cores run two jobs in parallel");
/// assert!(c.end > a.end, "third job waits for a free core");
/// ```
#[derive(Debug)]
pub struct CpuPool {
    num_cores: usize,
    /// Per-core speed factor relative to the reference core used to derive
    /// CPU costs (1.0 = reference speed).
    speed_factor: f64,
    state: Mutex<CpuState>,
}

/// Placement of one background job on the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuSlot {
    /// Core index the job ran on.
    pub core: usize,
    /// When the job began executing (>= submission time).
    pub start: SimTime,
    /// When the job finished.
    pub end: SimTime,
}

impl CpuPool {
    /// Creates a pool of `num_cores` reference-speed cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero.
    pub fn new(num_cores: usize) -> Self {
        Self::with_speed(num_cores, 1.0)
    }

    /// Creates a pool whose cores run at `speed_factor` times reference
    /// speed (0.5 = half speed, so CPU costs double).
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero or `speed_factor` is not positive.
    pub fn with_speed(num_cores: usize, speed_factor: f64) -> Self {
        assert!(num_cores > 0, "a CPU pool needs at least one core");
        assert!(
            speed_factor > 0.0 && speed_factor.is_finite(),
            "speed factor must be positive"
        );
        CpuPool {
            num_cores,
            speed_factor,
            state: Mutex::new(CpuState {
                cores: vec![SimTime::ZERO; num_cores],
                counters: CpuCounters::default(),
            }),
        }
    }

    /// Number of cores in the pool.
    pub fn num_cores(&self) -> usize {
        self.num_cores
    }

    /// Schedules a job costing `cpu_cost` (at reference speed) on the
    /// earliest-available core, returning its placement.
    pub fn run(&self, now: SimTime, cpu_cost: SimDuration) -> CpuSlot {
        let scaled = cpu_cost.mul_f64(1.0 / self.speed_factor);
        let mut st = self.state.lock();
        let core = st
            .cores
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, _)| i)
            .expect("pool has at least one core");
        let start = st.cores[core].max(now);
        let end = start + scaled;
        st.cores[core] = end;
        st.counters.jobs += 1;
        st.counters.busy_nanos = st.counters.busy_nanos.saturating_add(scaled.as_nanos());
        CpuSlot { core, start, end }
    }

    /// The instant at which at least one core becomes idle.
    pub fn earliest_idle(&self) -> SimTime {
        let st = self.state.lock();
        st.cores.iter().copied().min().unwrap_or(SimTime::ZERO)
    }

    /// Number of cores still busy at `now`.
    pub fn busy_cores(&self, now: SimTime) -> usize {
        let st = self.state.lock();
        st.cores.iter().filter(|t| **t > now).count()
    }

    /// Average utilization of the pool over `[SimTime::ZERO, now]`,
    /// in percent.
    pub fn utilization_percent(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        let st = self.state.lock();
        let capacity = now.as_secs_f64() * self.num_cores as f64;
        let busy = st.counters.busy_nanos as f64 / 1e9;
        (busy / capacity * 100.0).min(100.0)
    }

    /// Snapshot of cumulative counters.
    pub fn counters(&self) -> CpuCounters {
        self.state.lock().counters
    }

    /// Resets all cores to idle and clears counters.
    pub fn reset(&self) {
        let mut st = self.state.lock();
        for c in st.cores.iter_mut() {
            *c = SimTime::ZERO;
        }
        st.counters = CpuCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = CpuPool::new(0);
    }

    #[test]
    fn jobs_fill_cores_before_queueing() {
        let pool = CpuPool::new(4);
        let d = SimDuration::from_millis(1);
        let ends: Vec<_> = (0..4).map(|_| pool.run(SimTime::ZERO, d).end).collect();
        assert!(ends.iter().all(|e| *e == ends[0]));
        let fifth = pool.run(SimTime::ZERO, d);
        assert_eq!(fifth.end, ends[0] + d);
    }

    #[test]
    fn slower_cores_stretch_jobs() {
        let fast = CpuPool::new(1);
        let slow = CpuPool::with_speed(1, 0.5);
        let d = SimDuration::from_millis(2);
        let f = fast.run(SimTime::ZERO, d);
        let s = slow.run(SimTime::ZERO, d);
        assert_eq!(s.end.as_nanos(), 2 * f.end.as_nanos());
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let pool = CpuPool::new(2);
        pool.run(SimTime::ZERO, SimDuration::from_secs(1));
        // 1 core-second busy out of 2 core-seconds capacity at t=1s.
        let util = pool.utilization_percent(SimTime::from_nanos(1_000_000_000));
        assert!((util - 50.0).abs() < 1.0, "got {util}");
    }

    #[test]
    fn busy_cores_counts_in_flight_jobs() {
        let pool = CpuPool::new(4);
        pool.run(SimTime::ZERO, SimDuration::from_millis(5));
        pool.run(SimTime::ZERO, SimDuration::from_millis(5));
        assert_eq!(pool.busy_cores(SimTime::from_nanos(1_000_000)), 2);
        assert_eq!(pool.busy_cores(SimTime::from_nanos(10_000_000)), 0);
    }

    #[test]
    fn reset_returns_pool_to_idle() {
        let pool = CpuPool::new(1);
        pool.run(SimTime::ZERO, SimDuration::from_secs(5));
        pool.reset();
        assert_eq!(pool.earliest_idle(), SimTime::ZERO);
        assert_eq!(pool.counters(), CpuCounters::default());
    }
}
