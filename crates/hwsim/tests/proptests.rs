//! Property-based tests for the hardware model's invariants.

use proptest::collection::vec;
use proptest::prelude::*;

use hw_sim::{AccessPattern, CpuPool, Device, DeviceModel, MemoryBudget, MemoryUser, SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Device completions never run backwards: a later submission on the
    /// same device completes no earlier than an identical earlier one.
    #[test]
    fn device_completions_are_monotone(lens in vec(1u64..1 << 20, 1..50)) {
        let dev = Device::new(DeviceModel::sata_hdd()); // single channel
        let mut last = SimTime::ZERO;
        for len in lens {
            let done = dev.submit_read(SimTime::ZERO, len, AccessPattern::Random);
            prop_assert!(done >= last);
            last = done;
        }
    }

    /// A device with more channels never finishes a workload later than
    /// the same device with fewer channels.
    #[test]
    fn more_channels_never_hurt(lens in vec(1u64..1 << 18, 1..40)) {
        let mut narrow_model = DeviceModel::nvme_ssd();
        narrow_model.channels = 1;
        let narrow = Device::new(narrow_model);
        let wide = Device::new(DeviceModel::nvme_ssd()); // 16 channels
        let mut narrow_done = SimTime::ZERO;
        let mut wide_done = SimTime::ZERO;
        for len in &lens {
            narrow_done = narrow_done.max(narrow.submit_read(SimTime::ZERO, *len, AccessPattern::Random));
            wide_done = wide_done.max(wide.submit_read(SimTime::ZERO, *len, AccessPattern::Random));
        }
        prop_assert!(wide_done <= narrow_done);
    }

    /// CPU pool conservation: total busy time equals the sum of job costs
    /// regardless of scheduling order.
    #[test]
    fn cpu_busy_time_is_conserved(costs in vec(1u64..10_000_000, 1..60)) {
        let pool = CpuPool::new(4);
        let mut total = 0u64;
        for c in &costs {
            pool.run(SimTime::ZERO, SimDuration::from_nanos(*c));
            total += *c;
        }
        prop_assert_eq!(pool.counters().busy_nanos, total);
        prop_assert_eq!(pool.counters().jobs, costs.len() as u64);
    }

    /// Jobs on a k-core pool never finish later than on a 1-core pool.
    #[test]
    fn parallelism_never_hurts(costs in vec(1u64..10_000_000, 1..40)) {
        let single = CpuPool::new(1);
        let quad = CpuPool::new(4);
        let mut single_end = SimTime::ZERO;
        let mut quad_end = SimTime::ZERO;
        for c in &costs {
            single_end = single_end.max(single.run(SimTime::ZERO, SimDuration::from_nanos(*c)).end);
            quad_end = quad_end.max(quad.run(SimTime::ZERO, SimDuration::from_nanos(*c)).end);
        }
        prop_assert!(quad_end <= single_end);
    }

    /// Memory accounting: reserve/release sequences keep usage equal to
    /// the running sum, and the penalty factor is monotone in usage.
    #[test]
    fn memory_accounting_balances(deltas in vec((any::<bool>(), 1u64..1 << 26), 1..80)) {
        let mem = MemoryBudget::gib(1);
        let mut running: u64 = 0;
        let mut last_penalty = 1.0f64;
        let mut last_usage = 0u64;
        for (grow, bytes) in deltas {
            if grow {
                mem.reserve(MemoryUser::Misc, bytes);
                running = running.saturating_add(bytes);
            } else {
                let take = bytes.min(running);
                mem.release(MemoryUser::Misc, take);
                running -= take;
            }
            prop_assert_eq!(mem.used(), running);
            let p = mem.penalty_factor();
            if running >= last_usage {
                prop_assert!(p >= last_penalty - 1e-9);
            }
            last_penalty = p;
            last_usage = running;
        }
    }

    /// Cost model sanity over arbitrary transfer sizes: larger transfers
    /// never cost less, random never beats sequential.
    #[test]
    fn device_costs_are_sane(a in 1u64..1 << 24, b in 1u64..1 << 24) {
        let model = DeviceModel::sata_hdd();
        let (small, large) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(
            model.read_cost(small, AccessPattern::Sequential)
                <= model.read_cost(large, AccessPattern::Sequential)
        );
        prop_assert!(
            model.read_cost(a, AccessPattern::Sequential) <= model.read_cost(a, AccessPattern::Random)
        );
        prop_assert!(
            model.write_cost(a, AccessPattern::Sequential) <= model.write_cost(a, AccessPattern::Random)
        );
    }
}
