//! End-to-end tests for the serving layer: request routing, pipelining,
//! protocol robustness under malformed frames, backpressure, graceful
//! shutdown under load, and the durability contract across a simulated
//! power cut (fault-injection VFS).

use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hw_sim::HardwareEnv;
use lsm_kvs::options::Options;
use lsm_kvs::vfs::MemVfs;
use lsm_kvs::{
    Db, FaultInjectionVfs, KvEngine, ShardedDb, TearStyle, Vfs, WriteBatch, WriteOptions,
};
use lsm_server::protocol::{op, frame};
use lsm_server::{serve, Conn, RemoteDb, Request, Response, ServerHandle};

fn wall_env() -> HardwareEnv {
    HardwareEnv::builder().cores(2).build_wall()
}

/// Starts a server over a fresh real-mode `Db` on `vfs`.
fn start_db_server(opts: Options, vfs: Arc<dyn Vfs>) -> (ServerHandle, String) {
    let env = wall_env();
    let db = Db::builder(opts).env(&env).vfs(vfs).open().unwrap();
    let handle = serve(Arc::new(db), "127.0.0.1:0").unwrap();
    let addr = handle.local_addr().to_string();
    (handle, addr)
}

/// Minimal deterministic RNG (xorshift64*), mirroring the crash harness.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

#[test]
fn end_to_end_ops_roundtrip() {
    let (handle, addr) = start_db_server(Options::default(), Arc::new(MemVfs::new()));
    let client = RemoteDb::connect(&addr).unwrap();

    client.ping().unwrap();
    client.put(b"alpha", b"1").unwrap();
    client.put(b"beta", b"2").unwrap();
    assert_eq!(client.get(b"alpha").unwrap(), Some(b"1".to_vec()));
    assert_eq!(client.get(b"missing").unwrap(), None);

    client.delete(b"alpha").unwrap();
    assert_eq!(client.get(b"alpha").unwrap(), None);

    let mut batch = WriteBatch::new();
    batch.put(b"gamma", b"3");
    batch.put(b"delta", b"4");
    batch.delete(b"beta");
    client.write_opt(&WriteOptions::synced(), batch).unwrap();

    let entries = client.scan(b"", 10).unwrap();
    assert_eq!(
        entries,
        vec![(b"delta".to_vec(), b"4".to_vec()), (b"gamma".to_vec(), b"3".to_vec())]
    );

    client.flush().unwrap();
    client.wait_background_idle().unwrap();

    let text = client.stats_text();
    assert!(text.contains("** DB Stats **"), "engine dump present:\n{text}");
    assert!(text.contains("** Server Stats **"), "server section present:\n{text}");
    let stats = client.stats();
    assert!(stats.last_sequence > 0, "stats blob decoded: {stats:?}");
    drop(handle);
}

#[test]
fn sharded_engine_serves_identically() {
    let env = wall_env();
    let db = ShardedDb::builder(Options { num_shards: 4, ..Options::default() })
        .env(&env)
        .vfs(Arc::new(MemVfs::new()))
        .open()
        .unwrap();
    let handle = serve(Arc::new(db), "127.0.0.1:0").unwrap();
    let client = RemoteDb::connect(&handle.local_addr().to_string()).unwrap();

    // Keys spread over the default two-byte boundaries.
    let keys: Vec<Vec<u8>> = (0..=255u8).step_by(16).map(|b| vec![b, b]).collect();
    for k in &keys {
        client.put(k, k).unwrap();
    }
    for k in &keys {
        assert_eq!(client.get(k).unwrap(), Some(k.clone()));
    }
    let all = client.scan(b"", 1000).unwrap();
    assert_eq!(all.len(), keys.len());
    assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "cross-shard scan sorted");
    drop(handle);
}

#[test]
fn pipelined_requests_answered_in_order() {
    let (handle, addr) = start_db_server(Options::default(), Arc::new(MemVfs::new()));
    let mut conn = Conn::connect(&addr).unwrap();

    // Stream all requests before reading a single response.
    let n = 64u32;
    let mut reqs = Vec::new();
    for i in 0..n {
        reqs.push(Request::Put {
            sync: false,
            key: format!("p{i:03}").into_bytes(),
            value: format!("v{i}").into_bytes(),
        });
    }
    for i in 0..n {
        reqs.push(Request::Get { key: format!("p{i:03}").into_bytes() });
    }
    for r in &reqs {
        conn.send(r).unwrap();
    }
    for (i, r) in reqs.iter().enumerate() {
        let resp = conn.receive(r).unwrap();
        if i < n as usize {
            assert_eq!(resp, Response::Ok, "put #{i}");
        } else {
            let expect = format!("v{}", i - n as usize).into_bytes();
            assert_eq!(resp, Response::Value(expect), "get #{i} answered in order");
        }
    }
    drop(handle);
}

#[test]
fn malformed_frames_error_the_connection_only() {
    let (handle, addr) = start_db_server(Options::default(), Arc::new(MemVfs::new()));

    // A long-lived healthy connection that must survive every abuse
    // below unscathed.
    let healthy = RemoteDb::connect(&addr).unwrap();
    healthy.put(b"canary", b"alive").unwrap();

    // Deterministic garbage: random bytes, random lengths.
    let mut rng = Rng(0xBAD_F00D);
    for round in 0..40 {
        let mut garbage = Vec::new();
        for _ in 0..(1 + rng.next() % 64) {
            garbage.push(rng.next() as u8);
        }
        let mut s = TcpStream::connect(&addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(&garbage).unwrap();
        // Close the write half so a partial frame surfaces quickly.
        let _ = s.shutdown(std::net::Shutdown::Write);
        // Whatever happens — error frame or plain close — must not take
        // the server down. Drain until EOF.
        let mut sink = Vec::new();
        use std::io::Read;
        let _ = s.read_to_end(&mut sink);
        assert!(
            healthy.get(b"canary").unwrap() == Some(b"alive".to_vec()),
            "healthy connection corrupted after round {round}"
        );
    }

    // Targeted abuses.
    let cases: Vec<Vec<u8>> = vec![
        // Length prefix far beyond MAX_FRAME_LEN.
        u32::MAX.to_le_bytes().to_vec(),
        // Valid length, unknown opcode.
        frame(&[250u8]),
        // Valid length, truncated PUT payload.
        frame(&[op::PUT, 1, 9, 0, 0, 0]),
        // Ping with trailing junk.
        frame(&[op::PING, 7, 7]),
        // Batch claiming more ops than the frame holds.
        frame(&[op::BATCH, 0, 255, 255, 0, 0]),
        // Empty payload.
        frame(&[]),
    ];
    for (i, bytes) in cases.iter().enumerate() {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(bytes).unwrap();
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut sink = Vec::new();
        use std::io::Read;
        let _ = s.read_to_end(&mut sink);
        assert_eq!(
            healthy.get(b"canary").unwrap(),
            Some(b"alive".to_vec()),
            "healthy connection corrupted after case {i}"
        );
    }

    // The server kept count of the abuse and kept serving.
    assert!(handle.stats().protocol_errors.load(Ordering::Relaxed) > 0);
    healthy.put(b"canary", b"still alive").unwrap();
    assert_eq!(healthy.get(b"canary").unwrap(), Some(b"still alive".to_vec()));
    drop(handle);
}

#[test]
fn graceful_shutdown_under_load_loses_no_acked_writes() {
    let vfs = Arc::new(MemVfs::new());
    let (mut handle, addr) = start_db_server(Options::default(), vfs.clone());

    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for t in 0..3u32 {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        writers.push(std::thread::spawn(move || {
            let client = match RemoteDb::connect(&addr) {
                Ok(c) => c,
                Err(_) => return Vec::new(),
            };
            let mut acked: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let key = format!("t{t}-{i:06}").into_bytes();
                let value = format!("val-{t}-{i}").into_bytes();
                let mut batch = WriteBatch::new();
                batch.put(&key, &value);
                match client.write_opt(&WriteOptions::synced(), batch) {
                    Ok(()) => acked.push((key, value)),
                    // Shutdown reached this connection; whatever was
                    // acked before stands, the rest never happened.
                    Err(_) => break,
                }
                i += 1;
            }
            acked
        }));
    }

    // Let the writers build up steam, then pull the plug mid-flight.
    std::thread::sleep(Duration::from_millis(300));
    handle.shutdown();
    stop.store(true, Ordering::Relaxed);
    let mut acked: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    for w in writers {
        acked.extend(w.join().unwrap());
    }
    assert!(!acked.is_empty(), "load generator never got a write through");
    drop(handle); // releases the engine; Db::Drop syncs and closes

    // Reopen the same store: every acked (synced) write must be there.
    let env = wall_env();
    let db = Db::builder(Options::default()).env(&env).vfs(vfs).open().unwrap();
    for (key, value) in &acked {
        assert_eq!(
            db.get(key).unwrap().as_deref(),
            Some(value.as_slice()),
            "acked write {:?} lost by shutdown",
            String::from_utf8_lossy(key)
        );
    }
}

#[test]
fn power_cut_mid_write_loses_no_acked_writes() {
    let fault = FaultInjectionVfs::wrap(Arc::new(MemVfs::new()));
    let (handle, addr) = start_db_server(Options::default(), Arc::new(fault.clone()));

    let mut writers = Vec::new();
    for t in 0..2u32 {
        let addr = addr.clone();
        writers.push(std::thread::spawn(move || {
            let client = match RemoteDb::connect(&addr) {
                Ok(c) => c,
                Err(_) => return Vec::new(),
            };
            let mut acked: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
            for i in 0..50_000u64 {
                let key = format!("t{t}-{i:06}").into_bytes();
                let value = format!("val-{t}-{i}").into_bytes();
                let mut batch = WriteBatch::new();
                batch.put(&key, &value);
                match client.write_opt(&WriteOptions::synced(), batch) {
                    Ok(()) => acked.push((key, value)),
                    Err(_) => break, // power is out; nothing further acks
                }
            }
            acked
        }));
    }

    // Cut power while requests are in flight. In-flight writes either
    // acked before the cut (and were synced) or error out.
    std::thread::sleep(Duration::from_millis(250));
    fault.power_off();
    let mut acked: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
    for w in writers {
        acked.extend(w.join().unwrap());
    }
    assert!(!acked.is_empty(), "no write acked before the power cut");
    drop(handle); // drains and releases the (now failing) engine

    // Reboot dropping everything unsynced, reopen, verify the contract.
    fault.reboot(TearStyle::DropUnsynced);
    let env = wall_env();
    let db = Db::builder(Options::default())
        .env(&env)
        .vfs(Arc::new(fault.clone()))
        .open()
        .unwrap();
    for (key, value) in &acked {
        assert_eq!(
            db.get(key).unwrap().as_deref(),
            Some(value.as_slice()),
            "acked synced write {:?} lost across power cut",
            String::from_utf8_lossy(key)
        );
    }
}

#[test]
fn multiget_roundtrip_hits_misses_and_deletes() {
    let (handle, addr) = start_db_server(Options::default(), Arc::new(MemVfs::new()));
    let client = RemoteDb::connect(&addr).unwrap();

    for i in 0..200u32 {
        client.put(format!("mk{i:04}").as_bytes(), format!("mv{i}").as_bytes()).unwrap();
    }
    client.delete(b"mk0010").unwrap();
    client.flush().unwrap();

    // Unsorted on purpose: hits, a tombstone, misses, and a duplicate.
    let keys: Vec<Vec<u8>> = vec![
        b"mk0150".to_vec(),
        b"mk0003".to_vec(),
        b"absent".to_vec(),
        b"mk0010".to_vec(),
        b"mk0003".to_vec(),
        b"zzz-way-past-everything".to_vec(),
    ];
    let got = client.multi_get(&keys).unwrap();
    assert_eq!(got.len(), keys.len());
    for (k, v) in keys.iter().zip(&got) {
        assert_eq!(v.as_deref(), client.get(k).unwrap().as_deref(), "key {k:?}");
    }
    assert_eq!(got[0].as_deref(), Some(b"mv150".as_slice()));
    assert_eq!(got[3], None, "deleted key must read as a miss");

    // The engine saw these as batches, not looped gets.
    let stats = client.stats();
    assert!(
        stats.tickers.get(lsm_kvs::Ticker::MultiGetBatches) >= 1,
        "server-side multi_get path not taken: {:?}",
        stats.tickers
    );
    assert!(stats.tickers.get(lsm_kvs::Ticker::MultiGetKeys) >= keys.len() as u64);
    drop(handle);
}

#[test]
fn streaming_scan_bounds_peak_reply_buffer() {
    // Fill the engine in-process (fast), then serve and scan remotely.
    // 100k entries at ~42 bytes of k+v each is ~4 MiB of reply data —
    // far beyond one SCAN_CHUNK_BUDGET, so the server must stream.
    let env = wall_env();
    let db =
        Db::builder(Options::default()).env(&env).vfs(Arc::new(MemVfs::new())).open().unwrap();
    let n = 100_000usize;
    let mut batch = WriteBatch::new();
    for i in 0..n {
        batch.put(
            format!("scan-{i:08}").as_bytes(),
            format!("value-{i:016}-padding").as_bytes(),
        );
        if batch.len() == 1000 {
            db.write_opt(&WriteOptions::default(), std::mem::replace(&mut batch, WriteBatch::new()))
                .unwrap();
        }
    }
    if !batch.is_empty() {
        db.write_opt(&WriteOptions::default(), batch).unwrap();
    }
    db.flush().unwrap();
    db.wait_background_idle().unwrap();

    let handle = serve(Arc::new(db), "127.0.0.1:0").unwrap();
    let client = RemoteDb::connect(&handle.local_addr().to_string()).unwrap();

    let entries = client.scan(b"", n + 10).unwrap();
    assert_eq!(entries.len(), n, "streamed scan returned every entry");
    assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "streamed scan sorted");
    assert_eq!(entries[0].0, b"scan-00000000".to_vec());
    assert_eq!(entries[n - 1].0, format!("scan-{:08}", n - 1).into_bytes());

    let stats = handle.stats();
    let chunks = stats.scan_chunks_sent.load(Ordering::Relaxed);
    let peak = stats.scan_peak_reply_bytes.load(Ordering::Relaxed);
    assert!(chunks > 1, "scan was not chunked (chunks={chunks})");
    assert!(
        (peak as usize) < 2 * lsm_server::SCAN_CHUNK_BUDGET,
        "peak reply buffer {peak} B exceeds 2x the {} B per-frame budget",
        lsm_server::SCAN_CHUNK_BUDGET
    );
    drop(handle);
}

#[test]
fn failed_request_does_not_corrupt_reused_connection() {
    let (handle, addr) = start_db_server(Options::default(), Arc::new(MemVfs::new()));
    let client = RemoteDb::connect(&addr).unwrap();
    client.put(b"before", b"ok").unwrap();

    // An oversized value makes the request frame exceed MAX_FRAME_LEN;
    // the server reports a protocol error and closes that connection.
    // The pooled connection is now poisoned — if the client reused it,
    // the next request would read the server's EOF (or stale bytes).
    // Depending on timing the client observes either the server's error
    // frame (corruption) or a reset while still writing (transport
    // error); both must poison the connection.
    let huge = vec![0xAAu8; lsm_server::MAX_FRAME_LEN as usize + 1024];
    client.put(b"too-big", &huge).unwrap_err();

    // Back-to-back requests on the same client must all succeed on a
    // fresh connection, with responses matching their requests.
    for i in 0..10u32 {
        let key = format!("after-{i}").into_bytes();
        client.put(&key, format!("v{i}").as_bytes()).unwrap();
        assert_eq!(client.get(&key).unwrap(), Some(format!("v{i}").into_bytes()));
    }
    assert_eq!(client.get(b"before").unwrap(), Some(b"ok".to_vec()));
    assert!(handle.stats().protocol_errors.load(Ordering::Relaxed) >= 1);
    drop(handle);
}

#[test]
fn concurrent_gets_coalesce_into_multiget_batches() {
    let (handle, addr) = start_db_server(Options::default(), Arc::new(MemVfs::new()));
    let client = Arc::new(RemoteDb::connect(&addr).unwrap());
    for i in 0..256u32 {
        client.put(format!("ab{i:04}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
    }

    // Many threads hammering get() through one shared client: while one
    // leader's round trip is in flight, the rest queue up and ride the
    // next MultiGet frame.
    let mut threads = Vec::new();
    for t in 0..8u32 {
        let client = Arc::clone(&client);
        threads.push(std::thread::spawn(move || {
            for i in 0..300u32 {
                let k = format!("ab{:04}", (t * 37 + i) % 256);
                assert_eq!(
                    client.get(k.as_bytes()).unwrap(),
                    Some(format!("v{}", (t * 37 + i) % 256).into_bytes()),
                );
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }

    let stats = client.stats();
    assert!(
        stats.tickers.get(lsm_kvs::Ticker::MultiGetBatches) >= 1,
        "concurrent gets never coalesced into a MultiGet batch"
    );
    drop(handle);
}

#[test]
fn backpressure_pauses_intake_while_stopped() {
    // Two L0 files with stop trigger 2 and auto compaction disabled:
    // the engine reports Stopped until a manual compaction clears L0.
    let opts = Options {
        level0_slowdown_writes_trigger: 2,
        level0_stop_writes_trigger: 2,
        disable_auto_compactions: true,
        ..Options::default()
    };
    let env = wall_env();
    let db = Arc::new(
        Db::builder(opts).env(&env).vfs(Arc::new(MemVfs::new())).open().unwrap(),
    );
    for (k, v) in [(b"a", b"1"), (b"b", b"2")] {
        db.put(k, v).unwrap();
        db.flush().unwrap();
    }
    db.wait_background_idle().unwrap();
    assert_eq!(db.write_regime(), lsm_kvs::WriteRegime::Stopped);

    let engine: Arc<dyn KvEngine> = Arc::clone(&db) as Arc<dyn KvEngine>;
    let handle = serve(engine, "127.0.0.1:0").unwrap();
    let addr = handle.local_addr().to_string();

    let done = Arc::new(AtomicBool::new(false));
    let done2 = Arc::clone(&done);
    let pinger = std::thread::spawn(move || {
        let client = RemoteDb::connect(&addr).unwrap();
        client.ping().unwrap();
        done2.store(true, Ordering::SeqCst);
    });

    // While stopped, the worker must not even read the ping.
    std::thread::sleep(Duration::from_millis(400));
    assert!(!done.load(Ordering::SeqCst), "request served during a write stall");
    assert!(handle.stats().backpressure_stalls.load(Ordering::Relaxed) >= 1);

    // Clearing the stall releases the connection and the ping completes.
    db.compact_range(b"", b"\xff\xff").unwrap();
    assert_eq!(db.write_regime(), lsm_kvs::WriteRegime::Normal);
    pinger.join().unwrap();
    assert!(done.load(Ordering::SeqCst));
    drop(handle);
}

#[test]
fn set_options_rpc_end_to_end() {
    use lsm_server::OptionAck;

    let (handle, addr) = start_db_server(Options::default(), Arc::new(MemVfs::new()));
    let client = RemoteDb::connect(&addr).unwrap();
    client.put(b"k", b"v").unwrap();

    // Mutable batch: per-pair acks, canonical names/values, no reopen.
    let acks = client
        .set_options_detailed(&[
            ("max_background_jobs", "6"),
            ("write_buffer_size", "64MB"), // equals the default -> unchanged
        ])
        .unwrap();
    assert_eq!(acks.len(), 2);
    match &acks[0] {
        OptionAck::Applied { name, from, to } => {
            assert_eq!(name, "max_background_jobs");
            assert_eq!(from, "2");
            assert_eq!(to, "6");
        }
        other => panic!("expected Applied, got {other:?}"),
    }
    assert!(matches!(&acks[1], OptionAck::Unchanged { name } if name == "write_buffer_size"));

    // The change is visible in the server's stats dump without a reopen,
    // and the data survived.
    let text = client.stats_text();
    assert!(text.contains("** Live options **"), "{text}");
    assert!(text.contains("max_background_jobs: 6 (opened: 2)"), "{text}");
    assert!(text.contains("options_changed: 1"), "{text}");
    assert_eq!(client.get(b"k").unwrap(), Some(b"v".to_vec()));

    // The KvEngine-shaped call returns applied triples directly.
    let applied = client.set_options(&[("delayed_write_rate", "8MB")]).unwrap();
    assert_eq!(
        applied,
        vec![("delayed_write_rate".to_string(), "16777216".to_string(), "8388608".to_string())]
    );

    drop(client);
    drop(handle);
}

#[test]
fn set_options_immutable_rejection_names_option_and_keeps_connection() {
    use lsm_server::OptionAck;

    let (handle, addr) = start_db_server(Options::default(), Arc::new(MemVfs::new()));
    let client = RemoteDb::connect(&addr).unwrap();

    // A batch mixing a mutable pair with an immutable one: nothing lands,
    // the immutable pair is Rejected by name, the rest become Skipped.
    let acks = client
        .set_options_detailed(&[("max_background_jobs", "6"), ("num_shards", "4")])
        .unwrap();
    assert_eq!(acks.len(), 2);
    assert!(
        matches!(&acks[0], OptionAck::Skipped { name } if name == "max_background_jobs"),
        "{acks:?}"
    );
    match &acks[1] {
        OptionAck::Rejected { name, error } => {
            assert_eq!(name, "num_shards");
            assert!(error.to_string().contains("reopen"), "{error}");
        }
        other => panic!("expected Rejected, got {other:?}"),
    }

    // Nothing committed server-side.
    let text = client.stats_text();
    assert!(text.contains("options_changed: 0"), "{text}");

    // The rejection must not poison the connection: the same client
    // keeps serving reads, writes, and further SetOptions batches.
    client.put(b"after", b"rejection").unwrap();
    assert_eq!(client.get(b"after").unwrap(), Some(b"rejection".to_vec()));
    let applied = client.set_options(&[("max_background_jobs", "3")]).unwrap();
    assert_eq!(applied.len(), 1);

    // The KvEngine-shaped call surfaces the rejection as an error that
    // names the option.
    let err = client.set_options(&[("block_cache_size", "1GB")]).unwrap_err();
    assert!(err.to_string().contains("block_cache_size"), "{err}");
    assert_eq!(client.get(b"after").unwrap(), Some(b"rejection".to_vec()));

    drop(client);
    drop(handle);
}

#[test]
fn set_options_rpc_on_sharded_engine_hits_every_shard() {
    let env = wall_env();
    let opts = Options {
        num_shards: 2,
        ..Options::default()
    };
    let db = ShardedDb::builder(opts).env(&env).vfs(Arc::new(MemVfs::new())).open().unwrap();
    let handle = serve(Arc::new(db), "127.0.0.1:0").unwrap();
    let addr = handle.local_addr().to_string();
    let client = RemoteDb::connect(&addr).unwrap();

    let applied = client.set_options(&[("write_buffer_size", "32MB")]).unwrap();
    assert_eq!(applied.len(), 1);
    let text = client.stats_text();
    assert!(text.contains("write_buffer_size: 33554432 (opened: 67108864)"), "{text}");
    // One committed batch in each shard's own section.
    assert_eq!(text.matches("options_changed: 1").count(), 2, "{text}");

    drop(client);
    drop(handle);
}
