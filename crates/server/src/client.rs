//! Client library: a single-connection [`Conn`] plus [`RemoteDb`], a
//! pooled client that implements [`KvEngine`] so every in-process tool
//! (`db_bench`, the tuning loop) runs unchanged against a live server.
//!
//! [`RemoteDb`] adds two read-path optimizations over plain pooling:
//!
//! - **Auto-batching**: concurrent [`get`](KvEngine::get) calls
//!   coalesce into one `MultiGet` frame — the read-side analog of group
//!   commit. One caller becomes the leader, drains the queue (up to
//!   [`MULTIGET_MAX`] keys), runs the round trip, and distributes
//!   results; followers just wait. A lone caller degenerates to a plain
//!   `Get` round trip.
//! - **Streamed scans**: scan replies arrive as bounded chunks; the
//!   client concatenates them transparently.
//!
//! Connection hygiene: a connection that sees a transport error, a
//! response that fails to decode, or a corruption-kind error response
//! (the server closes the connection after protocol violations) is
//! **poisoned** — dropped instead of returned to the pool — so one
//! failed request can never desynchronize the next request's framing.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};

use lsm_kvs::{
    DbStats, Error, ErrorKind, KvEngine, Result, ScanResult, WriteBatch, WriteOptions,
};
use parking_lot::{Condvar, Mutex};

use crate::protocol::{frame, OptionAck, Request, Response, MAX_FRAME_LEN};

/// Most keys one auto-batched MultiGet frame carries; callers beyond
/// this wait for the next round.
pub const MULTIGET_MAX: usize = 128;

/// Point reads allowed to run as their own Get round trip at once.
/// Like group commit, coalescing only pays once the wire is busy: below
/// this many in-flight gets a caller uses its own pooled connection
/// (parallel RPCs, lowest latency); at or above it, callers queue for
/// the auto-batcher and ride a shared MultiGet frame.
pub const DIRECT_GET_LIMIT: usize = 4;

fn io_err(e: io::Error) -> Error {
    Error::io(format!("connection error: {e}")).retryable(true)
}

/// One blocking protocol connection.
pub struct Conn {
    stream: TcpStream,
    /// Bytes read off the socket but not yet consumed as frames; lets
    /// a response's header and payload (and pipelined responses that
    /// arrived in the same segment) come out of one `read(2)`.
    pending: Vec<u8>,
}

impl Conn {
    /// Dials `addr` (e.g. `"127.0.0.1:7379"`).
    ///
    /// # Errors
    ///
    /// I/O errors from the dial.
    pub fn connect(addr: &str) -> Result<Conn> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_nodelay(true).ok();
        Ok(Conn { stream, pending: Vec::new() })
    }

    /// Sends one request frame without waiting for the response —
    /// the pipelining primitive. Responses arrive in request order via
    /// [`receive`](Self::receive).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn send(&mut self, req: &Request) -> Result<()> {
        self.stream.write_all(&frame(&req.encode())).map_err(io_err)
    }

    /// Reads the next response frame; `req` gives the body shape.
    ///
    /// # Errors
    ///
    /// Transport failures, oversized frames, or undecodable responses.
    pub fn receive(&mut self, req: &Request) -> Result<Response> {
        loop {
            if self.pending.len() >= 4 {
                let len = u32::from_le_bytes(self.pending[..4].try_into().expect("4 bytes"));
                if len > MAX_FRAME_LEN {
                    return Err(Error::corruption(format!("server sent {len}-byte frame")));
                }
                let total = 4 + len as usize;
                if self.pending.len() >= total {
                    let resp = Response::decode(req, &self.pending[4..total]);
                    self.pending.drain(..total);
                    return resp;
                }
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io_err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed mid-response",
                    )))
                }
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(io_err(e)),
            }
        }
    }

    /// One request/response round trip.
    ///
    /// # Errors
    ///
    /// See [`send`](Self::send) and [`receive`](Self::receive).
    pub fn call(&mut self, req: &Request) -> Result<Response> {
        self.send(req)?;
        self.receive(req)
    }

    /// A full scan: sends the request and concatenates streamed chunks
    /// until the final one (`more == false`).
    ///
    /// # Errors
    ///
    /// Transport/decode failures, or the server's error response.
    pub fn scan(&mut self, start: &[u8], count: usize) -> Result<ScanResult> {
        let req = Request::Scan { start: start.to_vec(), count: count as u32 };
        self.send(&req)?;
        let mut out = ScanResult::new();
        loop {
            match self.receive(&req)? {
                Response::Entries { entries, more } => {
                    out.extend(entries);
                    if !more {
                        return Ok(out);
                    }
                }
                Response::Err(e) => return Err(e),
                other => {
                    return Err(Error::corruption(format!("unexpected response {other:?}")))
                }
            }
        }
    }
}

/// Pending auto-batched gets. Mirrors the engine's group-commit queue:
/// the first caller in becomes leader and runs rounds until the queue
/// empties; everyone else waits for its id to resolve.
struct BatchState {
    queue: VecDeque<(u64, Vec<u8>)>,
    results: HashMap<u64, Result<Option<Vec<u8>>>>,
    leader_active: bool,
    next_id: u64,
}

/// A remote engine: implements [`KvEngine`] over a connection pool, so
/// N benchmark threads multiplex onto N lazily dialed connections.
pub struct RemoteDb {
    addr: String,
    pool: Mutex<Vec<Conn>>,
    batch: Mutex<BatchState>,
    batch_cv: Condvar,
    direct_gets: AtomicUsize,
}

impl RemoteDb {
    /// Creates a client for `addr`; connections are dialed on demand.
    ///
    /// # Errors
    ///
    /// Fails fast if the server is unreachable (one probe connection,
    /// which is kept for reuse).
    pub fn connect(addr: &str) -> Result<RemoteDb> {
        let probe = Conn::connect(addr)?;
        Ok(RemoteDb {
            addr: addr.to_string(),
            pool: Mutex::new(vec![probe]),
            batch: Mutex::new(BatchState {
                queue: VecDeque::new(),
                results: HashMap::new(),
                leader_active: false,
                next_id: 0,
            }),
            batch_cv: Condvar::new(),
            direct_gets: AtomicUsize::new(0),
        })
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn checkout(&self) -> Result<Conn> {
        if let Some(c) = self.pool.lock().pop() {
            return Ok(c);
        }
        Conn::connect(&self.addr)
    }

    /// Returns a connection to the pool — only for connections whose
    /// round trip completed cleanly at a frame boundary.
    fn checkin(&self, conn: Conn) {
        self.pool.lock().push(conn);
    }

    /// Whether a connection that delivered this error response can be
    /// reused. The server closes the connection after protocol errors
    /// (which it reports as corruption), so such a connection would hand
    /// its EOF to the *next* unrelated request if pooled.
    fn poisons(e: &Error) -> bool {
        e.kind() == ErrorKind::Corruption
    }

    fn call(&self, req: &Request) -> Result<Response> {
        let mut conn = self.checkout()?;
        // A transport or decode failure drops `conn` right here (early
        // return): its stream may hold half a frame.
        let resp = conn.call(req)?;
        if let Response::Err(e) = resp {
            if !Self::poisons(&e) {
                self.checkin(conn);
            }
            return Err(e);
        }
        self.checkin(conn);
        Ok(resp)
    }

    fn expect_ok(&self, req: &Request) -> Result<()> {
        match self.call(req)? {
            Response::Ok => Ok(()),
            other => Err(Error::corruption(format!("unexpected response {other:?}"))),
        }
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown_server(&self) -> Result<()> {
        self.expect_ok(&Request::Shutdown)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn ping(&self) -> Result<()> {
        self.expect_ok(&Request::Ping)
    }

    /// One Stats RPC round trip: the server's full human-readable dump
    /// (engine sections, "Live options", server counters) plus the
    /// binary ticker/level snapshot. The snapshot side is what live
    /// tuning diffs between throughput windows.
    ///
    /// # Errors
    ///
    /// Transport failures or an undecodable reply.
    pub fn fetch_stats(&self) -> Result<(String, DbStats)> {
        match self.call(&Request::Stats)? {
            Response::Stats { text, stats } => Ok((text, *stats)),
            other => Err(Error::corruption(format!("unexpected response {other:?}"))),
        }
    }

    /// Applies a live option batch and returns the per-pair verdicts —
    /// the full-fidelity variant of [`KvEngine::set_options`]. The
    /// server applies the batch atomically; a response with any
    /// [`OptionAck::Rejected`] entry means nothing was changed.
    ///
    /// # Errors
    ///
    /// Transport failures, an undecodable reply, or a batch-level error
    /// the server could not attribute to a single pair (e.g. a
    /// cross-option invariant violation).
    pub fn set_options_detailed(&self, changes: &[(&str, &str)]) -> Result<Vec<OptionAck>> {
        let req = Request::SetOptions {
            changes: changes
                .iter()
                .map(|(n, v)| (n.to_string(), v.to_string()))
                .collect(),
        };
        match self.call(&req)? {
            Response::OptionAcks(acks) => {
                if acks.len() != changes.len() {
                    return Err(Error::corruption(format!(
                        "SetOptions answered {} acks for {} pairs",
                        acks.len(),
                        changes.len()
                    )));
                }
                Ok(acks)
            }
            other => Err(Error::corruption(format!("unexpected response {other:?}"))),
        }
    }

    /// One explicit batched read RPC (no auto-batching involved).
    fn multi_get_rpc(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>> {
        let req = Request::MultiGet { keys: keys.to_vec() };
        match self.call(&req)? {
            Response::Values(values) => {
                if values.len() != keys.len() {
                    return Err(Error::corruption(format!(
                        "MultiGet answered {} values for {} keys",
                        values.len(),
                        keys.len()
                    )));
                }
                Ok(values)
            }
            other => Err(Error::corruption(format!("unexpected response {other:?}"))),
        }
    }

    /// One auto-batch round for the leader: a lone key degenerates to a
    /// plain Get frame, several keys ride one MultiGet frame.
    fn batch_round(&self, round: &[(u64, Vec<u8>)]) -> Result<Vec<Option<Vec<u8>>>> {
        if round.len() == 1 {
            let key = &round[0].1;
            return match self.call(&Request::Get { key: key.clone() })? {
                Response::Value(v) => Ok(vec![Some(v)]),
                Response::NotFound => Ok(vec![None]),
                other => Err(Error::corruption(format!("unexpected response {other:?}"))),
            };
        }
        let keys: Vec<Vec<u8>> = round.iter().map(|(_, k)| k.clone()).collect();
        self.multi_get_rpc(&keys)
    }

    /// Point read with auto-batching: concurrent callers coalesce into
    /// MultiGet frames, exactly like concurrent writers share a commit.
    fn batched_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut st = self.batch.lock();
        let id = st.next_id;
        st.next_id += 1;
        st.queue.push_back((id, key.to_vec()));
        if st.leader_active {
            // Follower: the leader runs rounds until the queue (which
            // includes this entry) is empty, so the result will come.
            loop {
                if let Some(r) = st.results.remove(&id) {
                    return r;
                }
                self.batch_cv.wait(&mut st);
            }
        }
        st.leader_active = true;
        let mut mine: Option<Result<Option<Vec<u8>>>> = None;
        while !st.queue.is_empty() {
            let n = st.queue.len().min(MULTIGET_MAX);
            let round: Vec<(u64, Vec<u8>)> = st.queue.drain(..n).collect();
            drop(st);
            let outcome = self.batch_round(&round);
            st = self.batch.lock();
            match outcome {
                Ok(values) => {
                    for ((rid, _), v) in round.iter().zip(values) {
                        st.results.insert(*rid, Ok(v));
                    }
                }
                Err(e) => {
                    for (rid, _) in &round {
                        st.results.insert(*rid, Err(e.clone()));
                    }
                }
            }
            if mine.is_none() {
                mine = st.results.remove(&id);
            }
            self.batch_cv.notify_all();
        }
        st.leader_active = false;
        drop(st);
        mine.unwrap_or_else(|| {
            Err(Error::corruption("auto-batch round lost a result"))
        })
    }
}

impl KvEngine for RemoteDb {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.expect_ok(&Request::Put {
            sync: false,
            key: key.to_vec(),
            value: value.to_vec(),
        })
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        self.expect_ok(&Request::Delete { sync: false, key: key.to_vec() })
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        // While few gets are in flight a round trip on the caller's own
        // pooled connection beats queueing behind a shared batch; once
        // DIRECT_GET_LIMIT callers occupy the wire, the rest coalesce.
        let claimed = self
            .direct_gets
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < DIRECT_GET_LIMIT).then(|| n + 1)
            })
            .is_ok();
        if !claimed {
            return self.batched_get(key);
        }
        let res = match self.call(&Request::Get { key: key.to_vec() }) {
            Ok(Response::Value(v)) => Ok(Some(v)),
            Ok(Response::NotFound) => Ok(None),
            Ok(other) => {
                Err(Error::corruption(format!("unexpected response {other:?}")))
            }
            Err(e) => Err(e),
        };
        self.direct_gets.fetch_sub(1, Ordering::AcqRel);
        res
    }

    fn multi_get(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        self.multi_get_rpc(keys)
    }

    fn write_opt(&self, wopts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        let ops = batch
            .iter()
            .map(|(ty, k, v)| {
                (ty == lsm_kvs::ValueType::Deletion, k.to_vec(), v.to_vec())
            })
            .collect();
        self.expect_ok(&Request::Batch { sync: wopts.sync, ops })
    }

    fn scan(&self, start: &[u8], count: usize) -> Result<ScanResult> {
        let mut conn = self.checkout()?;
        // Any failure mid-stream leaves unread chunks on the wire, so
        // the connection only survives a fully drained scan.
        let out = conn.scan(start, count)?;
        self.checkin(conn);
        Ok(out)
    }

    fn flush(&self) -> Result<()> {
        self.expect_ok(&Request::Flush)
    }

    fn wait_background_idle(&self) -> Result<()> {
        self.expect_ok(&Request::WaitIdle)
    }

    fn stats(&self) -> DbStats {
        self.fetch_stats().map(|(_, s)| s).unwrap_or_else(|_| empty_stats())
    }

    fn stats_text(&self) -> String {
        self.fetch_stats()
            .map(|(t, _)| t)
            .unwrap_or_else(|e| format!("stats unavailable: {e}"))
    }

    fn set_options(&self, changes: &[(&str, &str)]) -> Result<Vec<(String, String, String)>> {
        let acks = self.set_options_detailed(changes)?;
        // The trait signature carries one error, so surface the pair at
        // fault (the batch committed nothing in that case).
        let mut applied = Vec::new();
        for ack in &acks {
            match ack {
                OptionAck::Applied { name, from, to } => {
                    applied.push((name.clone(), from.clone(), to.clone()));
                }
                OptionAck::Unchanged { .. } | OptionAck::Skipped { .. } => {}
                OptionAck::Rejected { name, error } => {
                    return Err(Error::new(
                        error.kind(),
                        format!("{name}: {}", error.message()),
                    ));
                }
            }
        }
        Ok(applied)
    }
}

/// A zeroed snapshot for when the Stats RPC itself fails; `stats()` has
/// no error channel in the trait.
fn empty_stats() -> DbStats {
    DbStats {
        tickers: lsm_kvs::TickerSnapshot { values: Default::default() },
        levels: Vec::new(),
        memtable_bytes: 0,
        immutable_memtables: 0,
        block_cache: lsm_kvs::CacheStats::default(),
        block_cache_capacity: 0,
        pending_compaction_bytes: 0,
        running_background_jobs: 0,
        last_sequence: 0,
        background_retries: 0,
        wal_rotations: 0,
        manifest_resyncs: 0,
        wal_sync_retries: 0,
    }
}
