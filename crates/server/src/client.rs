//! Client library: a single-connection [`Conn`] plus [`RemoteDb`], a
//! pooled client that implements [`KvEngine`] so every in-process tool
//! (`db_bench`, the tuning loop) runs unchanged against a live server.

use std::io::{self, Read, Write};
use std::net::TcpStream;

use lsm_kvs::{DbStats, Error, KvEngine, Result, ScanResult, WriteBatch, WriteOptions};
use parking_lot::Mutex;

use crate::protocol::{frame, Request, Response, MAX_FRAME_LEN};

fn io_err(e: io::Error) -> Error {
    Error::io(format!("connection error: {e}")).retryable(true)
}

/// One blocking protocol connection.
pub struct Conn {
    stream: TcpStream,
    /// Bytes read off the socket but not yet consumed as frames; lets
    /// a response's header and payload (and pipelined responses that
    /// arrived in the same segment) come out of one `read(2)`.
    pending: Vec<u8>,
}

impl Conn {
    /// Dials `addr` (e.g. `"127.0.0.1:7379"`).
    ///
    /// # Errors
    ///
    /// I/O errors from the dial.
    pub fn connect(addr: &str) -> Result<Conn> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_nodelay(true).ok();
        Ok(Conn { stream, pending: Vec::new() })
    }

    /// Sends one request frame without waiting for the response —
    /// the pipelining primitive. Responses arrive in request order via
    /// [`receive`](Self::receive).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn send(&mut self, req: &Request) -> Result<()> {
        self.stream.write_all(&frame(&req.encode())).map_err(io_err)
    }

    /// Reads the next response frame; `req` gives the body shape.
    ///
    /// # Errors
    ///
    /// Transport failures, oversized frames, or undecodable responses.
    pub fn receive(&mut self, req: &Request) -> Result<Response> {
        loop {
            if self.pending.len() >= 4 {
                let len = u32::from_le_bytes(self.pending[..4].try_into().expect("4 bytes"));
                if len > MAX_FRAME_LEN {
                    return Err(Error::corruption(format!("server sent {len}-byte frame")));
                }
                let total = 4 + len as usize;
                if self.pending.len() >= total {
                    let resp = Response::decode(req, &self.pending[4..total]);
                    self.pending.drain(..total);
                    return resp;
                }
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io_err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed mid-response",
                    )))
                }
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(io_err(e)),
            }
        }
    }

    /// One request/response round trip.
    ///
    /// # Errors
    ///
    /// See [`send`](Self::send) and [`receive`](Self::receive).
    pub fn call(&mut self, req: &Request) -> Result<Response> {
        self.send(req)?;
        self.receive(req)
    }
}

/// A remote engine: implements [`KvEngine`] over a connection pool, so
/// N benchmark threads multiplex onto N lazily dialed connections.
///
/// A connection that sees any error is dropped rather than returned to
/// the pool — after a transport error its framing state is unknown.
pub struct RemoteDb {
    addr: String,
    pool: Mutex<Vec<Conn>>,
}

impl RemoteDb {
    /// Creates a client for `addr`; connections are dialed on demand.
    ///
    /// # Errors
    ///
    /// Fails fast if the server is unreachable (one probe connection,
    /// which is kept for reuse).
    pub fn connect(addr: &str) -> Result<RemoteDb> {
        let probe = Conn::connect(addr)?;
        Ok(RemoteDb {
            addr: addr.to_string(),
            pool: Mutex::new(vec![probe]),
        })
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn checkout(&self) -> Result<Conn> {
        if let Some(c) = self.pool.lock().pop() {
            return Ok(c);
        }
        Conn::connect(&self.addr)
    }

    fn call(&self, req: &Request) -> Result<Response> {
        let mut conn = self.checkout()?;
        let resp = conn.call(req)?;
        // Only a connection that completed the round trip cleanly goes
        // back to the pool.
        self.pool.lock().push(conn);
        if let Response::Err(e) = resp {
            return Err(e);
        }
        Ok(resp)
    }

    fn expect_ok(&self, req: &Request) -> Result<()> {
        match self.call(req)? {
            Response::Ok => Ok(()),
            other => Err(Error::corruption(format!("unexpected response {other:?}"))),
        }
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown_server(&self) -> Result<()> {
        self.expect_ok(&Request::Shutdown)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn ping(&self) -> Result<()> {
        self.expect_ok(&Request::Ping)
    }

    fn fetch_stats(&self) -> Result<(String, DbStats)> {
        match self.call(&Request::Stats)? {
            Response::Stats { text, stats } => Ok((text, *stats)),
            other => Err(Error::corruption(format!("unexpected response {other:?}"))),
        }
    }
}

impl KvEngine for RemoteDb {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.expect_ok(&Request::Put {
            sync: false,
            key: key.to_vec(),
            value: value.to_vec(),
        })
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        self.expect_ok(&Request::Delete { sync: false, key: key.to_vec() })
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        match self.call(&Request::Get { key: key.to_vec() })? {
            Response::Value(v) => Ok(Some(v)),
            Response::NotFound => Ok(None),
            other => Err(Error::corruption(format!("unexpected response {other:?}"))),
        }
    }

    fn write_opt(&self, wopts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        let ops = batch
            .iter()
            .map(|(ty, k, v)| {
                (ty == lsm_kvs::ValueType::Deletion, k.to_vec(), v.to_vec())
            })
            .collect();
        self.expect_ok(&Request::Batch { sync: wopts.sync, ops })
    }

    fn scan(&self, start: &[u8], count: usize) -> Result<ScanResult> {
        match self.call(&Request::Scan { start: start.to_vec(), count: count as u32 })? {
            Response::Entries(entries) => Ok(entries),
            other => Err(Error::corruption(format!("unexpected response {other:?}"))),
        }
    }

    fn flush(&self) -> Result<()> {
        self.expect_ok(&Request::Flush)
    }

    fn wait_background_idle(&self) -> Result<()> {
        self.expect_ok(&Request::WaitIdle)
    }

    fn stats(&self) -> DbStats {
        self.fetch_stats().map(|(_, s)| s).unwrap_or_else(|_| empty_stats())
    }

    fn stats_text(&self) -> String {
        self.fetch_stats()
            .map(|(t, _)| t)
            .unwrap_or_else(|e| format!("stats unavailable: {e}"))
    }
}

/// A zeroed snapshot for when the Stats RPC itself fails; `stats()` has
/// no error channel in the trait.
fn empty_stats() -> DbStats {
    DbStats {
        tickers: lsm_kvs::TickerSnapshot { values: Default::default() },
        levels: Vec::new(),
        memtable_bytes: 0,
        immutable_memtables: 0,
        block_cache: lsm_kvs::CacheStats::default(),
        block_cache_capacity: 0,
        pending_compaction_bytes: 0,
        running_background_jobs: 0,
        last_sequence: 0,
        background_retries: 0,
        wal_rotations: 0,
        manifest_resyncs: 0,
        wal_sync_retries: 0,
    }
}
