//! Wire protocol: length-prefixed binary frames.
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! +----------------+---------------------+
//! | len: u32 LE    | payload (len bytes) |
//! +----------------+---------------------+
//! ```
//!
//! A request payload starts with an opcode byte; a response payload
//! starts with a status byte. Frames are independent, so a client may
//! pipeline: write any number of request frames without waiting, then
//! read the responses, which arrive in request order (the server
//! processes each connection strictly FIFO).
//!
//! All integers are little-endian. Frames larger than [`MAX_FRAME_LEN`]
//! are a protocol error; the server answers with an error frame and
//! closes that connection (only that one — framing corruption never
//! leaks across connections).

use lsm_kvs::{
    CacheStats, DbStats, Error, ErrorKind, Result, TickerSnapshot, WriteBatch, TICKER_NAMES,
};

/// Upper bound on one frame's payload. Large enough for a sizable
/// write batch, small enough that a corrupt length prefix cannot make
/// the server allocate gigabytes.
pub const MAX_FRAME_LEN: u32 = 16 << 20;

/// Request opcodes.
pub mod op {
    /// Point read.
    pub const GET: u8 = 1;
    /// Single-key write.
    pub const PUT: u8 = 2;
    /// Single-key delete.
    pub const DELETE: u8 = 3;
    /// Atomic (per shard) write batch.
    pub const BATCH: u8 = 4;
    /// Forward range scan.
    pub const SCAN: u8 = 5;
    /// Memtable flush.
    pub const FLUSH: u8 = 6;
    /// Statistics snapshot + human-readable dump.
    pub const STATS: u8 = 7;
    /// Wait until background work drains.
    pub const WAIT_IDLE: u8 = 8;
    /// Liveness check.
    pub const PING: u8 = 9;
    /// Ask the server to shut down gracefully.
    pub const SHUTDOWN: u8 = 10;
    /// Batched point read.
    pub const MULTI_GET: u8 = 11;
    /// Live option changes (name/value pairs, atomic batch).
    pub const SET_OPTIONS: u8 = 12;
}

/// Per-frame byte budget for scan response chunks: the server cuts a
/// new `Entries` frame (with `more: true`) once the accumulated keys
/// and values cross this many bytes, so a large range scan streams in
/// bounded frames instead of materializing one giant reply.
pub const SCAN_CHUNK_BUDGET: usize = 256 << 10;

/// Response status bytes.
pub mod status {
    /// Success; body is op-specific.
    pub const OK: u8 = 0;
    /// Successful get that found no value.
    pub const NOT_FOUND: u8 = 1;
    /// Failure; body is an encoded [`lsm_kvs::Error`].
    pub const ERR: u8 = 2;
}

/// Write-request flag bits.
pub const FLAG_SYNC: u8 = 1;

/// A decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Point read of one key.
    Get {
        /// Key to look up.
        key: Vec<u8>,
    },
    /// Single-key write; `sync` asks for a durable ack.
    Put {
        /// Durable-ack flag.
        sync: bool,
        /// Key.
        key: Vec<u8>,
        /// Value.
        value: Vec<u8>,
    },
    /// Single-key delete; `sync` asks for a durable ack.
    Delete {
        /// Durable-ack flag.
        sync: bool,
        /// Key.
        key: Vec<u8>,
    },
    /// Multi-op batch, atomic per shard.
    Batch {
        /// Durable-ack flag.
        sync: bool,
        /// `(is_delete, key, value)` triples; value empty for deletes.
        ops: Vec<(bool, Vec<u8>, Vec<u8>)>,
    },
    /// Batched point read of several keys; the response carries one
    /// presence+value slot per key, in request order.
    MultiGet {
        /// Keys to look up.
        keys: Vec<Vec<u8>>,
    },
    /// Live option changes applied atomically to the running engine;
    /// the response carries one [`OptionAck`] per pair, in request
    /// order.
    SetOptions {
        /// `(name, value)` pairs; names may use registry aliases.
        changes: Vec<(String, String)>,
    },
    /// Forward scan from `start` for up to `count` live entries.
    Scan {
        /// First key (inclusive).
        start: Vec<u8>,
        /// Maximum entries returned.
        count: u32,
    },
    /// Flush memtables.
    Flush,
    /// Statistics snapshot.
    Stats,
    /// Drain background work.
    WaitIdle,
    /// Liveness check.
    Ping,
    /// Graceful shutdown.
    Shutdown,
}

/// Per-pair verdict for one `(name, value)` entry of a
/// [`Request::SetOptions`] batch. The batch is atomic: `Applied` /
/// `Unchanged` verdicts only ever appear together, and a single
/// `Rejected` pair turns every other pair into `Skipped`.
#[derive(Debug, Clone, PartialEq)]
pub enum OptionAck {
    /// The batch committed and this pair changed a value.
    Applied {
        /// Canonical option name.
        name: String,
        /// Canonical value before the change.
        from: String,
        /// Canonical value now in force.
        to: String,
    },
    /// The batch committed; this pair parsed to the value already in
    /// force.
    Unchanged {
        /// Canonical option name.
        name: String,
    },
    /// This pair is at fault (unknown name, immutable option, parse or
    /// range failure) and the batch aborted.
    Rejected {
        /// The name as requested (it may not resolve to a canonical one).
        name: String,
        /// Why the pair was rejected.
        error: Error,
    },
    /// Another pair was rejected, so this (valid) pair was not applied.
    Skipped {
        /// Canonical option name.
        name: String,
    },
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Get hit.
    Value(Vec<u8>),
    /// Get miss.
    NotFound,
    /// Ack with no body (writes, flush, ping, ...).
    Ok,
    /// MultiGet results: one slot per requested key, in request order.
    Values(Vec<Option<Vec<u8>>>),
    /// One chunk of scan results in key order. `more` announces that
    /// further chunks of the same scan follow on this connection.
    Entries {
        /// Entries in this chunk.
        entries: Vec<(Vec<u8>, Vec<u8>)>,
        /// Whether another chunk follows.
        more: bool,
    },
    /// SetOptions results: one verdict per requested pair, in request
    /// order.
    OptionAcks(Vec<OptionAck>),
    /// Stats dump: human-readable text plus the binary snapshot.
    Stats {
        /// `stats_text()` output plus the server's own section.
        text: String,
        /// Decoded [`DbStats`].
        stats: Box<DbStats>,
    },
    /// Error carried back from the engine (or the server's framing).
    Err(Error),
}

// ---------------------------------------------------------------------------
// Primitive readers/writers
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// Cursor over a payload; every read is bounds-checked so truncated or
/// malicious frames surface as decode errors, never panics.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| Error::corruption("truncated frame"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.u32()? as usize;
        // A length field cannot promise more than the frame holds;
        // checking first avoids attacker-controlled huge allocations.
        if n > self.buf.len() - self.pos {
            return Err(Error::corruption("length field exceeds frame"));
        }
        Ok(self.take(n)?.to_vec())
    }

    fn done(&self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(Error::corruption("trailing bytes in frame"))
        }
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

impl Request {
    /// Encodes the request as a frame payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Get { key } => {
                out.push(op::GET);
                put_bytes(&mut out, key);
            }
            Request::Put { sync, key, value } => {
                out.push(op::PUT);
                out.push(if *sync { FLAG_SYNC } else { 0 });
                put_bytes(&mut out, key);
                put_bytes(&mut out, value);
            }
            Request::Delete { sync, key } => {
                out.push(op::DELETE);
                out.push(if *sync { FLAG_SYNC } else { 0 });
                put_bytes(&mut out, key);
            }
            Request::Batch { sync, ops } => {
                out.push(op::BATCH);
                out.push(if *sync { FLAG_SYNC } else { 0 });
                put_u32(&mut out, ops.len() as u32);
                for (is_delete, key, value) in ops {
                    out.push(u8::from(*is_delete));
                    put_bytes(&mut out, key);
                    if !is_delete {
                        put_bytes(&mut out, value);
                    }
                }
            }
            Request::MultiGet { keys } => {
                out.push(op::MULTI_GET);
                put_u32(&mut out, keys.len() as u32);
                for key in keys {
                    put_bytes(&mut out, key);
                }
            }
            Request::SetOptions { changes } => {
                out.push(op::SET_OPTIONS);
                put_u32(&mut out, changes.len() as u32);
                for (name, value) in changes {
                    put_bytes(&mut out, name.as_bytes());
                    put_bytes(&mut out, value.as_bytes());
                }
            }
            Request::Scan { start, count } => {
                out.push(op::SCAN);
                put_bytes(&mut out, start);
                put_u32(&mut out, *count);
            }
            Request::Flush => out.push(op::FLUSH),
            Request::Stats => out.push(op::STATS),
            Request::WaitIdle => out.push(op::WAIT_IDLE),
            Request::Ping => out.push(op::PING),
            Request::Shutdown => out.push(op::SHUTDOWN),
        }
        out
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Corruption`] on truncation, trailing bytes, or an
    /// unknown opcode.
    pub fn decode(payload: &[u8]) -> Result<Request> {
        let mut c = Cur::new(payload);
        let op = c.u8()?;
        let req = match op {
            op::GET => Request::Get { key: c.bytes()? },
            op::PUT => {
                let sync = c.u8()? & FLAG_SYNC != 0;
                Request::Put { sync, key: c.bytes()?, value: c.bytes()? }
            }
            op::DELETE => {
                let sync = c.u8()? & FLAG_SYNC != 0;
                Request::Delete { sync, key: c.bytes()? }
            }
            op::BATCH => {
                let sync = c.u8()? & FLAG_SYNC != 0;
                let n = c.u32()? as usize;
                let mut ops = Vec::new();
                for _ in 0..n {
                    let is_delete = match c.u8()? {
                        0 => false,
                        1 => true,
                        other => {
                            return Err(Error::corruption(format!("bad batch op {other}")))
                        }
                    };
                    let key = c.bytes()?;
                    let value = if is_delete { Vec::new() } else { c.bytes()? };
                    ops.push((is_delete, key, value));
                }
                Request::Batch { sync, ops }
            }
            op::MULTI_GET => {
                let n = c.u32()? as usize;
                // Each key costs at least a 4-byte length on the wire;
                // checking first bounds the allocation.
                if n > (payload.len() - c.pos) / 4 + 1 {
                    return Err(Error::corruption("key count exceeds frame"));
                }
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(c.bytes()?);
                }
                Request::MultiGet { keys }
            }
            op::SET_OPTIONS => {
                let n = c.u32()? as usize;
                // Each pair costs at least two 4-byte length fields on
                // the wire; checking first bounds the allocation.
                if n > (payload.len() - c.pos) / 8 + 1 {
                    return Err(Error::corruption("change count exceeds frame"));
                }
                let mut changes = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = String::from_utf8_lossy(&c.bytes()?).into_owned();
                    let value = String::from_utf8_lossy(&c.bytes()?).into_owned();
                    changes.push((name, value));
                }
                Request::SetOptions { changes }
            }
            op::SCAN => Request::Scan { start: c.bytes()?, count: c.u32()? },
            op::FLUSH => Request::Flush,
            op::STATS => Request::Stats,
            op::WAIT_IDLE => Request::WaitIdle,
            op::PING => Request::Ping,
            op::SHUTDOWN => Request::Shutdown,
            other => return Err(Error::corruption(format!("unknown opcode {other}"))),
        };
        c.done()?;
        Ok(req)
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

fn encode_error(out: &mut Vec<u8>, e: &Error) {
    out.push(status::ERR);
    encode_error_body(out, e);
}

/// Encodes an error without the status byte (shared by the top-level
/// error response and per-pair `OptionAck::Rejected` entries).
fn encode_error_body(out: &mut Vec<u8>, e: &Error) {
    out.push(error_kind_code(e.kind()));
    out.push(u8::from(e.is_retryable()));
    put_bytes(out, e.message().as_bytes());
}

fn error_kind_code(kind: ErrorKind) -> u8 {
    match kind {
        ErrorKind::Io => 0,
        ErrorKind::Corruption => 1,
        ErrorKind::InvalidArgument => 2,
        ErrorKind::ShuttingDown => 3,
        ErrorKind::NotSupported => 4,
        ErrorKind::Busy => 5,
        // The enum is non_exhaustive; map future kinds to Io so old
        // clients still see *an* error rather than a decode failure.
        _ => 0,
    }
}

fn decode_error(c: &mut Cur<'_>) -> Result<Error> {
    let kind = c.u8()?;
    let retryable = c.u8()? != 0;
    let msg = String::from_utf8_lossy(&c.bytes()?).into_owned();
    let e = match kind {
        0 => Error::io(msg),
        1 => Error::corruption(msg),
        2 => Error::invalid_argument(msg),
        3 => Error::shutting_down(),
        4 => Error::not_supported(msg),
        5 => Error::busy(msg),
        other => return Err(Error::corruption(format!("unknown error kind {other}"))),
    };
    Ok(e.retryable(retryable))
}

impl Response {
    /// Encodes the response as a frame payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Value(v) => {
                out.push(status::OK);
                put_bytes(&mut out, v);
            }
            Response::NotFound => out.push(status::NOT_FOUND),
            Response::Ok => out.push(status::OK),
            Response::Values(values) => {
                out.push(status::OK);
                put_u32(&mut out, values.len() as u32);
                for v in values {
                    match v {
                        Some(v) => {
                            out.push(1);
                            put_bytes(&mut out, v);
                        }
                        None => out.push(0),
                    }
                }
            }
            Response::Entries { entries, more } => {
                out.push(status::OK);
                out.push(u8::from(*more));
                put_u32(&mut out, entries.len() as u32);
                for (k, v) in entries {
                    put_bytes(&mut out, k);
                    put_bytes(&mut out, v);
                }
            }
            Response::OptionAcks(acks) => {
                out.push(status::OK);
                put_u32(&mut out, acks.len() as u32);
                for ack in acks {
                    match ack {
                        OptionAck::Applied { name, from, to } => {
                            out.push(0);
                            put_bytes(&mut out, name.as_bytes());
                            put_bytes(&mut out, from.as_bytes());
                            put_bytes(&mut out, to.as_bytes());
                        }
                        OptionAck::Unchanged { name } => {
                            out.push(1);
                            put_bytes(&mut out, name.as_bytes());
                        }
                        OptionAck::Rejected { name, error } => {
                            out.push(2);
                            put_bytes(&mut out, name.as_bytes());
                            encode_error_body(&mut out, error);
                        }
                        OptionAck::Skipped { name } => {
                            out.push(3);
                            put_bytes(&mut out, name.as_bytes());
                        }
                    }
                }
            }
            Response::Stats { text, stats } => {
                out.push(status::OK);
                put_bytes(&mut out, text.as_bytes());
                encode_db_stats(&mut out, stats);
            }
            Response::Err(e) => encode_error(&mut out, e),
        }
        out
    }

    /// Decodes a frame payload; `req` disambiguates the body shape of
    /// `OK` responses (the wire carries no opcode echo).
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Corruption`] on truncation or malformed bodies.
    pub fn decode(req: &Request, payload: &[u8]) -> Result<Response> {
        let mut c = Cur::new(payload);
        let resp = match c.u8()? {
            status::NOT_FOUND => Response::NotFound,
            status::ERR => Response::Err(decode_error(&mut c)?),
            status::OK => match req {
                Request::Get { .. } => Response::Value(c.bytes()?),
                Request::MultiGet { .. } => {
                    let n = c.u32()? as usize;
                    if n > (payload.len() - c.pos) + 1 {
                        return Err(Error::corruption("value count exceeds frame"));
                    }
                    let mut values = Vec::with_capacity(n);
                    for _ in 0..n {
                        values.push(match c.u8()? {
                            0 => None,
                            1 => Some(c.bytes()?),
                            other => {
                                return Err(Error::corruption(format!(
                                    "bad presence byte {other}"
                                )))
                            }
                        });
                    }
                    Response::Values(values)
                }
                Request::Scan { .. } => {
                    let more = match c.u8()? {
                        0 => false,
                        1 => true,
                        other => {
                            return Err(Error::corruption(format!("bad more flag {other}")))
                        }
                    };
                    let n = c.u32()? as usize;
                    let mut entries = Vec::new();
                    for _ in 0..n {
                        let k = c.bytes()?;
                        let v = c.bytes()?;
                        entries.push((k, v));
                    }
                    Response::Entries { entries, more }
                }
                Request::SetOptions { .. } => {
                    let n = c.u32()? as usize;
                    // Each ack costs at least a tag byte plus a 4-byte
                    // name length; checking first bounds the allocation.
                    if n > (payload.len() - c.pos) / 5 + 1 {
                        return Err(Error::corruption("ack count exceeds frame"));
                    }
                    let mut acks = Vec::with_capacity(n);
                    for _ in 0..n {
                        let tag = c.u8()?;
                        let name = String::from_utf8_lossy(&c.bytes()?).into_owned();
                        acks.push(match tag {
                            0 => OptionAck::Applied {
                                name,
                                from: String::from_utf8_lossy(&c.bytes()?).into_owned(),
                                to: String::from_utf8_lossy(&c.bytes()?).into_owned(),
                            },
                            1 => OptionAck::Unchanged { name },
                            2 => OptionAck::Rejected { name, error: decode_error(&mut c)? },
                            3 => OptionAck::Skipped { name },
                            other => {
                                return Err(Error::corruption(format!("bad ack tag {other}")))
                            }
                        });
                    }
                    Response::OptionAcks(acks)
                }
                Request::Stats => {
                    let text = String::from_utf8_lossy(&c.bytes()?).into_owned();
                    let stats = Box::new(decode_db_stats(&mut c)?);
                    Response::Stats { text, stats }
                }
                _ => Response::Ok,
            },
            other => return Err(Error::corruption(format!("unknown status {other}"))),
        };
        c.done()?;
        Ok(resp)
    }
}

/// Converts decoded batch ops back into a [`WriteBatch`].
pub fn ops_to_batch(ops: &[(bool, Vec<u8>, Vec<u8>)]) -> WriteBatch {
    let mut batch = WriteBatch::new();
    for (is_delete, key, value) in ops {
        if *is_delete {
            batch.delete(key);
        } else {
            batch.put(key, value);
        }
    }
    batch
}

// ---------------------------------------------------------------------------
// DbStats over the wire
// ---------------------------------------------------------------------------

fn encode_db_stats(out: &mut Vec<u8>, s: &DbStats) {
    put_u32(out, TICKER_NAMES.len() as u32);
    for v in &s.tickers.values {
        put_u64(out, *v);
    }
    put_u32(out, s.levels.len() as u32);
    for (files, bytes) in &s.levels {
        put_u64(out, *files as u64);
        put_u64(out, *bytes);
    }
    put_u64(out, s.memtable_bytes);
    put_u64(out, s.immutable_memtables as u64);
    put_u64(out, s.block_cache.hits);
    put_u64(out, s.block_cache.misses);
    put_u64(out, s.block_cache.inserts);
    put_u64(out, s.block_cache.evictions);
    put_u64(out, s.block_cache_capacity);
    put_u64(out, s.pending_compaction_bytes);
    put_u64(out, s.running_background_jobs as u64);
    put_u64(out, s.last_sequence);
    put_u64(out, s.background_retries);
    put_u64(out, s.wal_rotations);
    put_u64(out, s.manifest_resyncs);
    put_u64(out, s.wal_sync_retries);
}

fn decode_db_stats(c: &mut Cur<'_>) -> Result<DbStats> {
    let n = c.u32()? as usize;
    if n != TICKER_NAMES.len() {
        return Err(Error::corruption(format!(
            "peer has {n} tickers, this build has {}",
            TICKER_NAMES.len()
        )));
    }
    let mut tickers = TickerSnapshot { values: Default::default() };
    for v in tickers.values.iter_mut() {
        *v = c.u64()?;
    }
    let levels_n = c.u32()? as usize;
    if levels_n > 64 {
        return Err(Error::corruption("implausible level count"));
    }
    let mut levels = Vec::with_capacity(levels_n);
    for _ in 0..levels_n {
        let files = c.u64()? as usize;
        let bytes = c.u64()?;
        levels.push((files, bytes));
    }
    Ok(DbStats {
        tickers,
        levels,
        memtable_bytes: c.u64()?,
        immutable_memtables: c.u64()? as usize,
        block_cache: CacheStats {
            hits: c.u64()?,
            misses: c.u64()?,
            inserts: c.u64()?,
            evictions: c.u64()?,
        },
        block_cache_capacity: c.u64()?,
        pending_compaction_bytes: c.u64()?,
        running_background_jobs: c.u64()? as usize,
        last_sequence: c.u64()?,
        background_retries: c.u64()?,
        wal_rotations: c.u64()?,
        manifest_resyncs: c.u64()?,
        wal_sync_retries: c.u64()?,
    })
}

// ---------------------------------------------------------------------------
// Frame I/O over std streams
// ---------------------------------------------------------------------------

/// Prepends the length prefix to a payload.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(payload);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let enc = req.encode();
        assert_eq!(Request::decode(&enc).unwrap(), req);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Get { key: b"k".to_vec() });
        roundtrip_req(Request::Put { sync: true, key: b"k".to_vec(), value: b"v".to_vec() });
        roundtrip_req(Request::Delete { sync: false, key: b"k".to_vec() });
        roundtrip_req(Request::Batch {
            sync: true,
            ops: vec![
                (false, b"a".to_vec(), b"1".to_vec()),
                (true, b"b".to_vec(), Vec::new()),
            ],
        });
        roundtrip_req(Request::MultiGet {
            keys: vec![b"a".to_vec(), Vec::new(), b"long-key".to_vec()],
        });
        roundtrip_req(Request::Scan { start: b"s".to_vec(), count: 10 });
        roundtrip_req(Request::SetOptions {
            changes: vec![
                ("write_buffer_size".to_string(), "32MB".to_string()),
                ("cache_size".to_string(), String::new()),
            ],
        });
        roundtrip_req(Request::Flush);
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::WaitIdle);
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Shutdown);
    }

    #[test]
    fn response_roundtrips() {
        let get = Request::Get { key: b"k".to_vec() };
        for resp in [
            Response::Value(b"v".to_vec()),
            Response::NotFound,
            Response::Err(Error::invalid_argument("nope")),
        ] {
            let enc = resp.encode();
            assert_eq!(Response::decode(&get, &enc).unwrap(), resp);
        }
        let scan = Request::Scan { start: Vec::new(), count: 5 };
        for more in [false, true] {
            let entries = Response::Entries {
                entries: vec![(b"a".to_vec(), b"1".to_vec())],
                more,
            };
            assert_eq!(Response::decode(&scan, &entries.encode()).unwrap(), entries);
        }
        let mget = Request::MultiGet { keys: vec![b"a".to_vec(), b"b".to_vec()] };
        let values = Response::Values(vec![Some(b"1".to_vec()), None]);
        assert_eq!(Response::decode(&mget, &values.encode()).unwrap(), values);
    }

    #[test]
    fn truncated_frames_error_not_panic() {
        let full = Request::Put { sync: true, key: b"key".to_vec(), value: b"value".to_vec() }
            .encode();
        for cut in 0..full.len() {
            let _ = Request::decode(&full[..cut]); // must not panic
        }
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[200]).is_err(), "unknown opcode");
        // Length field promising more than the frame holds.
        let mut lying = vec![op::GET];
        lying.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode(&lying).is_err());
    }

    #[test]
    fn truncated_multiget_frames_error_not_panic() {
        let req = Request::MultiGet {
            keys: vec![b"alpha".to_vec(), Vec::new(), b"gamma-key".to_vec()],
        };
        let full = req.encode();
        for cut in 0..full.len() {
            let _ = Request::decode(&full[..cut]); // must not panic
        }
        // Key count promising more keys than the frame can hold.
        let mut lying = vec![op::MULTI_GET];
        lying.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode(&lying).is_err());

        let resp = Response::Values(vec![Some(b"v1".to_vec()), None, Some(Vec::new())]);
        let full = resp.encode();
        for cut in 0..full.len() {
            let _ = Response::decode(&req, &full[..cut]); // must not panic
        }
        // Value count promising more slots than the frame holds.
        let mut lying = vec![status::OK];
        lying.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Response::decode(&req, &lying).is_err());
        // Presence byte outside {0, 1}.
        let bad = [status::OK, 1, 0, 0, 0, 7];
        assert!(Response::decode(&req, &bad).is_err());
    }

    #[test]
    fn truncated_scan_chunk_frames_error_not_panic() {
        let req = Request::Scan { start: b"s".to_vec(), count: 100 };
        let resp = Response::Entries {
            entries: vec![(b"k1".to_vec(), b"v1".to_vec()), (b"k2".to_vec(), Vec::new())],
            more: true,
        };
        let full = resp.encode();
        for cut in 0..full.len() {
            let _ = Response::decode(&req, &full[..cut]); // must not panic
        }
        // More-flag outside {0, 1}.
        let bad = [status::OK, 9, 0, 0, 0, 0];
        assert!(Response::decode(&req, &bad).is_err());
    }

    #[test]
    fn set_options_acks_roundtrip() {
        let req = Request::SetOptions {
            changes: vec![
                ("write_buffer_size".to_string(), "32MB".to_string()),
                ("compression".to_string(), "snappy".to_string()),
                ("num_shards".to_string(), "4".to_string()),
                ("bogus".to_string(), "1".to_string()),
            ],
        };
        let acks = Response::OptionAcks(vec![
            OptionAck::Applied {
                name: "write_buffer_size".to_string(),
                from: "67108864".to_string(),
                to: "33554432".to_string(),
            },
            OptionAck::Unchanged { name: "compression".to_string() },
            OptionAck::Rejected {
                name: "num_shards".to_string(),
                error: Error::invalid_argument("immutable").retryable(false),
            },
            OptionAck::Skipped { name: "bogus".to_string() },
        ]);
        assert_eq!(Response::decode(&req, &acks.encode()).unwrap(), acks);
        // A plain error reply must also decode against this request.
        let err = Response::Err(Error::not_supported("no live options"));
        assert_eq!(Response::decode(&req, &err.encode()).unwrap(), err);
    }

    #[test]
    fn truncated_set_options_frames_error_not_panic() {
        let req = Request::SetOptions {
            changes: vec![
                ("write_buffer_size".to_string(), "64MB".to_string()),
                (String::new(), String::new()),
                ("level0_slowdown_writes_trigger".to_string(), "24".to_string()),
            ],
        };
        let full = req.encode();
        for cut in 0..full.len() {
            let _ = Request::decode(&full[..cut]); // must not panic
        }
        // Change count promising more pairs than the frame can hold.
        let mut lying = vec![op::SET_OPTIONS];
        lying.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode(&lying).is_err());

        let resp = Response::OptionAcks(vec![
            OptionAck::Applied {
                name: "write_buffer_size".to_string(),
                from: "67108864".to_string(),
                to: "67108865".to_string(),
            },
            OptionAck::Rejected {
                name: "num_shards".to_string(),
                error: Error::invalid_argument("immutable"),
            },
            OptionAck::Skipped { name: "level0_slowdown_writes_trigger".to_string() },
            OptionAck::Unchanged { name: "compression".to_string() },
        ]);
        let full = resp.encode();
        for cut in 0..full.len() {
            let _ = Response::decode(&req, &full[..cut]); // must not panic
        }
        // Ack count promising more entries than the frame holds.
        let mut lying = vec![status::OK];
        lying.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Response::decode(&req, &lying).is_err());
        // Ack tag outside {0, 1, 2, 3}.
        let bad = [status::OK, 1, 0, 0, 0, 9, 0, 0, 0, 0];
        assert!(Response::decode(&req, &bad).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut enc = Request::Ping.encode();
        enc.push(0);
        assert!(Request::decode(&enc).is_err());
    }

    #[test]
    fn error_roundtrip_preserves_kind_and_retryability() {
        let e = Error::io("disk on fire").retryable(true);
        let resp = Response::Err(e);
        let dec = Response::decode(&Request::Flush, &resp.encode()).unwrap();
        let Response::Err(d) = dec else { panic!("expected error") };
        assert_eq!(d.kind(), ErrorKind::Io);
        assert!(d.is_retryable());
        assert!(d.message().contains("disk on fire"));
    }
}
