//! `kv_server` — serve an `lsm-kvs` database over TCP.
//!
//! ```text
//! kv_server --db /path/to/db [--listen 127.0.0.1:7379] [--shards N]
//!           [--cores N] [--mem-gib N] [--option name=value]...
//!           [--options-file FILE] [--split-point KEY]...
//! kv_server --shutdown host:port    # ask a running server to drain and exit
//! kv_server --set-options host:port name=value[,name=value]...
//!                                   # apply a live option batch (SetOptions RPC)
//! kv_server --stats host:port       # print the server's stats dump
//! ```
//!
//! The database opens in real-concurrency mode (wall clock, OS threads)
//! on real files. The process runs until a Shutdown RPC arrives
//! (`kv_server --shutdown`), then drains in-flight requests, closes the
//! engine, and exits.

use std::sync::Arc;

use hw_sim::HardwareEnv;
use lsm_kvs::options::Options;
use lsm_kvs::vfs::StdVfs;
use lsm_kvs::{Db, KvEngine, ShardedDb};
use lsm_server::{serve, RemoteDb};

fn main() {
    if let Err(e) = run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        eprintln!("kv_server: {e}");
        std::process::exit(1);
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut listen = "127.0.0.1:7379".to_string();
    let mut db_dir: Option<String> = None;
    let mut shards: i64 = 1;
    let mut cores = 4usize;
    let mut mem_gib = 8u64;
    let mut opts = Options::default();
    let mut options_file: Option<String> = None;
    let mut split_points: Vec<Vec<u8>> = Vec::new();
    let mut shutdown_addr: Option<String> = None;
    let mut set_options_addr: Option<(String, String)> = None;
    let mut stats_addr: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<String, Box<dyn std::error::Error>> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("missing value for {}", args[*i - 1]).into())
        };
        match args[i].as_str() {
            "--listen" => listen = take(&mut i)?,
            "--db" => db_dir = Some(take(&mut i)?),
            "--shards" => shards = take(&mut i)?.parse()?,
            "--cores" => cores = take(&mut i)?.parse()?,
            "--mem-gib" => mem_gib = take(&mut i)?.parse()?,
            "--option" => {
                let kv = take(&mut i)?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--option wants name=value, got {kv}"))?;
                opts.set_by_name(k, v)?;
            }
            "--options-file" => options_file = Some(take(&mut i)?),
            "--split-point" => split_points.push(take(&mut i)?.into_bytes()),
            "--shutdown" => shutdown_addr = Some(take(&mut i)?),
            "--set-options" => {
                let addr = take(&mut i)?;
                let batch = take(&mut i)?;
                set_options_addr = Some((addr, batch));
            }
            "--stats" => stats_addr = Some(take(&mut i)?),
            "--help" | "-h" => {
                println!(
                    "usage: kv_server --db DIR [--listen ADDR] [--shards N] [--cores N] \
                     [--mem-gib N] [--option k=v]... [--options-file f] \
                     [--split-point KEY]...\n       kv_server --shutdown ADDR\
                     \n       kv_server --set-options ADDR k=v[,k=v]...\
                     \n       kv_server --stats ADDR"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag: {other}").into()),
        }
        i += 1;
    }

    if let Some(addr) = shutdown_addr {
        let client = RemoteDb::connect(&addr)?;
        client.shutdown_server()?;
        eprintln!("kv_server at {addr} acknowledged shutdown");
        return Ok(());
    }

    if let Some((addr, batch)) = set_options_addr {
        let mut pairs: Vec<(String, String)> = Vec::new();
        for item in batch.split(',').filter(|s| !s.is_empty()) {
            let (k, v) = item
                .split_once('=')
                .ok_or_else(|| format!("--set-options wants k=v[,k=v]..., got {item}"))?;
            pairs.push((k.to_string(), v.to_string()));
        }
        if pairs.is_empty() {
            return Err("--set-options: empty batch".into());
        }
        let client = RemoteDb::connect(&addr)?;
        let borrowed: Vec<(&str, &str)> =
            pairs.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        let acks = client.set_options_detailed(&borrowed)?;
        let mut any_rejected = false;
        for ack in &acks {
            match ack {
                lsm_server::OptionAck::Applied { name, from, to } => {
                    println!("applied   {name}: {from} -> {to}");
                }
                lsm_server::OptionAck::Unchanged { name } => {
                    println!("unchanged {name}");
                }
                lsm_server::OptionAck::Rejected { name, error } => {
                    any_rejected = true;
                    println!("rejected  {name}: {error}");
                }
                lsm_server::OptionAck::Skipped { name } => {
                    println!("skipped   {name} (another pair in the batch was rejected)");
                }
            }
        }
        if any_rejected {
            return Err("batch not applied (see rejected pairs above)".into());
        }
        return Ok(());
    }

    if let Some(addr) = stats_addr {
        let client = RemoteDb::connect(&addr)?;
        let (text, _) = client.fetch_stats()?;
        println!("{text}");
        return Ok(());
    }

    if let Some(path) = options_file {
        let text = std::fs::read_to_string(path)?;
        let outcome = lsm_kvs::options::ini::apply_ini(&mut opts, &text);
        for (k, v, why) in &outcome.rejected {
            eprintln!("options-file: ignored {k}={v}: {why}");
        }
    }

    let dir = db_dir.ok_or("--db DIR is required (use --help)")?;
    let env = HardwareEnv::builder()
        .cores(cores)
        .memory_gib(mem_gib)
        .device(hw_sim::DeviceModel::nvme_ssd())
        .build_wall();
    let vfs = Arc::new(StdVfs::new(&dir)?);
    let engine: Arc<dyn KvEngine> = if shards > 1 {
        let mut sopts = opts;
        sopts.num_shards = shards;
        let mut builder = ShardedDb::builder(sopts).env(&env);
        if !split_points.is_empty() {
            builder = builder.split_points(split_points);
        }
        Arc::new(builder.vfs(vfs).open()?)
    } else {
        Arc::new(Db::builder(opts).env(&env).vfs(vfs).open()?)
    };

    let mut handle = serve(engine, &listen)?;
    eprintln!(
        "kv_server listening on {} (db={dir}, shards={shards}); \
         stop with: kv_server --shutdown {}",
        handle.local_addr(),
        handle.local_addr()
    );
    handle.wait_for_shutdown_request();
    eprintln!("kv_server: shutdown requested, draining...");
    handle.shutdown();
    eprintln!("kv_server: drained; {}", handle.stats().render().trim_start());
    Ok(())
}
