//! # lsm-server — network serving layer for `lsm-kvs`
//!
//! Turns the engine into a service: `kv_server` listens on a TCP port
//! and speaks a length-prefixed binary protocol
//! (Get/MultiGet/Put/Delete/Batch/Scan/Flush/Stats and control ops),
//! served by an event-driven readiness loop (a small pool of poller
//! threads over non-blocking sockets) on top of the
//! [`lsm_kvs::KvEngine`] trait — a plain [`lsm_kvs::Db`] or a sharded
//! [`lsm_kvs::ShardedDb`] serve identically.
//!
//! Properties the protocol and server guarantee:
//!
//! - **Pipelining**: each connection is processed strictly FIFO, so a
//!   client may stream many request frames before reading responses.
//! - **Batched reads**: `MultiGet` carries many keys in one frame and
//!   runs them through the engine's amortized `multi_get`; the client
//!   also coalesces concurrent single-key gets into MultiGet frames
//!   (the read-side analog of group commit).
//! - **Streaming scans**: scan replies arrive as bounded chunks
//!   ([`protocol::SCAN_CHUNK_BUDGET`]), produced only as the socket
//!   drains, so a huge range scan cannot balloon server memory.
//! - **Backpressure**: while the engine's write controller reports a
//!   stopped regime, the loops stop reading sockets and let TCP flow
//!   control push the stall to clients.
//! - **Durable acks**: a write is acknowledged only after the engine
//!   commits it under the request's sync flag; graceful shutdown drains
//!   in-flight requests before releasing the engine.
//!
//! The [`client::RemoteDb`] implements [`lsm_kvs::KvEngine`], so
//! benchmarks and the tuning loop run unchanged against a live server
//! (`db_bench --remote host:port`).

#![warn(missing_docs)]

pub mod client;
pub mod poll;
pub mod protocol;
pub mod server;

pub use client::{Conn, RemoteDb};
pub use protocol::{OptionAck, Request, Response, MAX_FRAME_LEN, SCAN_CHUNK_BUDGET};
pub use server::{serve, ServerHandle, ServerStats};
