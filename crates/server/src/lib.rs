//! # lsm-server — network serving layer for `lsm-kvs`
//!
//! Turns the engine into a service: `kv_server` listens on a TCP port
//! and speaks a length-prefixed binary protocol
//! (Get/Put/Delete/Batch/Scan/Flush/Stats and control ops), with
//! thread-per-connection workers over the [`lsm_kvs::KvEngine`] trait —
//! a plain [`lsm_kvs::Db`] or a sharded [`lsm_kvs::ShardedDb`] serve
//! identically.
//!
//! Three properties the protocol and server guarantee:
//!
//! - **Pipelining**: each connection is processed strictly FIFO, so a
//!   client may stream many request frames before reading responses.
//! - **Backpressure**: while the engine's write controller reports a
//!   stopped regime, workers stop reading their sockets and let TCP
//!   flow control push the stall to clients.
//! - **Durable acks**: a write is acknowledged only after the engine
//!   commits it under the request's sync flag; graceful shutdown drains
//!   in-flight requests before releasing the engine.
//!
//! The [`client::RemoteDb`] implements [`lsm_kvs::KvEngine`], so
//! benchmarks and the tuning loop run unchanged against a live server
//! (`db_bench --remote host:port`).

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Conn, RemoteDb};
pub use protocol::{Request, Response, MAX_FRAME_LEN};
pub use server::{serve, ServerHandle, ServerStats};
