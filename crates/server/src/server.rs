//! The TCP server: an event-driven readiness loop over a [`KvEngine`].
//!
//! A small pool of event-loop threads (one [`Poller`] each) serves all
//! connections over non-blocking sockets, so thousands of connections
//! do not mean thousands of threads. The accept thread hands each new
//! connection to a loop round-robin.
//!
//! Each connection is still served strictly in order — frames are
//! parsed, executed, and answered FIFO — so pipelined clients get
//! responses in request order. Scans stream: the reply is produced in
//! bounded chunks (see [`SCAN_CHUNK_BUDGET`]), and the next chunk is
//! only built once the previous one has drained into the socket, so a
//! huge range scan never balloons the reply buffer.
//!
//! Backpressure: while the engine's write controller reports `Stopped`,
//! the loops stop reading sockets entirely (pending replies still
//! flush). The kernel receive buffers fill, TCP advertises a zero
//! window, and the stall propagates to clients instead of ballooning
//! server memory.
//!
//! Shutdown is graceful: the accept loop closes, buffered complete
//! frames are executed and answered, partially received frames get
//! [`DRAIN_GRACE`] to finish arriving (then are served too), replies are
//! flushed, and only then do the loops exit. Because a write is acked
//! only after `write_opt` returns, nothing is ever acked that the
//! engine has not committed under the request's durability flag.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lsm_kvs::{KvEngine, WriteOptions, WriteRegime};
use parking_lot::Mutex;

use crate::poll::{PollEvent, Poller, WAKE_TOKEN};
use crate::protocol::{
    frame, ops_to_batch, OptionAck, Request, Response, MAX_FRAME_LEN, SCAN_CHUNK_BUDGET,
};

/// Upper bound on the event-loop wait; also how often the shutdown flag
/// is rechecked when nothing happens.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Sleep slice while the engine reports a stopped write regime.
const STALL_BACKOFF: Duration = Duration::from_millis(2);

/// How long a loop trusts its cached write-regime reading before
/// consulting the engine again.
const REGIME_RECHECK: Duration = Duration::from_millis(1);

/// How long a partially received frame may keep trickling in once
/// shutdown has been requested. Bounds drain time against a client
/// that sent half a frame and went silent.
const DRAIN_GRACE: Duration = Duration::from_secs(1);

/// A connection whose pending reply makes no socket progress for this
/// long is dropped — a client that stops reading cannot pin a loop (and
/// with it, shutdown) forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Stop executing buffered requests for a connection once its unsent
/// reply bytes cross this mark; intake resumes when the socket drains.
const OUTBUF_HIGH_WATER: usize = 1 << 20;

/// Per-event cap on bytes read from one socket, for fairness across
/// connections on the same loop (level-triggered polling re-fires).
const READ_QUANTUM: usize = 256 * 1024;

/// Upper bound on event-loop threads; the accept thread deals
/// connections round-robin across them.
const MAX_EVENT_LOOPS: usize = 4;

/// Per-server counters, rendered as a `** Server Stats **` section that
/// the Stats RPC appends to the engine's `stats_text()` dump.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections_accepted: AtomicU64,
    /// Connections currently being served.
    pub connections_active: AtomicU64,
    /// Requests executed, by outcome.
    pub requests_ok: AtomicU64,
    /// Requests that returned an error response.
    pub requests_err: AtomicU64,
    /// Protocol violations that closed a connection.
    pub protocol_errors: AtomicU64,
    /// Times a loop paused socket intake because the engine reported
    /// a stopped write regime.
    pub backpressure_stalls: AtomicU64,
    /// Payload bytes received (excluding length prefixes).
    pub bytes_received: AtomicU64,
    /// Payload bytes sent (excluding length prefixes).
    pub bytes_sent: AtomicU64,
    /// Scan response chunks streamed.
    pub scan_chunks_sent: AtomicU64,
    /// High-water mark of any connection's buffered reply bytes; with
    /// streaming scans this stays near [`SCAN_CHUNK_BUDGET`] no matter
    /// how large the scanned range is.
    pub scan_peak_reply_bytes: AtomicU64,
}

impl ServerStats {
    /// Renders the section appended to the engine dump.
    pub fn render(&self) -> String {
        format!(
            "\n** Server Stats **\n\
             connections_accepted: {}  connections_active: {}\n\
             requests_ok: {}  requests_err: {}  protocol_errors: {}\n\
             backpressure_stalls: {}  bytes_received: {}  bytes_sent: {}\n\
             scan_chunks_sent: {}  scan_peak_reply_bytes: {}\n",
            self.connections_accepted.load(Ordering::Relaxed),
            self.connections_active.load(Ordering::Relaxed),
            self.requests_ok.load(Ordering::Relaxed),
            self.requests_err.load(Ordering::Relaxed),
            self.protocol_errors.load(Ordering::Relaxed),
            self.backpressure_stalls.load(Ordering::Relaxed),
            self.bytes_received.load(Ordering::Relaxed),
            self.bytes_sent.load(Ordering::Relaxed),
            self.scan_chunks_sent.load(Ordering::Relaxed),
            self.scan_peak_reply_bytes.load(Ordering::Relaxed),
        )
    }
}

struct Shared {
    engine: Arc<dyn KvEngine>,
    stats: ServerStats,
    shutdown: AtomicBool,
}

/// Hand-off point between the accept thread and one event loop.
struct LoopShared {
    poller: Poller,
    /// Connections accepted but not yet adopted by the loop.
    inject: Mutex<Vec<TcpStream>>,
}

/// A running server; dropping it (or calling [`shutdown`](Self::shutdown))
/// drains and stops it.
pub struct ServerHandle {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    loops: Vec<Arc<LoopShared>>,
}

impl ServerHandle {
    /// The address the server is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether shutdown has been requested (e.g. via the Shutdown RPC).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until a shutdown request arrives (Shutdown RPC or another
    /// thread calling [`shutdown`](Self::shutdown)).
    pub fn wait_for_shutdown_request(&self) {
        while !self.is_shutting_down() {
            std::thread::sleep(POLL_INTERVAL);
        }
    }

    /// Server counters (live).
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Stops accepting, drains in-flight requests, and joins every
    /// event loop. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a dummy connection; it may
        // already have exited, so failures are fine.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for l in &self.loops {
            let _ = l.poller.wake();
        }
        let workers = std::mem::take(&mut *self.workers.lock());
        for w in workers {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` and starts serving `engine`.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable, or a poller
/// setup error.
pub fn serve(engine: Arc<dyn KvEngine>, addr: &str) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        engine,
        stats: ServerStats::default(),
        shutdown: AtomicBool::new(false),
    });

    let n_loops = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(MAX_EVENT_LOOPS);
    let mut loops = Vec::with_capacity(n_loops);
    for _ in 0..n_loops {
        loops.push(Arc::new(LoopShared {
            poller: Poller::new()?,
            inject: Mutex::new(Vec::new()),
        }));
    }

    let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let mut w = workers.lock();
        for (i, l) in loops.iter().enumerate() {
            let s = Arc::clone(&shared);
            let l = Arc::clone(l);
            w.push(
                std::thread::Builder::new()
                    .name(format!("kv-loop-{i}"))
                    .spawn(move || event_loop(&s, &l))?,
            );
        }
    }

    let accept_shared = Arc::clone(&shared);
    let accept_loops = loops.clone();
    let accept_thread = std::thread::Builder::new()
        .name("kv-accept".into())
        .spawn(move || {
            let mut next = 0usize;
            for conn in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                stream.set_nodelay(true).ok();
                accept_shared
                    .stats
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
                accept_shared
                    .stats
                    .connections_active
                    .fetch_add(1, Ordering::Relaxed);
                let l = &accept_loops[next % accept_loops.len()];
                next += 1;
                l.inject.lock().push(stream);
                let _ = l.poller.wake();
            }
        })?;

    Ok(ServerHandle {
        shared,
        local_addr,
        accept_thread: Some(accept_thread),
        workers,
        loops,
    })
}

// ---------------------------------------------------------------------------
// Connection state
// ---------------------------------------------------------------------------

/// A suspended streaming scan; the next chunk re-enters the engine from
/// the successor of the last delivered key. Each chunk reads at its own
/// snapshot (the engine scan API pins per call), which is the same
/// guarantee a client re-issuing range reads would get.
struct ScanCursor {
    next_start: Vec<u8>,
    remaining: usize,
}

struct ConnState {
    stream: TcpStream,
    fd: RawFd,
    /// Poller token: the slot index this connection occupies.
    token: usize,
    /// Inbound bytes not yet consumed as frames.
    pending: Vec<u8>,
    /// Encoded response frames waiting for the socket.
    outbuf: Vec<u8>,
    out_pos: usize,
    /// Set while `outbuf` is non-empty and not making progress.
    out_since: Option<Instant>,
    scan: Option<ScanCursor>,
    /// Peer sent EOF; serve what is buffered, then close.
    eof: bool,
    /// Flush `outbuf`, then close (protocol error, shutdown RPC, ...).
    closing: bool,
    /// Transport is broken; close immediately.
    dead: bool,
    /// Interest bits currently registered with the poller.
    registered: (bool, bool),
    /// Shutdown drain deadline for a partially received frame.
    drain_deadline: Option<Instant>,
}

impl ConnState {
    fn unsent(&self) -> usize {
        self.outbuf.len() - self.out_pos
    }
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

fn event_loop(shared: &Shared, ls: &LoopShared) {
    let mut conns: Vec<Option<ConnState>> = Vec::new();
    let mut events: Vec<PollEvent> = Vec::new();
    let mut regime = WriteRegime::Normal;
    let mut regime_at = Instant::now() - REGIME_RECHECK;

    loop {
        adopt_new(shared, ls, &mut conns);

        let shutdown = shared.shutdown.load(Ordering::SeqCst);
        if shutdown {
            let deadline = Instant::now() + DRAIN_GRACE;
            for c in conns.iter_mut().flatten() {
                c.drain_deadline.get_or_insert(deadline);
            }
            if conns.iter().all(Option::is_none) && ls.inject.lock().is_empty() {
                return;
            }
        }

        if ls.poller.wait(&mut events, Some(POLL_INTERVAL)).is_err() {
            return;
        }

        // Backpressure gate: consult the engine (with a short cache, the
        // check takes its state lock) *before* acting on any readable
        // event. While stopped, intake halts wholesale — sockets go
        // unread, TCP pushes the stall to clients — but already-built
        // replies still flush.
        if regime == WriteRegime::Stopped || regime_at.elapsed() >= REGIME_RECHECK {
            regime = shared.engine.write_regime();
            regime_at = Instant::now();
        }
        if regime == WriteRegime::Stopped && !shutdown {
            shared
                .stats
                .backpressure_stalls
                .fetch_add(1, Ordering::Relaxed);
            while shared.engine.write_regime() == WriteRegime::Stopped
                && !shared.shutdown.load(Ordering::SeqCst)
            {
                for c in conns.iter_mut().flatten() {
                    flush_out(c);
                }
                std::thread::sleep(STALL_BACKOFF);
            }
            regime = WriteRegime::Normal;
            regime_at = Instant::now();
            // Readiness is level-triggered: dropping this batch loses
            // nothing, the next wait reports it again.
            continue;
        }

        for ev in &events {
            if ev.token == WAKE_TOKEN {
                continue;
            }
            let Some(slot) = conns.get_mut(ev.token) else { continue };
            let Some(conn) = slot else { continue };
            if ev.readable && !conn.closing && !conn.eof {
                read_socket(conn);
            }
            if ev.writable {
                flush_out(conn);
            }
        }

        // Per-connection turn: execute buffered frames, pump streaming
        // scans, enforce timeouts, refresh poller interest.
        for slot in &mut conns {
            let Some(conn) = slot else { continue };
            if !conn.dead {
                process_frames(shared, conn);
                pump_scan(shared, conn);
                finish_eof(shared, conn);
                if shutdown {
                    drain_tick(shared, conn);
                }
                check_write_timeout(conn);
            }
            if conn.dead || (conn.closing && conn.unsent() == 0 && conn.scan.is_none()) {
                let _ = ls.poller.deregister(conn.fd);
                shared
                    .stats
                    .connections_active
                    .fetch_sub(1, Ordering::Relaxed);
                *slot = None;
                continue;
            }
            update_interest(ls, conn, shutdown);
        }
    }
}

fn adopt_new(shared: &Shared, ls: &LoopShared, conns: &mut Vec<Option<ConnState>>) {
    let fresh = std::mem::take(&mut *ls.inject.lock());
    for stream in fresh {
        if shared.shutdown.load(Ordering::SeqCst) {
            // Accepted but never served: the dummy shutdown connection
            // (and any last-instant client) just closes.
            shared
                .stats
                .connections_active
                .fetch_sub(1, Ordering::Relaxed);
            continue;
        }
        let fd = stream.as_raw_fd();
        let token = conns
            .iter()
            .position(Option::is_none)
            .unwrap_or_else(|| {
                conns.push(None);
                conns.len() - 1
            });
        if ls.poller.register(fd, token, true, false).is_err() {
            shared
                .stats
                .connections_active
                .fetch_sub(1, Ordering::Relaxed);
            continue;
        }
        conns[token] = Some(ConnState {
            stream,
            fd,
            token,
            pending: Vec::new(),
            outbuf: Vec::new(),
            out_pos: 0,
            out_since: None,
            scan: None,
            eof: false,
            closing: false,
            dead: false,
            registered: (true, false),
            drain_deadline: None,
        });
    }
}

/// Reads whatever the socket has, bounded by [`READ_QUANTUM`] per call.
fn read_socket(conn: &mut ConnState) {
    let mut taken = 0usize;
    let mut chunk = [0u8; 16 * 1024];
    while taken < READ_QUANTUM {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.eof = true;
                return;
            }
            Ok(n) => {
                conn.pending.extend_from_slice(&chunk[..n]);
                taken += n;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// Parses one complete frame out of `pending`, if present.
fn take_buffered(pending: &mut Vec<u8>) -> Result<Option<Vec<u8>>, String> {
    if pending.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(pending[..4].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(format!("frame of {len} bytes exceeds {MAX_FRAME_LEN}"));
    }
    let total = 4 + len as usize;
    if pending.len() < total {
        return Ok(None);
    }
    let payload = pending[4..total].to_vec();
    pending.drain(..total);
    Ok(Some(payload))
}

/// Executes buffered complete frames FIFO. Stops while a streaming scan
/// is in flight (its chunks must precede any later response) or when the
/// reply buffer is over the high-water mark.
fn process_frames(shared: &Shared, conn: &mut ConnState) {
    while conn.scan.is_none() && !conn.closing && conn.unsent() < OUTBUF_HIGH_WATER {
        let payload = match take_buffered(&mut conn.pending) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(msg) => {
                protocol_error(shared, conn, msg);
                return;
            }
        };
        shared
            .stats
            .bytes_received
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        let req = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                // Malformed payload: answer with the decode error and
                // close — after garbage we cannot trust the framing.
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                append_response(shared, conn, &Response::Err(e));
                conn.closing = true;
                return;
            }
        };
        match req {
            Request::Scan { start, count } => {
                conn.scan = Some(ScanCursor {
                    next_start: start,
                    remaining: count as usize,
                });
            }
            Request::Shutdown => {
                append_response(shared, conn, &Response::Ok);
                shared.stats.requests_ok.fetch_add(1, Ordering::Relaxed);
                shared.shutdown.store(true, Ordering::SeqCst);
                conn.closing = true;
            }
            req => {
                let resp = execute(shared, req);
                match &resp {
                    Response::Err(_) => {
                        shared.stats.requests_err.fetch_add(1, Ordering::Relaxed)
                    }
                    _ => shared.stats.requests_ok.fetch_add(1, Ordering::Relaxed),
                };
                append_response(shared, conn, &resp);
            }
        }
    }
}

fn protocol_error(shared: &Shared, conn: &mut ConnState, msg: String) {
    shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
    append_response(shared, conn, &Response::Err(lsm_kvs::Error::corruption(msg)));
    conn.closing = true;
    conn.pending.clear();
}

fn append_response(shared: &Shared, conn: &mut ConnState, resp: &Response) {
    let payload = resp.encode();
    shared
        .stats
        .bytes_sent
        .fetch_add(payload.len() as u64, Ordering::Relaxed);
    conn.outbuf.extend_from_slice(&frame(&payload));
    if conn.out_since.is_none() {
        conn.out_since = Some(Instant::now());
    }
    shared
        .stats
        .scan_peak_reply_bytes
        .fetch_max(conn.unsent() as u64, Ordering::Relaxed);
}

/// Streams scan chunks while the socket keeps up: a chunk is built only
/// when the previous replies have fully drained, so the reply buffer
/// holds at most one chunk of a scan at any moment.
fn pump_scan(shared: &Shared, conn: &mut ConnState) {
    loop {
        if conn.scan.is_none() || conn.dead {
            return;
        }
        flush_out(conn);
        if conn.dead || conn.unsent() > 0 {
            return; // wait for EPOLLOUT, then resume
        }
        let mut cur = conn.scan.take().expect("checked above");
        let (resp, finished) = produce_scan_chunk(shared.engine.as_ref(), &mut cur);
        if !finished {
            conn.scan = Some(cur);
        }
        shared.stats.scan_chunks_sent.fetch_add(1, Ordering::Relaxed);
        if finished {
            match &resp {
                Response::Err(_) => {
                    shared.stats.requests_err.fetch_add(1, Ordering::Relaxed)
                }
                _ => shared.stats.requests_ok.fetch_add(1, Ordering::Relaxed),
            };
        }
        append_response(shared, conn, &resp);
        flush_out(conn);
        if finished {
            // The connection may have pipelined requests behind the
            // scan; serve them now that ordering allows it (which may
            // itself start the next scan — hence the loop).
            process_frames(shared, conn);
        }
    }
}

/// Builds one scan chunk within [`SCAN_CHUNK_BUDGET`] key+value bytes.
/// Entries are fetched in small slabs; when the budget lands mid-slab
/// the leftovers are re-fetched next chunk from the successor key.
fn produce_scan_chunk(engine: &dyn KvEngine, cur: &mut ScanCursor) -> (Response, bool) {
    const SLAB: usize = 512;
    let mut entries = Vec::new();
    let mut bytes = 0usize;
    loop {
        if cur.remaining == 0 {
            return (Response::Entries { entries, more: false }, true);
        }
        let ask = cur.remaining.min(SLAB);
        let got = match engine.scan(&cur.next_start, ask) {
            Ok(g) => g,
            Err(e) => return (Response::Err(e), true),
        };
        let exhausted = got.len() < ask;
        for (k, v) in got {
            bytes += k.len() + v.len();
            // Successor of `k` in bytewise order: k ++ 0x00.
            let mut succ = k.clone();
            succ.push(0);
            cur.next_start = succ;
            cur.remaining -= 1;
            entries.push((k, v));
            if cur.remaining == 0 {
                return (Response::Entries { entries, more: false }, true);
            }
            if bytes >= SCAN_CHUNK_BUDGET {
                return (Response::Entries { entries, more: true }, false);
            }
        }
        if exhausted {
            return (Response::Entries { entries, more: false }, true);
        }
    }
}

/// Writes as much of `outbuf` as the socket accepts.
fn flush_out(conn: &mut ConnState) {
    while conn.out_pos < conn.outbuf.len() {
        match conn.stream.write(&conn.outbuf[conn.out_pos..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => {
                conn.out_pos += n;
                conn.out_since = Some(Instant::now());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    conn.outbuf.clear();
    conn.out_pos = 0;
    conn.out_since = None;
}

/// After EOF: everything buffered has been served (process_frames ran);
/// leftover partial bytes mean the peer quit mid-frame.
fn finish_eof(shared: &Shared, conn: &mut ConnState) {
    if !conn.eof || conn.closing {
        return;
    }
    if !conn.pending.is_empty() && conn.scan.is_none() {
        protocol_error(shared, conn, "peer closed mid-frame".into());
    } else if conn.scan.is_none() {
        conn.closing = true;
    }
}

/// Shutdown drain: a connection ends at a frame boundary; a partial
/// frame gets until the drain deadline to complete (and is then served),
/// after which the connection is declared a protocol violation.
fn drain_tick(shared: &Shared, conn: &mut ConnState) {
    if conn.closing || conn.scan.is_some() {
        return;
    }
    if conn.pending.is_empty() {
        conn.closing = true;
    } else if conn.drain_deadline.is_some_and(|d| Instant::now() >= d) {
        protocol_error(
            shared,
            conn,
            "connection idle mid-frame during shutdown".into(),
        );
    }
}

fn check_write_timeout(conn: &mut ConnState) {
    if conn.unsent() > 0
        && conn
            .out_since
            .is_some_and(|t| t.elapsed() >= WRITE_TIMEOUT)
    {
        conn.dead = true;
    }
}

fn update_interest(ls: &LoopShared, conn: &mut ConnState, shutdown: bool) {
    let want_write = conn.unsent() > 0;
    // During a streaming scan no further frames may be executed, and
    // past the high-water mark intake pauses; in both cases leave the
    // bytes in the kernel buffer (TCP backpressure) instead of pulling
    // them into memory. During shutdown only a partial frame justifies
    // reading more.
    let mut want_read = !conn.closing
        && !conn.eof
        && conn.scan.is_none()
        && conn.unsent() < OUTBUF_HIGH_WATER;
    if shutdown {
        want_read = want_read && !conn.pending.is_empty();
    }
    let target = (want_read, want_write);
    if target != conn.registered
        && ls
            .poller
            .modify(conn.fd, conn.token, want_read, want_write)
            .is_ok()
    {
        conn.registered = target;
    }
}

fn execute(shared: &Shared, req: Request) -> Response {
    let engine = shared.engine.as_ref();
    match req {
        Request::Get { key } => match engine.get(&key) {
            Ok(Some(v)) => Response::Value(v),
            Ok(None) => Response::NotFound,
            Err(e) => Response::Err(e),
        },
        Request::MultiGet { keys } => match engine.multi_get(&keys) {
            Ok(values) => Response::Values(values),
            Err(e) => Response::Err(e),
        },
        Request::Put { sync, key, value } => {
            let mut batch = lsm_kvs::WriteBatch::new();
            batch.put(&key, &value);
            ack(engine.write_opt(&WriteOptions { sync }, batch))
        }
        Request::Delete { sync, key } => {
            let mut batch = lsm_kvs::WriteBatch::new();
            batch.delete(&key);
            ack(engine.write_opt(&WriteOptions { sync }, batch))
        }
        Request::Batch { sync, ops } => {
            ack(engine.write_opt(&WriteOptions { sync }, ops_to_batch(&ops)))
        }
        Request::Flush => ack(engine.flush()),
        Request::Stats => {
            let mut text = engine.stats_text();
            text.push_str(&shared.stats.render());
            Response::Stats { text, stats: Box::new(engine.stats()) }
        }
        Request::WaitIdle => ack(engine.wait_background_idle()),
        Request::SetOptions { changes } => execute_set_options(engine, &changes),
        Request::Ping => Response::Ok,
        // Scan and Shutdown are handled in `process_frames` (they change
        // connection state); reaching here is impossible.
        Request::Scan { .. } | Request::Shutdown => Response::Ok,
    }
}

/// Applies a SetOptions batch through the engine's atomic path, then
/// translates the single engine verdict into per-pair acks.
///
/// The engine commits all-or-nothing, so on success every pair is
/// `Applied` or `Unchanged`; on failure each pair is re-classified
/// against the registry so the client learns which pair was at fault
/// (`Rejected`) and which were valid but aborted with the batch
/// (`Skipped`). Classification that cannot attribute the failure to any
/// single pair (e.g. a cross-option invariant, or an engine without
/// live-options support) falls back to a plain error response.
fn execute_set_options(engine: &dyn lsm_kvs::KvEngine, changes: &[(String, String)]) -> Response {
    use lsm_kvs::options::registry::find_option;
    use lsm_kvs::options::Options;

    let pairs: Vec<(&str, &str)> =
        changes.iter().map(|(n, v)| (n.as_str(), v.as_str())).collect();
    match engine.set_options(&pairs) {
        Ok(applied) => {
            // Hand the applied (name, from, to) triples back out to the
            // pairs that caused them, in order; pairs that produced no
            // change are Unchanged.
            let mut remaining = applied.as_slice();
            let acks = changes
                .iter()
                .map(|(name, _)| {
                    let canon = find_option(name).map_or(name.as_str(), |m| m.name);
                    if let Some((first, rest)) = remaining.split_first() {
                        if first.0 == canon {
                            remaining = rest;
                            return OptionAck::Applied {
                                name: first.0.clone(),
                                from: first.1.clone(),
                                to: first.2.clone(),
                            };
                        }
                    }
                    OptionAck::Unchanged { name: canon.to_string() }
                })
                .collect();
            Response::OptionAcks(acks)
        }
        Err(batch_err) => {
            let mut any_rejected = false;
            let acks: Vec<OptionAck> = changes
                .iter()
                .map(|(name, value)| match find_option(name) {
                    Some(meta) if !meta.mutable_online => {
                        any_rejected = true;
                        OptionAck::Rejected {
                            name: meta.name.to_string(),
                            error: lsm_kvs::Error::invalid_argument(format!(
                                "{} is immutable: a change requires reopening the database",
                                meta.name
                            )),
                        }
                    }
                    _ => match Options::normalize_change(name, value) {
                        Ok((canon, _)) => OptionAck::Skipped { name: canon },
                        Err(e) => {
                            any_rejected = true;
                            OptionAck::Rejected { name: name.clone(), error: e }
                        }
                    },
                })
                .collect();
            if any_rejected {
                Response::OptionAcks(acks)
            } else {
                Response::Err(batch_err)
            }
        }
    }
}

fn ack(r: lsm_kvs::Result<()>) -> Response {
    match r {
        Ok(()) => Response::Ok,
        Err(e) => Response::Err(e),
    }
}
